// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Experiment runner replicating the paper's methodology (Section 3):
// repeatedly draw random attribute subsets from two dependency graphs
// built over the *same* attribute universe (e.g. the two halves of the
// lab-exam table, or the NY and CA census samples), shuffle the node
// order so index identity leaks nothing, run the matcher, score against
// the known correspondence, and average over iterations.
//
// The runner also supports deliberately *unrelated* graph pairs (e.g.
// lab-exam vs census, Figure 8), where there is no ground truth and only
// the optimized metric value is recorded.

#ifndef DEPMATCH_EVAL_EXPERIMENT_H_
#define DEPMATCH_EVAL_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>

#include "depmatch/common/status.h"
#include "depmatch/eval/accuracy.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/match/matching.h"
#include "depmatch/stats/stat_cache.h"
#include "depmatch/table/encoded_column.h"

namespace depmatch {

struct SubsetExperimentConfig {
  // Matcher configuration for every iteration.
  MatchOptions match;

  // Number of source attributes per iteration (the paper's x-axis for
  // one-to-one and onto).
  size_t source_size = 0;
  // Number of target attributes. Must equal source_size for one-to-one.
  // The paper fixes 22 for onto and 12/12 for partial.
  size_t target_size = 0;
  // kPartial only: number of attributes present on both sides (# of true
  // matches). One-to-one and onto derive it from the sizes.
  size_t overlap = 0;

  // When true (default), the two graphs cover the same attribute universe
  // and node i of graph 1 truly corresponds to node i of graph 2; subsets
  // are drawn accordingly and scored against that correspondence. When
  // false, subsets are drawn independently from each graph and there is no
  // ground truth (accuracy fields stay zero).
  bool schemas_related = true;

  size_t iterations = 50;
  uint64_t seed = 17;
  // Worker threads across iterations (1 = serial; results are identical
  // for any thread count).
  size_t num_threads = 1;
};

struct ExperimentStats {
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  // Sample standard deviations across completed iterations (0 when fewer
  // than two iterations completed).
  double stddev_precision = 0.0;
  double stddev_recall = 0.0;
  // Mean value of the optimized metric across iterations.
  double mean_metric_value = 0.0;
  // Mean number of produced pairs (interesting for partial mappings).
  double mean_produced_pairs = 0.0;
  size_t iterations_completed = 0;
  // Iterations whose match attempt returned an error (budget exhaustion);
  // excluded from the means.
  size_t iterations_failed = 0;
  uint64_t total_nodes_explored = 0;
};

// Runs the experiment. `graph1` is the source universe, `graph2` the
// target universe; when schemas_related, both must have the same size.
// Deterministic for fixed config.
Result<ExperimentStats> RunSubsetExperiment(
    const DependencyGraph& graph1, const DependencyGraph& graph2,
    const SubsetExperimentConfig& config);

// End-to-end pipeline experiment (tables in, accuracy out), the Figure-9
// style protocol driven from the data rather than from pre-built graphs.
struct PipelineExperimentConfig {
  // Step 1: per-slice dependency-graph construction.
  DependencyGraphOptions graph;
  // Step 2: matcher configuration for every iteration.
  MatchOptions match;

  // Rows to sample from each view, drawn once per experiment from `seed`
  // (0 = keep all rows). The paper's 1K/5K/10K sample-size axis.
  size_t sample_rows = 0;

  // Attribute-subset shape per iteration; same semantics as
  // SubsetExperimentConfig (the views play the related-universe role:
  // view column i of `source` truly corresponds to view column i of
  // `target`).
  size_t source_size = 0;
  size_t target_size = 0;
  size_t overlap = 0;  // kPartial only.

  size_t iterations = 50;
  uint64_t seed = 17;
  // Worker threads across iterations (results are identical for any
  // thread count, with or without a cache).
  size_t num_threads = 1;
};

// Runs the pipeline: once per experiment, sample `sample_rows` rows of
// each view; per iteration, draw a random attribute subset of the shared
// universe, build both dependency graphs from the zero-copy slices, match,
// and score against the positional ground truth. With `cache` non-null,
// per-column selection statistics flow through it, so each base column is
// encoded once across all iterations and threads instead of once per
// trial. Deterministic for fixed config; cached and cold runs produce
// identical statistics.
Result<ExperimentStats> RunPipelineExperiment(
    const EncodedTableView& source, const EncodedTableView& target,
    const PipelineExperimentConfig& config, StatCache* cache = nullptr);

}  // namespace depmatch

#endif  // DEPMATCH_EVAL_EXPERIMENT_H_
