#include "depmatch/eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "depmatch/common/rng.h"
#include "depmatch/common/string_util.h"
#include "depmatch/common/thread_pool.h"
#include "depmatch/match/matcher.h"

namespace depmatch {
namespace {

// Outcome of a single iteration.
struct IterationOutcome {
  bool failed = false;
  Accuracy accuracy;
  double metric_value = 0.0;
  double produced_pairs = 0.0;
  uint64_t nodes_explored = 0;
};

// Derives a well-separated per-iteration seed.
uint64_t IterationSeed(uint64_t seed, size_t iteration) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (iteration + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Overlap of the drawn subsets implied by the cardinality constraint.
size_t OverlapFor(Cardinality cardinality, size_t source_size,
                  size_t config_overlap) {
  switch (cardinality) {
    case Cardinality::kOneToOne:
    case Cardinality::kOnto:
      return source_size;
    case Cardinality::kPartial:
      return config_overlap;
  }
  return 0;
}

// Draws related source/target attribute subsets (overlap + source-only +
// target-only distinct attributes) from a shared universe, shuffles both
// orders so index identity leaks nothing, and records the positional
// ground truth of the shared attributes.
void DrawRelatedSubsets(Rng& rng, size_t universe, size_t source_size,
                        size_t target_size, size_t overlap,
                        std::vector<size_t>& source_attrs,
                        std::vector<size_t>& target_attrs,
                        std::vector<MatchPair>& truth) {
  size_t source_only = source_size - overlap;
  size_t target_only = target_size - overlap;
  std::vector<size_t> drawn = rng.SampleWithoutReplacement(
      universe, overlap + source_only + target_only);
  source_attrs.assign(drawn.begin(), drawn.begin() + overlap);
  source_attrs.insert(source_attrs.end(), drawn.begin() + overlap,
                      drawn.begin() + overlap + source_only);
  target_attrs.assign(drawn.begin(), drawn.begin() + overlap);
  target_attrs.insert(target_attrs.end(),
                      drawn.begin() + overlap + source_only, drawn.end());
  rng.Shuffle(source_attrs);
  rng.Shuffle(target_attrs);
  // Ground truth: positions of the shared attributes in both orders.
  std::unordered_map<size_t, size_t> target_position;
  for (size_t j = 0; j < target_attrs.size(); ++j) {
    target_position[target_attrs[j]] = j;
  }
  for (size_t i = 0; i < source_attrs.size(); ++i) {
    auto it = target_position.find(source_attrs[i]);
    if (it != target_position.end()) {
      truth.push_back({i, it->second});
    }
  }
}

IterationOutcome RunOneIteration(const DependencyGraph& graph1,
                                 const DependencyGraph& graph2,
                                 const SubsetExperimentConfig& config,
                                 size_t iteration) {
  Rng rng(IterationSeed(config.seed, iteration));
  size_t w = config.source_size;
  size_t t_size = config.target_size;
  size_t overlap =
      OverlapFor(config.match.cardinality, w, config.overlap);

  std::vector<size_t> source_attrs;
  std::vector<size_t> target_attrs;
  std::vector<MatchPair> truth;

  if (config.schemas_related) {
    DrawRelatedSubsets(rng, graph1.size(), w, t_size, overlap, source_attrs,
                       target_attrs, truth);
  } else {
    source_attrs = rng.SampleWithoutReplacement(graph1.size(), w);
    target_attrs = rng.SampleWithoutReplacement(graph2.size(), t_size);
  }

  IterationOutcome outcome;
  Result<DependencyGraph> source = graph1.SubGraph(source_attrs);
  Result<DependencyGraph> target = graph2.SubGraph(target_attrs);
  if (!source.ok() || !target.ok()) {
    outcome.failed = true;
    return outcome;
  }
  Result<MatchResult> match =
      MatchGraphs(source.value(), target.value(), config.match);
  if (!match.ok()) {
    outcome.failed = true;
    return outcome;
  }
  outcome.accuracy = ComputeAccuracy(match.value().pairs, truth);
  outcome.metric_value = match.value().metric_value;
  outcome.produced_pairs = static_cast<double>(match.value().pairs.size());
  outcome.nodes_explored = match.value().nodes_explored;
  return outcome;
}

// One end-to-end pipeline trial: attribute draw, zero-copy slicing, graph
// construction (through the cache when given), match, score.
IterationOutcome RunPipelineIteration(const EncodedTableView& source,
                                      const EncodedTableView& target,
                                      const PipelineExperimentConfig& config,
                                      StatCache* cache, size_t iteration) {
  Rng rng(IterationSeed(config.seed, iteration));
  size_t overlap = OverlapFor(config.match.cardinality, config.source_size,
                              config.overlap);

  std::vector<size_t> source_attrs;
  std::vector<size_t> target_attrs;
  std::vector<MatchPair> truth;
  DrawRelatedSubsets(rng, source.num_attributes(), config.source_size,
                     config.target_size, overlap, source_attrs, target_attrs,
                     truth);

  IterationOutcome outcome;
  Result<EncodedTableView> source_slice = source.Project(source_attrs);
  Result<EncodedTableView> target_slice = target.Project(target_attrs);
  if (!source_slice.ok() || !target_slice.ok()) {
    outcome.failed = true;
    return outcome;
  }
  Result<DependencyGraph> source_graph =
      BuildDependencyGraph(source_slice.value(), config.graph, cache);
  Result<DependencyGraph> target_graph =
      BuildDependencyGraph(target_slice.value(), config.graph, cache);
  if (!source_graph.ok() || !target_graph.ok()) {
    outcome.failed = true;
    return outcome;
  }
  Result<MatchResult> match =
      MatchGraphs(source_graph.value(), target_graph.value(), config.match);
  if (!match.ok()) {
    outcome.failed = true;
    return outcome;
  }
  outcome.accuracy = ComputeAccuracy(match.value().pairs, truth);
  outcome.metric_value = match.value().metric_value;
  outcome.produced_pairs = static_cast<double>(match.value().pairs.size());
  outcome.nodes_explored = match.value().nodes_explored;
  return outcome;
}

// Means / stddevs / totals over completed iterations, shared by both
// runners.
ExperimentStats AggregateOutcomes(
    const std::vector<IterationOutcome>& outcomes) {
  ExperimentStats stats;
  for (const IterationOutcome& outcome : outcomes) {
    if (outcome.failed) {
      ++stats.iterations_failed;
      continue;
    }
    ++stats.iterations_completed;
    stats.mean_precision += outcome.accuracy.precision;
    stats.mean_recall += outcome.accuracy.recall;
    stats.mean_metric_value += outcome.metric_value;
    stats.mean_produced_pairs += outcome.produced_pairs;
    stats.total_nodes_explored += outcome.nodes_explored;
  }
  if (stats.iterations_completed > 0) {
    double n = static_cast<double>(stats.iterations_completed);
    stats.mean_precision /= n;
    stats.mean_recall /= n;
    stats.mean_metric_value /= n;
    stats.mean_produced_pairs /= n;
  }
  if (stats.iterations_completed > 1) {
    double n = static_cast<double>(stats.iterations_completed);
    double precision_ss = 0.0;
    double recall_ss = 0.0;
    for (const IterationOutcome& outcome : outcomes) {
      if (outcome.failed) continue;
      double dp = outcome.accuracy.precision - stats.mean_precision;
      double dr = outcome.accuracy.recall - stats.mean_recall;
      precision_ss += dp * dp;
      recall_ss += dr * dr;
    }
    stats.stddev_precision = std::sqrt(precision_ss / (n - 1.0));
    stats.stddev_recall = std::sqrt(recall_ss / (n - 1.0));
  }
  return stats;
}

}  // namespace

Result<ExperimentStats> RunSubsetExperiment(
    const DependencyGraph& graph1, const DependencyGraph& graph2,
    const SubsetExperimentConfig& config) {
  size_t w = config.source_size;
  size_t t_size = config.target_size;
  if (w == 0 || t_size == 0) {
    return InvalidArgumentError("source_size and target_size must be > 0");
  }
  if (config.match.cardinality == Cardinality::kOneToOne && w != t_size) {
    return InvalidArgumentError(
        "one-to-one experiments need source_size == target_size");
  }
  if (config.match.cardinality == Cardinality::kOnto && w > t_size) {
    return InvalidArgumentError(
        "onto experiments need source_size <= target_size");
  }
  size_t overlap = config.match.cardinality == Cardinality::kPartial
                       ? config.overlap
                       : w;
  if (overlap > w || overlap > t_size) {
    return InvalidArgumentError("overlap exceeds schema sizes");
  }
  if (config.schemas_related) {
    if (graph1.size() != graph2.size()) {
      return InvalidArgumentError(
          "related experiments need graphs over the same attribute "
          "universe");
    }
    size_t needed = overlap + (w - overlap) + (t_size - overlap);
    if (needed > graph1.size()) {
      return InvalidArgumentError(StrFormat(
          "subset draw needs %zu distinct attributes, universe has %zu",
          needed, graph1.size()));
    }
  } else {
    if (w > graph1.size() || t_size > graph2.size()) {
      return InvalidArgumentError("subset larger than graph");
    }
  }
  if (config.iterations == 0) {
    return InvalidArgumentError("iterations must be > 0");
  }

  std::vector<IterationOutcome> outcomes(config.iterations);
  auto run = [&](size_t i) {
    outcomes[i] = RunOneIteration(graph1, graph2, config, i);
  };
  if (config.num_threads > 1) {
    ThreadPool::ParallelFor(config.num_threads, config.iterations, run);
  } else {
    for (size_t i = 0; i < config.iterations; ++i) run(i);
  }

  return AggregateOutcomes(outcomes);
}

Result<ExperimentStats> RunPipelineExperiment(
    const EncodedTableView& source, const EncodedTableView& target,
    const PipelineExperimentConfig& config, StatCache* cache) {
  if (!source.valid() || !target.valid()) {
    return InvalidArgumentError("pipeline experiments need valid views");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return InvalidArgumentError(
        "pipeline experiments need views over the same attribute universe");
  }
  size_t w = config.source_size;
  size_t t_size = config.target_size;
  if (w == 0 || t_size == 0) {
    return InvalidArgumentError("source_size and target_size must be > 0");
  }
  if (config.match.cardinality == Cardinality::kOneToOne && w != t_size) {
    return InvalidArgumentError(
        "one-to-one experiments need source_size == target_size");
  }
  if (config.match.cardinality == Cardinality::kOnto && w > t_size) {
    return InvalidArgumentError(
        "onto experiments need source_size <= target_size");
  }
  size_t overlap = OverlapFor(config.match.cardinality, w, config.overlap);
  if (overlap > w || overlap > t_size) {
    return InvalidArgumentError("overlap exceeds schema sizes");
  }
  size_t needed = overlap + (w - overlap) + (t_size - overlap);
  if (needed > source.num_attributes()) {
    return InvalidArgumentError(StrFormat(
        "subset draw needs %zu distinct attributes, universe has %zu",
        needed, source.num_attributes()));
  }
  if (config.iterations == 0) {
    return InvalidArgumentError("iterations must be > 0");
  }

  // The sample-size axis: one shared draw per experiment (not per trial),
  // so every iteration — and every cache entry — sees the same rows.
  EncodedTableView sampled_source = source;
  EncodedTableView sampled_target = target;
  if (config.sample_rows > 0) {
    Rng sample_rng(config.seed);
    sampled_source = source.Sample(config.sample_rows, sample_rng);
    sampled_target = target.Sample(config.sample_rows, sample_rng);
  }

  std::vector<IterationOutcome> outcomes(config.iterations);
  auto run = [&](size_t i) {
    outcomes[i] =
        RunPipelineIteration(sampled_source, sampled_target, config, cache, i);
  };
  if (config.num_threads > 1) {
    ThreadPool::ParallelFor(config.num_threads, config.iterations, run);
  } else {
    for (size_t i = 0; i < config.iterations; ++i) run(i);
  }

  return AggregateOutcomes(outcomes);
}

}  // namespace depmatch
