#include "depmatch/eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "depmatch/common/rng.h"
#include "depmatch/common/string_util.h"
#include "depmatch/common/thread_pool.h"
#include "depmatch/match/matcher.h"

namespace depmatch {
namespace {

// Outcome of a single iteration.
struct IterationOutcome {
  bool failed = false;
  Accuracy accuracy;
  double metric_value = 0.0;
  double produced_pairs = 0.0;
  uint64_t nodes_explored = 0;
};

// Derives a well-separated per-iteration seed.
uint64_t IterationSeed(uint64_t seed, size_t iteration) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (iteration + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

IterationOutcome RunOneIteration(const DependencyGraph& graph1,
                                 const DependencyGraph& graph2,
                                 const SubsetExperimentConfig& config,
                                 size_t iteration) {
  Rng rng(IterationSeed(config.seed, iteration));
  size_t w = config.source_size;
  size_t t_size = config.target_size;
  size_t overlap = 0;
  switch (config.match.cardinality) {
    case Cardinality::kOneToOne:
    case Cardinality::kOnto:
      overlap = w;
      break;
    case Cardinality::kPartial:
      overlap = config.overlap;
      break;
  }

  std::vector<size_t> source_attrs;
  std::vector<size_t> target_attrs;
  std::vector<MatchPair> truth;

  if (config.schemas_related) {
    // Draw overlap + source-only + target-only distinct attributes from
    // the shared universe.
    size_t source_only = w - overlap;
    size_t target_only = t_size - overlap;
    std::vector<size_t> drawn = rng.SampleWithoutReplacement(
        graph1.size(), overlap + source_only + target_only);
    source_attrs.assign(drawn.begin(), drawn.begin() + overlap);
    source_attrs.insert(source_attrs.end(), drawn.begin() + overlap,
                        drawn.begin() + overlap + source_only);
    target_attrs.assign(drawn.begin(), drawn.begin() + overlap);
    target_attrs.insert(target_attrs.end(),
                        drawn.begin() + overlap + source_only, drawn.end());
    rng.Shuffle(source_attrs);
    rng.Shuffle(target_attrs);
    // Ground truth: positions of the shared attributes in both orders.
    std::unordered_map<size_t, size_t> target_position;
    for (size_t j = 0; j < target_attrs.size(); ++j) {
      target_position[target_attrs[j]] = j;
    }
    for (size_t i = 0; i < source_attrs.size(); ++i) {
      auto it = target_position.find(source_attrs[i]);
      if (it != target_position.end()) {
        truth.push_back({i, it->second});
      }
    }
  } else {
    source_attrs = rng.SampleWithoutReplacement(graph1.size(), w);
    target_attrs = rng.SampleWithoutReplacement(graph2.size(), t_size);
  }

  IterationOutcome outcome;
  Result<DependencyGraph> source = graph1.SubGraph(source_attrs);
  Result<DependencyGraph> target = graph2.SubGraph(target_attrs);
  if (!source.ok() || !target.ok()) {
    outcome.failed = true;
    return outcome;
  }
  Result<MatchResult> match =
      MatchGraphs(source.value(), target.value(), config.match);
  if (!match.ok()) {
    outcome.failed = true;
    return outcome;
  }
  outcome.accuracy = ComputeAccuracy(match.value().pairs, truth);
  outcome.metric_value = match.value().metric_value;
  outcome.produced_pairs = static_cast<double>(match.value().pairs.size());
  outcome.nodes_explored = match.value().nodes_explored;
  return outcome;
}

}  // namespace

Result<ExperimentStats> RunSubsetExperiment(
    const DependencyGraph& graph1, const DependencyGraph& graph2,
    const SubsetExperimentConfig& config) {
  size_t w = config.source_size;
  size_t t_size = config.target_size;
  if (w == 0 || t_size == 0) {
    return InvalidArgumentError("source_size and target_size must be > 0");
  }
  if (config.match.cardinality == Cardinality::kOneToOne && w != t_size) {
    return InvalidArgumentError(
        "one-to-one experiments need source_size == target_size");
  }
  if (config.match.cardinality == Cardinality::kOnto && w > t_size) {
    return InvalidArgumentError(
        "onto experiments need source_size <= target_size");
  }
  size_t overlap = config.match.cardinality == Cardinality::kPartial
                       ? config.overlap
                       : w;
  if (overlap > w || overlap > t_size) {
    return InvalidArgumentError("overlap exceeds schema sizes");
  }
  if (config.schemas_related) {
    if (graph1.size() != graph2.size()) {
      return InvalidArgumentError(
          "related experiments need graphs over the same attribute "
          "universe");
    }
    size_t needed = overlap + (w - overlap) + (t_size - overlap);
    if (needed > graph1.size()) {
      return InvalidArgumentError(StrFormat(
          "subset draw needs %zu distinct attributes, universe has %zu",
          needed, graph1.size()));
    }
  } else {
    if (w > graph1.size() || t_size > graph2.size()) {
      return InvalidArgumentError("subset larger than graph");
    }
  }
  if (config.iterations == 0) {
    return InvalidArgumentError("iterations must be > 0");
  }

  std::vector<IterationOutcome> outcomes(config.iterations);
  auto run = [&](size_t i) {
    outcomes[i] = RunOneIteration(graph1, graph2, config, i);
  };
  if (config.num_threads > 1) {
    ThreadPool::ParallelFor(config.num_threads, config.iterations, run);
  } else {
    for (size_t i = 0; i < config.iterations; ++i) run(i);
  }

  ExperimentStats stats;
  for (const IterationOutcome& outcome : outcomes) {
    if (outcome.failed) {
      ++stats.iterations_failed;
      continue;
    }
    ++stats.iterations_completed;
    stats.mean_precision += outcome.accuracy.precision;
    stats.mean_recall += outcome.accuracy.recall;
    stats.mean_metric_value += outcome.metric_value;
    stats.mean_produced_pairs += outcome.produced_pairs;
    stats.total_nodes_explored += outcome.nodes_explored;
  }
  if (stats.iterations_completed > 0) {
    double n = static_cast<double>(stats.iterations_completed);
    stats.mean_precision /= n;
    stats.mean_recall /= n;
    stats.mean_metric_value /= n;
    stats.mean_produced_pairs /= n;
  }
  if (stats.iterations_completed > 1) {
    double n = static_cast<double>(stats.iterations_completed);
    double precision_ss = 0.0;
    double recall_ss = 0.0;
    for (const IterationOutcome& outcome : outcomes) {
      if (outcome.failed) continue;
      double dp = outcome.accuracy.precision - stats.mean_precision;
      double dr = outcome.accuracy.recall - stats.mean_recall;
      precision_ss += dp * dp;
      recall_ss += dr * dr;
    }
    stats.stddev_precision = std::sqrt(precision_ss / (n - 1.0));
    stats.stddev_recall = std::sqrt(recall_ss / (n - 1.0));
  }
  return stats;
}

}  // namespace depmatch
