#include "depmatch/eval/report.h"

#include <algorithm>

#include "depmatch/common/string_util.h"

namespace depmatch {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> widths(cols, 0);
  auto account = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  auto render = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      line += cell;
      if (c + 1 < cols) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out;
  if (!header_.empty()) {
    out += render(header_);
    std::string rule;
    for (size_t c = 0; c < cols; ++c) {
      rule.append(widths[c], '-');
      if (c + 1 < cols) rule.append(2, ' ');
    }
    out += rule;
    out += '\n';
  }
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string TextTable::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      bool needs_quotes =
          row[c].find_first_of(",\"\n\r") != std::string::npos;
      if (!needs_quotes) {
        line += row[c];
        continue;
      }
      line += '"';
      for (char ch : row[c]) {
        if (ch == '"') line += '"';
        line += ch;
      }
      line += '"';
    }
    line += '\n';
    return line;
  };
  std::string out;
  if (!header_.empty()) out += render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string FormatPercent(double fraction) {
  return StrFormat("%.1f%%", fraction * 100.0);
}

}  // namespace depmatch
