#include "depmatch/eval/accuracy.h"

#include <algorithm>

namespace depmatch {

Accuracy ComputeAccuracy(const std::vector<MatchPair>& produced,
                         const std::vector<MatchPair>& truth) {
  Accuracy acc;
  acc.produced = produced.size();
  acc.true_matches = truth.size();
  for (const MatchPair& pair : produced) {
    if (std::find(truth.begin(), truth.end(), pair) != truth.end()) {
      ++acc.correct;
    }
  }
  if (acc.produced == 0) {
    acc.precision = acc.true_matches == 0 ? 1.0 : 0.0;
  } else {
    acc.precision =
        static_cast<double>(acc.correct) / static_cast<double>(acc.produced);
  }
  if (acc.true_matches == 0) {
    acc.recall = acc.produced == 0 ? 1.0 : 0.0;
  } else {
    acc.recall = static_cast<double>(acc.correct) /
                 static_cast<double>(acc.true_matches);
  }
  return acc;
}

}  // namespace depmatch
