#include "depmatch/graph/dependency_graph.h"

#include <cmath>
#include <unordered_set>

#include "depmatch/common/string_util.h"

namespace depmatch {
namespace {

constexpr double kSymmetryTolerance = 1e-9;

}  // namespace

Result<DependencyGraph> DependencyGraph::Create(
    std::vector<std::string> names, std::vector<std::vector<double>> matrix) {
  size_t n = names.size();
  if (matrix.size() != n) {
    return InvalidArgumentError(
        StrFormat("matrix has %zu rows for %zu names", matrix.size(), n));
  }
  for (size_t i = 0; i < n; ++i) {
    if (matrix[i].size() != n) {
      return InvalidArgumentError(
          StrFormat("matrix row %zu has %zu entries, expected %zu", i,
                    matrix[i].size(), n));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (!(matrix[i][j] >= 0.0)) {  // also catches NaN
        return InvalidArgumentError(StrFormat(
            "mutual information m[%zu][%zu] = %f must be non-negative", i, j,
            matrix[i][j]));
      }
      if (std::fabs(matrix[i][j] - matrix[j][i]) > kSymmetryTolerance) {
        return InvalidArgumentError(StrFormat(
            "matrix not symmetric at (%zu, %zu): %.12g vs %.12g", i, j,
            matrix[i][j], matrix[j][i]));
      }
    }
  }
  return DependencyGraph(std::move(names), std::move(matrix));
}

Result<DependencyGraph> DependencyGraph::SubGraph(
    const std::vector<size_t>& indices) const {
  std::unordered_set<size_t> seen;
  for (size_t index : indices) {
    if (index >= size()) {
      return OutOfRangeError(
          StrFormat("node index %zu out of range (%zu nodes)", index,
                    size()));
    }
    if (!seen.insert(index).second) {
      return InvalidArgumentError(
          StrFormat("node index %zu selected twice", index));
    }
  }
  std::vector<std::string> names;
  names.reserve(indices.size());
  for (size_t index : indices) names.push_back(names_[index]);
  std::vector<std::vector<double>> matrix(
      indices.size(), std::vector<double>(indices.size(), 0.0));
  for (size_t i = 0; i < indices.size(); ++i) {
    for (size_t j = 0; j < indices.size(); ++j) {
      matrix[i][j] = matrix_[indices[i]][indices[j]];
    }
  }
  return DependencyGraph(std::move(names), std::move(matrix));
}

std::string DependencyGraph::ToString() const {
  std::string out = StrFormat("DependencyGraph(%zu nodes)\n", size());
  for (size_t i = 0; i < size(); ++i) {
    out += StrFormat("  %-16s H=%.4f |", names_[i].c_str(), entropy(i));
    for (size_t j = 0; j < size(); ++j) {
      out += StrFormat(" %.4f", matrix_[i][j]);
    }
    out += '\n';
  }
  return out;
}

std::string DependencyGraph::Serialize() const {
  std::string out = StrFormat("%zu\n", size());
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) out += '\t';
    out += names_[i];
  }
  out += '\n';
  for (size_t i = 0; i < size(); ++i) {
    for (size_t j = 0; j < size(); ++j) {
      if (j > 0) out += '\t';
      out += StrFormat("%.17g", matrix_[i][j]);
    }
    out += '\n';
  }
  return out;
}

Result<DependencyGraph> DependencyGraph::Deserialize(const std::string& text) {
  std::vector<std::string> lines = SplitString(text, '\n');
  if (lines.empty()) return InvalidArgumentError("empty graph text");
  std::optional<int64_t> n_parsed = ParseInt64(lines[0]);
  if (!n_parsed.has_value() || *n_parsed < 0) {
    return InvalidArgumentError("bad node count line");
  }
  size_t n = static_cast<size_t>(*n_parsed);
  if (lines.size() < n + 2) {
    return InvalidArgumentError("truncated graph text");
  }
  std::vector<std::string> names =
      n == 0 ? std::vector<std::string>{} : SplitString(lines[1], '\t');
  if (names.size() != n) {
    return InvalidArgumentError(
        StrFormat("expected %zu names, found %zu", n, names.size()));
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> fields = SplitString(lines[i + 2], '\t');
    if (fields.size() != n) {
      return InvalidArgumentError(
          StrFormat("matrix row %zu has %zu fields, expected %zu", i,
                    fields.size(), n));
    }
    for (size_t j = 0; j < n; ++j) {
      std::optional<double> v = ParseDouble(fields[j]);
      if (!v.has_value()) {
        return InvalidArgumentError(
            StrFormat("bad matrix entry at (%zu, %zu)", i, j));
      }
      matrix[i][j] = *v;
    }
  }
  return Create(std::move(names), std::move(matrix));
}

}  // namespace depmatch
