// depmatch-lint: bit-identical-file
// Serialization is part of the bit-identical contract: a graph written
// and re-read must carry exactly the doubles of the original (raw
// IEEE-754 bit patterns, no text formatting). Keep the encoding
// byte-deterministic; do not introduce constructs that reorder double
// accumulation (std::reduce, atomic floating adds, OpenMP reductions).
#include "depmatch/graph/graph_io.h"

#include <bit>
#include <cstdio>

#include "depmatch/common/string_util.h"

namespace depmatch {
namespace graphio {
namespace {

// Table-driven CRC-32, generated once at first use from the reflected
// polynomial.
const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

}  // namespace

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void AppendF64(std::string* out, double value) {
  AppendU64(out, std::bit_cast<uint64_t>(value));
}

bool ReadU32(std::string_view bytes, size_t* cursor, uint32_t* value) {
  if (*cursor > bytes.size() || bytes.size() - *cursor < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[*cursor + static_cast<size_t>(i)]))
         << (8 * i);
  }
  *cursor += 4;
  *value = v;
  return true;
}

bool ReadU64(std::string_view bytes, size_t* cursor, uint64_t* value) {
  if (*cursor > bytes.size() || bytes.size() - *cursor < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[*cursor + static_cast<size_t>(i)]))
         << (8 * i);
  }
  *cursor += 8;
  *value = v;
  return true;
}

bool ReadF64(std::string_view bytes, size_t* cursor, double* value) {
  uint64_t bits = 0;
  if (!ReadU64(bytes, cursor, &bits)) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

uint32_t Crc32(std::string_view bytes) {
  const uint32_t* table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError(StrFormat("cannot open %s", path.c_str()));
  }
  out->clear();
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, got);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return InternalError(StrFormat("read error on %s", path.c_str()));
  }
  return OkStatus();
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return NotFoundError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), file);
  bool failed = std::fclose(file) != 0 || written != data.size();
  if (failed) {
    return InternalError(StrFormat("short write to %s", path.c_str()));
  }
  return OkStatus();
}

}  // namespace graphio

namespace {

constexpr char kGraphMagic[4] = {'D', 'M', 'G', '1'};
constexpr uint32_t kGraphFormatVersion = 1;
// Magic + version + checksum: the smallest well-formed blob envelope.
constexpr size_t kMinBlobSize = 4 + 4 + 4;

}  // namespace

std::string SerializeGraphBinary(const DependencyGraph& graph) {
  std::string out;
  size_t n = graph.size();
  // names + matrix dominate; 24 bytes/name is a comfortable overestimate.
  out.reserve(kMinBlobSize + n * 24 + n * n * 8 + 8);
  out.append(kGraphMagic, sizeof(kGraphMagic));
  graphio::AppendU32(&out, kGraphFormatVersion);
  graphio::AppendU64(&out, static_cast<uint64_t>(n));
  for (size_t i = 0; i < n; ++i) {
    const std::string& name = graph.name(i);
    graphio::AppendU64(&out, static_cast<uint64_t>(name.size()));
    out.append(name);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      graphio::AppendF64(&out, graph.mi(i, j));
    }
  }
  graphio::AppendU32(&out, graphio::Crc32(out));
  return out;
}

Result<DependencyGraph> DeserializeGraphBinary(std::string_view bytes) {
  if (bytes.size() < kMinBlobSize) {
    return InvalidArgumentError(
        StrFormat("graph blob too short (%zu bytes)", bytes.size()));
  }
  // Verify the trailing checksum before trusting any field.
  size_t crc_offset = bytes.size() - 4;
  uint32_t stored_crc = 0;
  size_t crc_cursor = crc_offset;
  if (!graphio::ReadU32(bytes, &crc_cursor, &stored_crc)) {
    return InvalidArgumentError("graph blob checksum unreadable");
  }
  uint32_t actual_crc = graphio::Crc32(bytes.substr(0, crc_offset));
  if (stored_crc != actual_crc) {
    return InvalidArgumentError(
        StrFormat("graph blob checksum mismatch (stored %08x, computed %08x):"
                  " data corrupted or truncated",
                  stored_crc, actual_crc));
  }
  size_t cursor = 0;
  if (bytes.substr(0, 4) != std::string_view(kGraphMagic, 4)) {
    return InvalidArgumentError("bad graph blob magic");
  }
  cursor = 4;
  uint32_t version = 0;
  if (!graphio::ReadU32(bytes, &cursor, &version)) {
    return InvalidArgumentError("truncated graph blob (version)");
  }
  if (version != kGraphFormatVersion) {
    return InvalidArgumentError(
        StrFormat("unsupported graph format version %u (expected %u)",
                  version, kGraphFormatVersion));
  }
  uint64_t n64 = 0;
  if (!graphio::ReadU64(bytes, &cursor, &n64)) {
    return InvalidArgumentError("truncated graph blob (node count)");
  }
  // Reject sizes whose matrix cannot possibly fit the blob, before
  // allocating anything proportional to them.
  if (n64 > (bytes.size() / 8) + 1) {
    return InvalidArgumentError(
        StrFormat("graph blob declares %llu nodes but holds %zu bytes",
                  static_cast<unsigned long long>(n64), bytes.size()));
  }
  size_t n = static_cast<size_t>(n64);
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t length = 0;
    if (!graphio::ReadU64(bytes, &cursor, &length)) {
      return InvalidArgumentError(
          StrFormat("truncated graph blob (name %zu length)", i));
    }
    if (length > bytes.size() - cursor) {
      return InvalidArgumentError(
          StrFormat("truncated graph blob (name %zu bytes)", i));
    }
    names.emplace_back(bytes.substr(cursor, static_cast<size_t>(length)));
    cursor += static_cast<size_t>(length);
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (!graphio::ReadF64(bytes, &cursor, &matrix[i][j])) {
        return InvalidArgumentError(
            StrFormat("truncated graph blob (matrix cell %zu,%zu)", i, j));
      }
    }
  }
  if (cursor != crc_offset) {
    return InvalidArgumentError(
        StrFormat("graph blob has %zu trailing bytes", crc_offset - cursor));
  }
  return DependencyGraph::Create(std::move(names), std::move(matrix));
}

Status WriteGraphFile(const std::string& path, const DependencyGraph& graph) {
  return graphio::WriteStringToFile(path, SerializeGraphBinary(graph));
}

Result<DependencyGraph> ReadGraphFile(const std::string& path) {
  std::string bytes;
  DEPMATCH_RETURN_IF_ERROR(graphio::ReadFileToString(path, &bytes));
  return DeserializeGraphBinary(bytes);
}

}  // namespace depmatch
