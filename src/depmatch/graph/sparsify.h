// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Dependency-graph sparsification.
//
// The paper's related-work section points at Bayesian-network structure
// learning as an alternative dependency model, citing in particular
// approaches that use mutual information to bound the structure search.
// The classic instance is the Chow-Liu tree: the maximum-weight spanning
// tree of the pairwise-MI graph is the best tree-shaped approximation of
// the joint distribution (Chow & Liu 1968). Matching sparsified graphs is
// cheaper (fewer meaningful cells) and filters estimation noise in weak
// edges; the accuracy trade-off is measured in bench_ablation_sparsify.
//
// Both transforms preserve node count, names, and the entropy diagonal;
// they only zero out non-selected off-diagonal edges.

#ifndef DEPMATCH_GRAPH_SPARSIFY_H_
#define DEPMATCH_GRAPH_SPARSIFY_H_

#include <cstddef>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"

namespace depmatch {

// Keeps only the edges of the maximum-weight spanning forest (Chow-Liu
// tree; a forest if ties at zero weight leave components disconnected —
// zero-weight edges are never needed since dropped edges become zero
// anyway). Deterministic: ties broken by (i, j) order.
Result<DependencyGraph> ChowLiuTree(const DependencyGraph& graph);

// Keeps only the globally strongest `k` off-diagonal edges (by MI value;
// ties broken by (i, j) order). k >= number of edges leaves the graph
// unchanged.
Result<DependencyGraph> KeepTopEdges(const DependencyGraph& graph,
                                     size_t k);

// Zeroes all edges with MI strictly below `threshold`.
Result<DependencyGraph> DropWeakEdges(const DependencyGraph& graph,
                                      double threshold);

// Number of nonzero off-diagonal edges (counting each undirected edge
// once).
size_t CountEdges(const DependencyGraph& graph);

}  // namespace depmatch

#endif  // DEPMATCH_GRAPH_SPARSIFY_H_
