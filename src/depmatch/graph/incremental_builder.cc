// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
// depmatch-lint: bit-identical-file
//
// Incremental Table2DepGraph (see incremental_builder.h for the
// bit-identity contract). Refresh refolds ONLY dirty entries, through
// the same EntropyFromSlots / DependencyEdgeValue folds the cold
// builder uses.

#include "depmatch/graph/incremental_builder.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "depmatch/common/thread_pool.h"
#include "depmatch/graph/sparsify.h"
#include "depmatch/stats/joint_kernel.h"

namespace depmatch {
namespace {

// DependencyEdgeValue's streaming counterpart: folds the measure
// directly over the pair state's canonical cell stream instead of
// emitting a JointCounts copy first. Every arithmetic step — the
// CellWeight memo fold, EntropyFromWeighted, EntropyFromSlots over the
// retained marginals, the chi-square cell fold — is the same operation
// in the same canonical cell order as THE edge fold on the emitted
// counts, so the value is bit-identical to EmitJoint +
// DependencyEdgeValue (which the incremental tests and the bench smoke
// assert against the cold build). Skipping the emission is what makes a
// refresh O(cells folded) rather than O(cells copied three times).
double EdgeValueFromState(DependencyMeasure measure, const PairCountState& pair,
                          bool has_marginals, const ColumnMarginal& mx,
                          const ColumnMarginal& my) {
  const uint64_t total = pair.total();
  if (total == 0) return 0.0;
  double hx = has_marginals ? EntropyFromSlots(pair.x_retained(), total)
                            : mx.entropy;
  double hy = has_marginals ? EntropyFromSlots(pair.y_retained(), total)
                            : my.entropy;
  switch (measure) {
    case DependencyMeasure::kMutualInformation:
    case DependencyMeasure::kNormalizedMutualInformation: {
      double weighted = pair.FoldCellWeights(CellWeightTable());
      double mi = hx + hy - EntropyFromWeighted(weighted, total);
      if (measure == DependencyMeasure::kMutualInformation) {
        return mi < 0.0 ? 0.0 : mi;
      }
      double denom = std::max(hx, hy);
      if (denom <= 0.0) return 0.0;
      if (mi < 0.0) mi = 0.0;
      return std::min(mi / denom, 1.0);
    }
    case DependencyMeasure::kCramersV: {
      size_t levels_x = has_marginals ? SupportFromSlots(pair.x_retained())
                                      : mx.support;
      size_t levels_y = has_marginals ? SupportFromSlots(pair.y_retained())
                                      : my.support;
      if (levels_x < 2 || levels_y < 2) return 0.0;
      const std::vector<uint64_t>& x_slots =
          has_marginals ? pair.x_retained() : mx.slots;
      const std::vector<uint64_t>& y_slots =
          has_marginals ? pair.y_retained() : my.slots;
      double n = static_cast<double>(total);
      double sum = 0.0;
      pair.ForEachCell([&](uint32_t sx, uint32_t sy, uint64_t count) {
        double row = static_cast<double>(x_slots[sx]);
        double col = static_cast<double>(y_slots[sy]);
        double observed = static_cast<double>(count);
        double expected = row * col / n;
        sum += observed * observed / expected;
      });
      double chi2 = sum - n;
      if (chi2 < 0.0) chi2 = 0.0;
      double denom = static_cast<double>(total) *
                     static_cast<double>(std::min(levels_x, levels_y) - 1);
      return std::min(std::sqrt(chi2 / denom), 1.0);
    }
  }
  return 0.0;
}

}  // namespace

Result<IncrementalGraphBuilder> IncrementalGraphBuilder::Create(
    const Table& table, const IncrementalBuildOptions& options) {
  IncrementalGraphBuilder builder;
  builder.options_ = options;
  CountStateOptions state_options;
  state_options.stats = options.graph.stats;
  state_options.num_threads = options.graph.num_threads;
  state_options.dense_state_cell_budget = options.dense_state_cell_budget;
  Result<TableCountState> state =
      TableCountState::FromTable(table, state_options);
  if (!state.ok()) return state.status();
  builder.state_ = *std::move(state);

  size_t n = builder.state_.num_columns();
  builder.names_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    builder.names_.push_back(table.schema().attribute(i).name);
  }
  builder.marginals_.resize(n);
  builder.matrix_.assign(n, std::vector<double>(n, 0.0));

  // FromTable leaves everything dirty, so the first Refresh folds the
  // full matrix — the cold build, retained.
  Result<DependencyGraph> graph = builder.Refresh();
  if (!graph.ok()) return graph.status();
  return builder;
}

Status IncrementalGraphBuilder::Append(const Table& delta) {
  return state_.Append(delta);
}

Status IncrementalGraphBuilder::Merge(const IncrementalGraphBuilder& other) {
  if (other.options_.graph.measure != options_.graph.measure) {
    return InvalidArgumentError(
        "Merge: builders use different dependency measures");
  }
  return state_.Merge(other.state_);
}

Result<DependencyGraph> IncrementalGraphBuilder::Refresh() {
  size_t n = state_.num_columns();
  const DirtySet& dirty = state_.dirty();
  size_t workers = std::max<size_t>(1, options_.graph.num_threads);

  // Dirty marginals: the same EmitMarginal -> entropy diagonal the cold
  // build derives. Clean ones keep their previously-folded doubles.
  last_refreshed_columns_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (dirty.column(i)) last_refreshed_columns_.push_back(i);
  }
  ThreadPool::ParallelForWithWorker(
      workers, last_refreshed_columns_.size(), [&](size_t, size_t k) {
        size_t i = last_refreshed_columns_[k];
        marginals_[i] = state_.EmitMarginal(i);
        matrix_[i][i] = marginals_[i].entropy;
      });

  // Dirty edges: refold the measure by streaming the pair's merged
  // counts in canonical order straight out of the state (no JointCounts
  // materialization; see EdgeValueFromState for the bit-identity
  // argument).
  std::vector<std::pair<size_t, size_t>> dirty_pairs;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (dirty.pair(i, j)) dirty_pairs.emplace_back(i, j);
    }
  }
  ThreadPool::ParallelForWithWorker(
      workers, dirty_pairs.size(), [&](size_t, size_t k) {
        auto [i, j] = dirty_pairs[k];
        double value = EdgeValueFromState(
            options_.graph.measure, state_.pair_state(i, j),
            state_.pair_has_marginals(i, j), marginals_[i], marginals_[j]);
        matrix_[i][j] = value;
        matrix_[j][i] = value;
      });

  Result<DependencyGraph> graph = DependencyGraph::Create(names_, matrix_);
  if (!graph.ok()) return graph.status();
  Result<DependencyGraph> sparsified = Sparsify(*std::move(graph));
  if (!sparsified.ok()) return sparsified.status();
  graph_ = *std::move(sparsified);
  state_.ClearDirty();
  return graph_;
}

Result<DependencyGraph> IncrementalGraphBuilder::Sparsify(
    DependencyGraph graph) const {
  switch (options_.sparsify) {
    case GraphSparsify::kNone:
      return graph;
    case GraphSparsify::kChowLiuTree:
      return ChowLiuTree(graph);
    case GraphSparsify::kTopK:
      return KeepTopEdges(graph, options_.top_k);
    case GraphSparsify::kDropWeak:
      return DropWeakEdges(graph, options_.weak_threshold);
  }
  return graph;
}

}  // namespace depmatch
