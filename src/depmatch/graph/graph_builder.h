// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Table2DepGraph (step 1 of the paper's algorithm): computes pairwise
// mutual information over all attribute pairs of a table and assembles
// the dependency graph.
//
// The O(n^2) pairwise phase runs on the joint-count kernels of
// stats/joint_kernel.h: each pair is counted densely (flat matrix) when
// (distinct_x + 1) * (distinct_y + 1) fits options.stats.dense_cell_budget
// and sparsely (hash map) otherwise, each column's marginal histogram and
// entropy are computed once and shared across all pairs, and each worker
// thread reuses one kernel's scratch across its pairs. Both kernels emit
// counts in a canonical order, so the resulting graph is bit-identical
// across kernel choices and thread counts. docs/performance.md describes
// the selection rule and how to tune the budget.

#ifndef DEPMATCH_GRAPH_GRAPH_BUILDER_H_
#define DEPMATCH_GRAPH_GRAPH_BUILDER_H_

#include <cstddef>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/stats/entropy.h"
#include "depmatch/stats/joint_kernel.h"
#include "depmatch/stats/stat_cache.h"
#include "depmatch/table/encoded_column.h"
#include "depmatch/table/table.h"

namespace depmatch {

// Which dependency statistic labels the graph's edges. The paper uses
// mutual information; the alternatives realize its "other dependency
// models" future-work direction. The diagonal (node label) is always the
// attribute entropy, so entropy-based candidate filtering and the
// entropy-only metrics behave identically across measures.
enum class DependencyMeasure {
  kMutualInformation,            // MI(X;Y) in bits (the paper's choice)
  kNormalizedMutualInformation,  // MI / max(H) in [0, 1]
  kCramersV,                     // chi-square association in [0, 1]
};

struct DependencyGraphOptions {
  // Null handling plus the dense-kernel cell budget (stats.dense_cell_budget;
  // 0 forces the sparse hash-map path for every pair).
  StatsOptions stats;
  // Worker threads for the O(n^2) MI computation; 1 = serial. The result
  // is identical for every thread count.
  size_t num_threads = 1;
  DependencyMeasure measure = DependencyMeasure::kMutualInformation;
};

// One pairwise edge value from a counting result plus the two column
// marginals (the per-pair retained marginals take over when the counting
// pass filled them; see JointCounts::has_marginals). This is THE edge
// fold: both cold build overloads below and graph/incremental_builder.h
// call it, which is what makes an incremental refresh bit-identical to a
// cold rebuild — identical counts fed through identical folds.
double DependencyEdgeValue(DependencyMeasure measure, const JointCounts& joint,
                           const ColumnMarginal& mx, const ColumnMarginal& my);

// Builds the dependency graph of `table`: m[i][j] = MI(a_i; a_j), with the
// diagonal m[i][i] = H(a_i) (self-information). Deterministic for a given
// table and options.
Result<DependencyGraph> BuildDependencyGraph(
    const Table& table, const DependencyGraphOptions& options = {});

// Same over a zero-copy view of an encoded table snapshot, consuming
// pre-encoded slot arrays directly (no Value is copied or re-hashed).
// When `cache` is non-null, per-column selection stats (remapped slots,
// marginal, entropy) are fetched through it, so repeated builds over
// overlapping slices of the same base table encode each column once; the
// pairwise edge values are memoized too, so a column pair recurring
// across builds (same selection, policy, measure) skips the joint count
// entirely.
//
// Bit-identical contract: a view with no row selection yields exactly
// BuildDependencyGraph(table) on the snapshotted table; a view with a row
// selection yields exactly the graph of the SelectRows-materialized table
// (first-appearance remap, see table/encoded_column.h). Cached and cold
// builds are identical by construction.
Result<DependencyGraph> BuildDependencyGraph(
    const EncodedTableView& view, const DependencyGraphOptions& options = {},
    StatCache* cache = nullptr);

}  // namespace depmatch

#endif  // DEPMATCH_GRAPH_GRAPH_BUILDER_H_
