#include "depmatch/graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "depmatch/common/thread_pool.h"
#include "depmatch/stats/joint_kernel.h"
#include "depmatch/stats/joint_sketch.h"

namespace depmatch {
namespace {

// Cache-blocked strict-upper-triangle work list. Pairs are emitted in
// kPairBlockColumns x kPairBlockColumns tiles, so a worker draining
// consecutive work items touches a bounded set of encoded columns per
// stretch: each block of columns streams through cache once per tile
// instead of once per pair across the whole row. The pair SET is exactly
// the strict upper triangle and every pair's fold is independent of
// evaluation order, so results are identical to the flat order.
inline constexpr size_t kPairBlockColumns = 8;

std::vector<std::pair<size_t, size_t>> BlockedPairs(size_t n) {
  std::vector<std::pair<size_t, size_t>> pairs;
  if (n > 1) pairs.reserve(n * (n - 1) / 2);
  for (size_t bi = 0; bi < n; bi += kPairBlockColumns) {
    const size_t ei = std::min(n, bi + kPairBlockColumns);
    for (size_t bj = bi; bj < n; bj += kPairBlockColumns) {
      const size_t ej = std::min(n, bj + kPairBlockColumns);
      for (size_t i = bi; i < ei; ++i) {
        for (size_t j = std::max(i + 1, bj); j < ej; ++j) {
          pairs.emplace_back(i, j);
        }
      }
    }
  }
  return pairs;
}

// DependencyEdgeValue's counterpart for a sketched pair. Marginals (and
// thus hx/hy
// and the level counts) stay exact; only the joint folds are estimates.
double SketchEdgeValue(DependencyMeasure measure,
                       const SketchedJoint& sketched,
                       const ColumnMarginal& mx, const ColumnMarginal& my) {
  if (sketched.total == 0) return 0.0;
  double hx = sketched.has_marginals
                  ? EntropyFromSlots(sketched.x_marginals, sketched.total)
                  : mx.entropy;
  double hy = sketched.has_marginals
                  ? EntropyFromSlots(sketched.y_marginals, sketched.total)
                  : my.entropy;
  switch (measure) {
    case DependencyMeasure::kMutualInformation: {
      // The sketch under-estimates H(X,Y); clamp MI_hat into the exact
      // quantity's feasible range [0, min(hx, hy)].
      double mi = hx + hy - sketched.joint_entropy;
      if (mi < 0.0) mi = 0.0;
      return std::min(mi, std::min(hx, hy));
    }
    case DependencyMeasure::kNormalizedMutualInformation: {
      double denom = std::max(hx, hy);
      if (denom <= 0.0) return 0.0;
      double mi = hx + hy - sketched.joint_entropy;
      if (mi < 0.0) mi = 0.0;
      mi = std::min(mi, std::min(hx, hy));
      return std::min(mi / denom, 1.0);
    }
    case DependencyMeasure::kCramersV: {
      size_t levels_x =
          sketched.has_marginals ? SupportFromSlots(sketched.x_marginals)
                                 : mx.support;
      size_t levels_y =
          sketched.has_marginals ? SupportFromSlots(sketched.y_marginals)
                                 : my.support;
      if (levels_x < 2 || levels_y < 2) return 0.0;
      double denom = static_cast<double>(sketched.total) *
                     static_cast<double>(std::min(levels_x, levels_y) - 1);
      return std::min(std::sqrt(sketched.chi_square / denom), 1.0);
    }
  }
  return 0.0;
}

// Edge memo tag: bits 0-1 the measure (the fold differs per measure),
// bit 2 the sketch flag, and — for sketched edges only — bits 3..25 the
// sketch width and 26..29 the depth, so a value estimated under one
// (epsilon, delta) shape never aliases another shape or the exact value.
// Exact edges keep the kernel knobs OUT of the tag: dense/sparse/dispatch
// all emit bit-identical folds (stat_cache.h documents the contract).
uint32_t EdgeFoldTag(DependencyMeasure measure, bool sketched,
                     const SketchParams& params) {
  uint32_t tag = static_cast<uint32_t>(measure);
  if (sketched) {
    tag |= 0x4u | (params.width << 3) | (params.depth << 26);
  }
  return tag;
}

}  // namespace

// THE edge fold (see graph_builder.h): every builder — cold table, cold
// view, incremental refresh — funnels through this one body, so equal
// counts always produce bit-equal edge values.
double DependencyEdgeValue(DependencyMeasure measure, const JointCounts& joint,
                           const ColumnMarginal& mx, const ColumnMarginal& my) {
  if (joint.total == 0) return 0.0;
  // Under kDropNulls with nulls present the retained rows are
  // pair-specific and the kernel supplies marginals; otherwise the cached
  // pair-invariant column marginals apply.
  double hx = joint.has_marginals
                  ? EntropyFromSlots(joint.x_marginals, joint.total)
                  : mx.entropy;
  double hy = joint.has_marginals
                  ? EntropyFromSlots(joint.y_marginals, joint.total)
                  : my.entropy;
  switch (measure) {
    case DependencyMeasure::kMutualInformation: {
      double mi = hx + hy - JointEntropyFromCells(joint);
      return mi < 0.0 ? 0.0 : mi;
    }
    case DependencyMeasure::kNormalizedMutualInformation: {
      double denom = std::max(hx, hy);
      if (denom <= 0.0) return 0.0;
      double mi = hx + hy - JointEntropyFromCells(joint);
      if (mi < 0.0) mi = 0.0;
      return std::min(mi / denom, 1.0);
    }
    case DependencyMeasure::kCramersV: {
      size_t levels_x =
          joint.has_marginals ? SupportFromSlots(joint.x_marginals)
                              : mx.support;
      size_t levels_y =
          joint.has_marginals ? SupportFromSlots(joint.y_marginals)
                              : my.support;
      if (levels_x < 2 || levels_y < 2) return 0.0;
      double chi2 = ChiSquareFromCounts(
          joint, joint.has_marginals ? joint.x_marginals : mx.slots,
          joint.has_marginals ? joint.y_marginals : my.slots);
      double denom = static_cast<double>(joint.total) *
                     static_cast<double>(std::min(levels_x, levels_y) - 1);
      return std::min(std::sqrt(chi2 / denom), 1.0);
    }
  }
  return 0.0;
}

Result<DependencyGraph> BuildDependencyGraph(
    const Table& table, const DependencyGraphOptions& options) {
  size_t n = table.num_attributes();
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(table.schema().attribute(i).name);
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));

  size_t workers = std::max<size_t>(options.num_threads, 1);

  // Marginal cache: each column's histogram, support, and entropy are
  // computed exactly once and shared across all pairs, so per-pair work is
  // joint counting plus the joint fold only.
  std::vector<ColumnMarginal> marginals(n);
  ThreadPool::ParallelForWithWorker(
      workers, n, [&](size_t /*worker*/, size_t i) {
        marginals[i] =
            ComputeColumnMarginal(table.column(i), options.stats.null_policy);
      });

  // Node labels are always entropies (self-information MI(X;X) == H(X));
  // the cached marginal entropy equals EntropyOf bit-for-bit.
  for (size_t i = 0; i < n; ++i) {
    matrix[i][i] = marginals[i].entropy;
  }

  // Strict upper-triangle work list, in cache-blocked tile order.
  std::vector<std::pair<size_t, size_t>> pairs = BlockedPairs(n);

  // One counting kernel per worker: scratch buffers are allocated
  // O(threads) times and reused across pairs. Sketch kernels engage only
  // for pairs UseSketch admits (opt-in + over-budget).
  std::vector<JointCountKernel> kernels(workers);
  std::vector<JointSketchKernel> sketchers(workers);
  ThreadPool::ParallelForWithWorker(
      workers, pairs.size(), [&](size_t worker, size_t k) {
        auto [i, j] = pairs[k];
        double value;
        if (UseSketch(table.column(i), table.column(j), options.stats)) {
          const SketchedJoint& sketched = sketchers[worker].Estimate(
              table.column(i), table.column(j), options.stats);
          value = SketchEdgeValue(options.measure, sketched, marginals[i],
                                  marginals[j]);
        } else {
          const JointCounts& joint = kernels[worker].Count(
              table.column(i), table.column(j), options.stats);
          value = DependencyEdgeValue(options.measure, joint, marginals[i],
                                      marginals[j]);
        }
        matrix[i][j] = value;
        matrix[j][i] = value;
      });

  return DependencyGraph::Create(std::move(names), std::move(matrix));
}

Result<DependencyGraph> BuildDependencyGraph(
    const EncodedTableView& view, const DependencyGraphOptions& options,
    StatCache* cache) {
  if (!view.valid()) {
    return InvalidArgumentError("BuildDependencyGraph: invalid (empty) view");
  }
  size_t n = view.num_attributes();
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(view.attribute_name(i));
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));

  size_t workers = std::max<size_t>(options.num_threads, 1);

  // Per-column selection stats play the marginal cache's role and carry
  // the (possibly remapped) slot arrays; with a StatCache they are also
  // memoized across builds sharing the base table and row selection.
  std::vector<std::shared_ptr<const ColumnSelectionStats>> stats(n);
  ThreadPool::ParallelForWithWorker(
      workers, n, [&](size_t /*worker*/, size_t i) {
        stats[i] = cache != nullptr
                       ? cache->Get(view, i, options.stats.null_policy)
                       : ComputeSelectionStats(view, i,
                                               options.stats.null_policy);
      });

  for (size_t i = 0; i < n; ++i) {
    matrix[i][i] = stats[i]->marginal.entropy;
  }

  std::vector<std::pair<size_t, size_t>> pairs = BlockedPairs(n);

  // The edge memo keys on the measure and — for sketched pairs — the
  // sketch shape (see EdgeFoldTag), never on the exact-kernel knobs.
  const SketchParams sketch_params = SketchParams::FromBounds(
      options.stats.sketch_epsilon, options.stats.sketch_delta);
  const uint32_t exact_tag =
      EdgeFoldTag(options.measure, /*sketched=*/false, sketch_params);
  const uint32_t sketch_tag =
      EdgeFoldTag(options.measure, /*sketched=*/true, sketch_params);
  const NullPolicy policy = options.stats.null_policy;

  std::vector<JointCountKernel> kernels(workers);
  std::vector<JointSketchKernel> sketchers(workers);
  ThreadPool::ParallelForWithWorker(
      workers, pairs.size(), [&](size_t worker, size_t k) {
        auto [i, j] = pairs[k];
        const CodeView& xi = stats[i]->code_view();
        const CodeView& xj = stats[j]->code_view();
        const bool sketched = UseSketch(xi, xj, options.stats);
        const uint32_t fold_tag = sketched ? sketch_tag : exact_tag;
        double value;
        if (cache == nullptr ||
            !cache->GetEdge(view, i, j, policy, fold_tag, &value)) {
          if (sketched) {
            const SketchedJoint& estimate = sketchers[worker].Estimate(
                xi, xj, stats[i]->marginal.slots, stats[j]->marginal.slots,
                options.stats);
            value = SketchEdgeValue(options.measure, estimate,
                                    stats[i]->marginal, stats[j]->marginal);
          } else {
            const JointCounts& joint =
                kernels[worker].Count(xi, xj, options.stats);
            value = DependencyEdgeValue(options.measure, joint,
                                        stats[i]->marginal, stats[j]->marginal);
          }
          if (cache != nullptr) {
            cache->PutEdge(view, i, j, policy, fold_tag, value);
          }
        }
        matrix[i][j] = value;
        matrix[j][i] = value;
      });

  return DependencyGraph::Create(std::move(names), std::move(matrix));
}

}  // namespace depmatch
