#include "depmatch/graph/graph_builder.h"

#include <string>
#include <utility>
#include <vector>

#include "depmatch/common/thread_pool.h"
#include "depmatch/stats/association.h"

namespace depmatch {

Result<DependencyGraph> BuildDependencyGraph(
    const Table& table, const DependencyGraphOptions& options) {
  size_t n = table.num_attributes();
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(table.schema().attribute(i).name);
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));

  // Upper-triangle work list (including the diagonal).
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n + 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      pairs.emplace_back(i, j);
    }
  }

  auto compute = [&](size_t k) {
    auto [i, j] = pairs[k];
    double value = 0.0;
    if (i == j) {
      // Node labels are always entropies (self-information MI(X;X) ==
      // H(X)); EntropyOf avoids building the diagonal joint histogram.
      value = EntropyOf(table.column(i), options.stats);
    } else {
      switch (options.measure) {
        case DependencyMeasure::kMutualInformation:
          value = MutualInformation(table.column(i), table.column(j),
                                    options.stats);
          break;
        case DependencyMeasure::kNormalizedMutualInformation:
          value = NormalizedMutualInformation(table.column(i),
                                              table.column(j),
                                              options.stats);
          break;
        case DependencyMeasure::kCramersV:
          value = CramersV(table.column(i), table.column(j), options.stats);
          break;
      }
    }
    matrix[i][j] = value;
    matrix[j][i] = value;
  };

  if (options.num_threads > 1) {
    ThreadPool::ParallelFor(options.num_threads, pairs.size(), compute);
  } else {
    for (size_t k = 0; k < pairs.size(); ++k) compute(k);
  }

  return DependencyGraph::Create(std::move(names), std::move(matrix));
}

}  // namespace depmatch
