#include "depmatch/graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "depmatch/common/thread_pool.h"
#include "depmatch/stats/joint_kernel.h"

namespace depmatch {
namespace {

// One pairwise edge value from a counting result plus the marginal cache.
double EdgeValue(DependencyMeasure measure, const JointCounts& joint,
                 const ColumnMarginal& mx, const ColumnMarginal& my) {
  if (joint.total == 0) return 0.0;
  // Under kDropNulls with nulls present the retained rows are
  // pair-specific and the kernel supplies marginals; otherwise the cached
  // pair-invariant column marginals apply.
  double hx = joint.has_marginals
                  ? EntropyFromSlots(joint.x_marginals, joint.total)
                  : mx.entropy;
  double hy = joint.has_marginals
                  ? EntropyFromSlots(joint.y_marginals, joint.total)
                  : my.entropy;
  switch (measure) {
    case DependencyMeasure::kMutualInformation: {
      double mi = hx + hy - JointEntropyFromCells(joint);
      return mi < 0.0 ? 0.0 : mi;
    }
    case DependencyMeasure::kNormalizedMutualInformation: {
      double denom = std::max(hx, hy);
      if (denom <= 0.0) return 0.0;
      double mi = hx + hy - JointEntropyFromCells(joint);
      if (mi < 0.0) mi = 0.0;
      return std::min(mi / denom, 1.0);
    }
    case DependencyMeasure::kCramersV: {
      size_t levels_x =
          joint.has_marginals ? SupportFromSlots(joint.x_marginals)
                              : mx.support;
      size_t levels_y =
          joint.has_marginals ? SupportFromSlots(joint.y_marginals)
                              : my.support;
      if (levels_x < 2 || levels_y < 2) return 0.0;
      double chi2 = ChiSquareFromCounts(
          joint, joint.has_marginals ? joint.x_marginals : mx.slots,
          joint.has_marginals ? joint.y_marginals : my.slots);
      double denom = static_cast<double>(joint.total) *
                     static_cast<double>(std::min(levels_x, levels_y) - 1);
      return std::min(std::sqrt(chi2 / denom), 1.0);
    }
  }
  return 0.0;
}

}  // namespace

Result<DependencyGraph> BuildDependencyGraph(
    const Table& table, const DependencyGraphOptions& options) {
  size_t n = table.num_attributes();
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(table.schema().attribute(i).name);
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));

  size_t workers = std::max<size_t>(options.num_threads, 1);

  // Marginal cache: each column's histogram, support, and entropy are
  // computed exactly once and shared across all pairs, so per-pair work is
  // joint counting plus the joint fold only.
  std::vector<ColumnMarginal> marginals(n);
  ThreadPool::ParallelForWithWorker(
      workers, n, [&](size_t /*worker*/, size_t i) {
        marginals[i] =
            ComputeColumnMarginal(table.column(i), options.stats.null_policy);
      });

  // Node labels are always entropies (self-information MI(X;X) == H(X));
  // the cached marginal entropy equals EntropyOf bit-for-bit.
  for (size_t i = 0; i < n; ++i) {
    matrix[i][i] = marginals[i].entropy;
  }

  // Strict upper-triangle work list.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      pairs.emplace_back(i, j);
    }
  }

  // One counting kernel per worker: scratch buffers are allocated
  // O(threads) times and reused across pairs.
  std::vector<JointCountKernel> kernels(workers);
  ThreadPool::ParallelForWithWorker(
      workers, pairs.size(), [&](size_t worker, size_t k) {
        auto [i, j] = pairs[k];
        const JointCounts& joint = kernels[worker].Count(
            table.column(i), table.column(j), options.stats);
        double value =
            EdgeValue(options.measure, joint, marginals[i], marginals[j]);
        matrix[i][j] = value;
        matrix[j][i] = value;
      });

  return DependencyGraph::Create(std::move(names), std::move(matrix));
}

Result<DependencyGraph> BuildDependencyGraph(
    const EncodedTableView& view, const DependencyGraphOptions& options,
    StatCache* cache) {
  if (!view.valid()) {
    return InvalidArgumentError("BuildDependencyGraph: invalid (empty) view");
  }
  size_t n = view.num_attributes();
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(view.attribute_name(i));
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));

  size_t workers = std::max<size_t>(options.num_threads, 1);

  // Per-column selection stats play the marginal cache's role and carry
  // the (possibly remapped) slot arrays; with a StatCache they are also
  // memoized across builds sharing the base table and row selection.
  std::vector<std::shared_ptr<const ColumnSelectionStats>> stats(n);
  ThreadPool::ParallelForWithWorker(
      workers, n, [&](size_t /*worker*/, size_t i) {
        stats[i] = cache != nullptr
                       ? cache->Get(view, i, options.stats.null_policy)
                       : ComputeSelectionStats(view, i,
                                               options.stats.null_policy);
      });

  for (size_t i = 0; i < n; ++i) {
    matrix[i][i] = stats[i]->marginal.entropy;
  }

  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      pairs.emplace_back(i, j);
    }
  }

  // The edge memo keys on the measure as well (the fold differs), not on
  // the kernel knobs (dense/sparse/auto emit bit-identical folds).
  const uint32_t fold_tag = static_cast<uint32_t>(options.measure);
  const NullPolicy policy = options.stats.null_policy;

  std::vector<JointCountKernel> kernels(workers);
  ThreadPool::ParallelForWithWorker(
      workers, pairs.size(), [&](size_t worker, size_t k) {
        auto [i, j] = pairs[k];
        double value;
        if (cache == nullptr ||
            !cache->GetEdge(view, i, j, policy, fold_tag, &value)) {
          const JointCounts& joint = kernels[worker].Count(
              stats[i]->code_view(), stats[j]->code_view(), options.stats);
          value = EdgeValue(options.measure, joint, stats[i]->marginal,
                            stats[j]->marginal);
          if (cache != nullptr) {
            cache->PutEdge(view, i, j, policy, fold_tag, value);
          }
        }
        matrix[i][j] = value;
        matrix[j][i] = value;
      });

  return DependencyGraph::Create(std::move(names), std::move(matrix));
}

}  // namespace depmatch
