// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// DependencyGraph: the paper's Definition 2.4.
//
// An undirected labeled graph over the attributes of one table, stored as a
// symmetric square matrix M where m[i][j] = MI(a_i; a_j). Edge labels are
// pairwise mutual information; node labels are attribute entropies, which
// equal the diagonal (self-information MI(a_i; a_i) = H(a_i)).

#ifndef DEPMATCH_GRAPH_DEPENDENCY_GRAPH_H_
#define DEPMATCH_GRAPH_DEPENDENCY_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "depmatch/common/status.h"

namespace depmatch {

class DependencyGraph {
 public:
  DependencyGraph() = default;

  // Validates that `matrix` is square of dimension names.size(), symmetric
  // (within 1e-9), and non-negative.
  static Result<DependencyGraph> Create(std::vector<std::string> names,
                                        std::vector<std::vector<double>> matrix);

  size_t size() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  // MI(a_i; a_j). Symmetric.
  double mi(size_t i, size_t j) const { return matrix_[i][j]; }
  // H(a_i) == mi(i, i).
  double entropy(size_t i) const { return matrix_[i][i]; }

  // Induced sub-graph on `indices` (order defines new node numbering).
  // Fails on out-of-range or duplicate indices.
  Result<DependencyGraph> SubGraph(const std::vector<size_t>& indices) const;

  // Human-readable matrix with node names, for debugging and examples.
  std::string ToString() const;

  // Round-trippable text serialization:
  //   line 1: n
  //   line 2: tab-separated names
  //   next n lines: tab-separated row of the MI matrix ("%.17g")
  std::string Serialize() const;
  static Result<DependencyGraph> Deserialize(const std::string& text);

 private:
  DependencyGraph(std::vector<std::string> names,
                  std::vector<std::vector<double>> matrix)
      : names_(std::move(names)), matrix_(std::move(matrix)) {}

  std::vector<std::string> names_;
  std::vector<std::vector<double>> matrix_;
};

}  // namespace depmatch

#endif  // DEPMATCH_GRAPH_DEPENDENCY_GRAPH_H_
