// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Incremental Table2DepGraph: a dependency-graph builder that retains
// the mergeable count state (stats/count_state.h) of everything it has
// ingested, so appending rows costs O(delta) counting plus a refold of
// only the DIRTY entropy/MI entries — never a full pass over the
// accumulated table.
//
// Bit-identity contract (asserted by incremental_builder_test.cc at
// 1/2/8 threads across dense/sparse kernel strategies, and end-to-end
// through catalog signatures and service snapshots by the stress
// suites): after any sequence of Append/Merge calls, Refresh() returns
// exactly — every double bit-equal — the graph BuildDependencyGraph
// would produce on the row-concatenation of everything ingested, with
// the same options. The chain of reasoning:
//   1. TableCountState reproduces the concatenated table's exact
//      integer counts, emitted in the kernels' canonical cell order
//      (count_state.h).
//   2. Marginal entropies and edge values are produced by the same
//      folds the cold builder uses: EntropyFromSlots over identical
//      slot counts and DependencyEdgeValue over identical JointCounts.
//   3. Clean entries are not recomputed at all — their cached doubles
//      ARE the values the cold build would derive, because their counts
//      did not change (DirtySet rules, count_state.h).
// Sparsification is a pure function of the full matrix, re-applied per
// Refresh, so it commutes with the identity above.
//
// The sketched-MI tier is rejected at Create: sketch estimates are not
// mergeable counts, so an incremental builder over them could not honor
// the contract (use the cold builder for sketched pipelines).
//
// Thread safety: none — single-writer, like the count state it owns.
// Refresh() internally fans dirty-entry refolds across
// options.graph.num_threads workers; each entry is written by exactly
// one worker, so results are thread-invariant. The builder is copyable:
// a copy is an independent fork of the ingestion history (used by the
// service's replace path and by bench_incremental's repeated trials).

#ifndef DEPMATCH_GRAPH_INCREMENTAL_BUILDER_H_
#define DEPMATCH_GRAPH_INCREMENTAL_BUILDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/stats/count_state.h"
#include "depmatch/table/table.h"

namespace depmatch {

// Sparsification applied to the refreshed graph (graph/sparsify.h).
// Applied to the FULL refreshed matrix every Refresh, so the published
// graph equals sparsify(cold rebuild) exactly.
enum class GraphSparsify {
  kNone,
  kChowLiuTree,  // maximum-weight spanning forest of the MI graph
  kTopK,         // keep the strongest top_k off-diagonal edges
  kDropWeak,     // zero edges below weak_threshold
};

struct IncrementalBuildOptions {
  // Measure, null policy, kernel knobs, and refold parallelism — the
  // exact options the equivalent cold BuildDependencyGraph would take.
  DependencyGraphOptions graph;
  GraphSparsify sparsify = GraphSparsify::kNone;
  size_t top_k = 0;             // kTopK only
  double weak_threshold = 0.0;  // kDropWeak only
  // Forwarded to CountStateOptions::dense_state_cell_budget.
  size_t dense_state_cell_budget = size_t{1} << 16;
};

class IncrementalGraphBuilder {
 public:
  IncrementalGraphBuilder() = default;

  // Cold build over `table`: one full counting pass, retained as count
  // state, plus the initial Refresh. Fails with InvalidArgument when
  // options.graph.stats.sketch_mode is not kOff.
  static Result<IncrementalGraphBuilder> Create(
      const Table& table, const IncrementalBuildOptions& options = {});

  // O(delta)-cost ingestion (see count_state.h). The graph() is stale
  // until the next Refresh().
  Status Append(const Table& delta);
  Status Merge(const IncrementalGraphBuilder& other);

  // Recomputes the dirty marginals and edges, re-derives (and
  // re-sparsifies) the dependency graph, and clears the dirty set.
  // Returns the refreshed graph; graph() returns the same object.
  Result<DependencyGraph> Refresh();

  // Last refreshed graph (valid after Create; stale after Append/Merge
  // until Refresh).
  const DependencyGraph& graph() const { return graph_; }

  // Columns whose marginals the last Refresh recomputed — the exact
  // eviction set for digest-keyed caches layered above.
  const std::vector<size_t>& last_refreshed_columns() const {
    return last_refreshed_columns_;
  }

  const TableCountState& state() const { return state_; }
  const IncrementalBuildOptions& options() const { return options_; }
  uint64_t rows() const { return state_.rows(); }
  uint64_t generation() const { return state_.generation(); }
  uint64_t digest() const { return state_.digest(); }

 private:
  Result<DependencyGraph> Sparsify(DependencyGraph graph) const;

  IncrementalBuildOptions options_;
  TableCountState state_;
  // Caches carried across refreshes: clean entries keep their exact
  // previously-folded doubles (bit-identity point 3 above).
  std::vector<ColumnMarginal> marginals_;
  std::vector<std::vector<double>> matrix_;
  std::vector<std::string> names_;
  DependencyGraph graph_;
  std::vector<size_t> last_refreshed_columns_;
};

}  // namespace depmatch

#endif  // DEPMATCH_GRAPH_INCREMENTAL_BUILDER_H_
