#include "depmatch/graph/sparsify.h"

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

namespace depmatch {
namespace {

struct Edge {
  size_t i;
  size_t j;
  double weight;
};

// All off-diagonal edges (i < j) sorted by descending weight, ties by
// (i, j).
std::vector<Edge> SortedEdges(const DependencyGraph& graph) {
  std::vector<Edge> edges;
  for (size_t i = 0; i < graph.size(); ++i) {
    for (size_t j = i + 1; j < graph.size(); ++j) {
      edges.push_back({i, j, graph.mi(i, j)});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return std::tie(a.i, a.j) < std::tie(b.i, b.j);
  });
  return edges;
}

// Rebuilds the graph keeping the given edges (plus the diagonal).
Result<DependencyGraph> WithEdges(const DependencyGraph& graph,
                                  const std::vector<Edge>& kept) {
  size_t n = graph.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) matrix[i][i] = graph.entropy(i);
  for (const Edge& edge : kept) {
    matrix[edge.i][edge.j] = edge.weight;
    matrix[edge.j][edge.i] = edge.weight;
  }
  return DependencyGraph::Create(graph.names(), std::move(matrix));
}

// Union-find for Kruskal.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<DependencyGraph> ChowLiuTree(const DependencyGraph& graph) {
  DisjointSets components(graph.size());
  std::vector<Edge> kept;
  for (const Edge& edge : SortedEdges(graph)) {
    if (edge.weight <= 0.0) break;  // zero edges are dropped anyway
    if (components.Union(edge.i, edge.j)) {
      kept.push_back(edge);
    }
  }
  return WithEdges(graph, kept);
}

Result<DependencyGraph> KeepTopEdges(const DependencyGraph& graph,
                                     size_t k) {
  std::vector<Edge> edges = SortedEdges(graph);
  if (edges.size() > k) edges.resize(k);
  return WithEdges(graph, edges);
}

Result<DependencyGraph> DropWeakEdges(const DependencyGraph& graph,
                                      double threshold) {
  std::vector<Edge> kept;
  for (const Edge& edge : SortedEdges(graph)) {
    if (edge.weight >= threshold) kept.push_back(edge);
  }
  return WithEdges(graph, kept);
}

size_t CountEdges(const DependencyGraph& graph) {
  size_t count = 0;
  for (size_t i = 0; i < graph.size(); ++i) {
    for (size_t j = i + 1; j < graph.size(); ++j) {
      if (graph.mi(i, j) > 0.0) ++count;
    }
  }
  return count;
}

}  // namespace depmatch
