// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Versioned binary serialization for DependencyGraph, so catalogs of
// precomputed graphs load from disk instead of re-running
// Table2DepGraph on every process start.
//
// Blob layout (all integers little-endian, all doubles raw IEEE-754
// bit patterns, so the round trip is bit-identical by construction):
//
//   bytes 0..3   magic "DMG1"
//   u32          format version (currently 1)
//   u64          n (node count)
//   n times      u64 name length + raw name bytes
//   n*n times    f64 MI matrix entry, row-major
//   u32          CRC-32 (polynomial 0xEDB88320) of every preceding byte
//
// Deserialization verifies the trailing checksum before interpreting
// any field, then bounds-checks every read; corruption and truncation
// surface as InvalidArgument Status values, never as crashes or
// silently wrong graphs. The version field gates future layout changes:
// an unknown version is rejected with a message naming both versions.
//
// The low-level primitives (little-endian append/read, CRC-32) are
// exported under graphio:: so the catalog store (core/graph_catalog.h)
// frames its multi-graph files with the same encoding and checksum.

#ifndef DEPMATCH_GRAPH_GRAPH_IO_H_
#define DEPMATCH_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"

namespace depmatch {

// Serializes `graph` to the versioned, checksummed binary blob above.
std::string SerializeGraphBinary(const DependencyGraph& graph);

// Parses a blob produced by SerializeGraphBinary. Fails with
// InvalidArgument on bad magic, unknown version, checksum mismatch,
// truncation, or trailing garbage.
Result<DependencyGraph> DeserializeGraphBinary(std::string_view bytes);

// Whole-file convenience wrappers around the blob form.
Status WriteGraphFile(const std::string& path, const DependencyGraph& graph);
Result<DependencyGraph> ReadGraphFile(const std::string& path);

namespace graphio {

// Little-endian primitives. The Read* forms return false when fewer
// than the needed bytes remain past *cursor (cursor is advanced only on
// success).
void AppendU32(std::string* out, uint32_t value);
void AppendU64(std::string* out, uint64_t value);
void AppendF64(std::string* out, double value);
bool ReadU32(std::string_view bytes, size_t* cursor, uint32_t* value);
bool ReadU64(std::string_view bytes, size_t* cursor, uint64_t* value);
bool ReadF64(std::string_view bytes, size_t* cursor, double* value);

// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/PNG polynomial),
// guaranteed to detect any error burst of up to 32 bits, so every
// single-byte corruption of a blob is caught.
uint32_t Crc32(std::string_view bytes);

// Binary whole-file I/O with Status-based error reporting (NotFound for
// an unopenable path, Internal for short writes/reads).
Status ReadFileToString(const std::string& path, std::string* out);
Status WriteStringToFile(const std::string& path, std::string_view data);

}  // namespace graphio
}  // namespace depmatch

#endif  // DEPMATCH_GRAPH_GRAPH_IO_H_
