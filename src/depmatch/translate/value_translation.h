// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Value-correspondence discovery: after the schema matcher pairs column X
// (source table) with column Y (target table), infer which *value* of Y
// encodes which value of X — i.e. recover Definition 1.1's opaque
// re-encoding f, without interpreting either side. Two un-interpreted
// signals are available:
//
//   * Frequency signatures: a one-to-one re-encoding preserves each
//     value's relative frequency, so rank-aligning the two frequency
//     distributions recovers the translation wherever frequencies are
//     distinct (InferValueTranslationByFrequency).
//
//   * Co-occurrence signatures: values with near-tied frequencies are
//     disambiguated by their conditional distribution over an *anchor*
//     column whose translation is already known: v and f(v) must
//     co-occur with corresponding anchor values. Solved exactly as an
//     assignment problem over total-variation distances
//     (InferValueTranslationWithAnchor).
//
// InferValueTranslations drives both: frequency-seed the most skewed
// matched column, then propagate along the matched pairs using the best
// available anchor.

#ifndef DEPMATCH_TRANSLATE_VALUE_TRANSLATION_H_
#define DEPMATCH_TRANSLATE_VALUE_TRANSLATION_H_

#include <utility>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/match/matching.h"
#include "depmatch/table/table.h"

namespace depmatch {

// A (partial) one-to-one value correspondence between a source column's
// and a target column's dictionaries.
struct ValueTranslation {
  // (source value, target value) pairs; each side appears at most once.
  std::vector<std::pair<Value, Value>> pairs;
  // Mean per-pair frequency agreement in [0, 1] (1 = the aligned values
  // have identical relative frequencies). A coarse confidence signal.
  double agreement = 0.0;

  // Target value for `source_value`, or null if unmapped.
  Value Translate(const Value& source_value) const;
  // Source value for `target_value`, or null if unmapped (inverse
  // direction, used when rewriting target data into source encoding).
  Value TranslateBack(const Value& target_value) const;
};

// Aligns the two columns' dictionaries by frequency rank. min(|X|, |Y|)
// pairs are produced (rarest unmatched values drop out when sizes
// differ).
Result<ValueTranslation> InferValueTranslationByFrequency(
    const Column& source, const Column& target);

// Aligns dictionaries by similarity of conditional distributions over an
// anchor column pair whose translation is known. `source` and
// `anchor_source` are columns of the same table (equal length), likewise
// `target`/`anchor_target`. Cost = total-variation distance between
// P(anchor | value) signatures, solved as an assignment problem.
Result<ValueTranslation> InferValueTranslationWithAnchor(
    const Column& source, const Column& anchor_source, const Column& target,
    const Column& anchor_target, const ValueTranslation& anchor_translation);

// Infers a translation for every matched column pair: the pair whose
// source column has the most informative (skewed, collision-free)
// frequency signature is seeded by frequency alignment; the rest use the
// strongest already-translated column as anchor (falling back to
// frequency when no anchor helps). Returns one entry per
// mapping.pairs[i].
Result<std::vector<ValueTranslation>> InferValueTranslations(
    const Table& source_table, const Table& target_table,
    const MatchResult& mapping);

}  // namespace depmatch

#endif  // DEPMATCH_TRANSLATE_VALUE_TRANSLATION_H_
