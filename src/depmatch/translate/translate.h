// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Executing a schema mapping: the step after matching, where the paper
// points at Clio ("produces as a mapping a view definition over the
// target schema so that a meta query engine can execute the mapping
// query and translate the data"). Given a MatchResult from the matcher,
// this module
//
//   * generates the mapping query as SQL text (documentation / handoff
//     to a real engine), and
//   * executes it directly: reshapes target-schema data into the source
//     schema, optionally rewriting values through inferred value
//     translations (see value_translation.h).

#ifndef DEPMATCH_TRANSLATE_TRANSLATE_H_
#define DEPMATCH_TRANSLATE_TRANSLATE_H_

#include <string>

#include "depmatch/common/status.h"
#include "depmatch/match/matching.h"
#include "depmatch/table/schema.h"
#include "depmatch/table/table.h"
#include "depmatch/translate/value_translation.h"

namespace depmatch {

// SQL view definition realizing `mapping`: one SELECT over
// `target_table_name` producing `source_schema`'s attribute names.
// Unmatched source attributes appear as NULL columns.
std::string GenerateMappingSql(const MatchResult& mapping,
                               const Schema& source_schema,
                               const Schema& target_schema,
                               const std::string& target_table_name);

// Reshapes `target_data` (laid out in the target schema) into the source
// schema: column i of the result is the target column mapping.TargetOf(i)
// maps to, or all-null if unmatched. Result columns keep the *target*
// value encoding and are typed accordingly.
Result<Table> TranslateTable(const Table& target_data,
                             const MatchResult& mapping,
                             const Schema& source_schema);

// Like TranslateTable, but additionally rewrites cell values through the
// per-column translations in `translations` (indexed by source attribute;
// columns without an entry keep target encoding). Values absent from a
// translation become null (they were never observed when the translation
// was inferred).
Result<Table> TranslateTableWithValues(
    const Table& target_data, const MatchResult& mapping,
    const Schema& source_schema,
    const std::vector<const ValueTranslation*>& translations);

}  // namespace depmatch

#endif  // DEPMATCH_TRANSLATE_TRANSLATE_H_
