#include "depmatch/translate/value_translation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/match/hungarian_matcher.h"

namespace depmatch {
namespace {

// Pairwise-cost ceiling for the anchor assignment (dictionaries whose
// product exceeds this would make the O(|X| * |Y| * |A|) signature
// comparison unreasonable).
constexpr size_t kMaxCostCells = 250000;

struct RankedValue {
  Value value;
  uint64_t count;
};

// Non-null dictionary values with counts, sorted by (count desc, value
// asc) for deterministic rank alignment.
std::vector<RankedValue> RankByFrequency(const Column& column) {
  std::vector<uint64_t> counts(column.distinct_count(), 0);
  for (int32_t code : column.codes()) {
    if (code != Column::kNullCode) ++counts[static_cast<size_t>(code)];
  }
  std::vector<RankedValue> ranked;
  ranked.reserve(counts.size());
  for (size_t code = 0; code < counts.size(); ++code) {
    if (counts[code] > 0) {
      ranked.push_back({column.dictionary()[code], counts[code]});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedValue& a, const RankedValue& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  return ranked;
}

double FrequencyAgreement(double p, double q) {
  double sum = p + q;
  if (sum <= 0.0) return 1.0;
  return 1.0 - std::fabs(p - q) / sum;
}

// P(anchor-source-value | column value) signatures for every value of
// `column`, with the anchor side expressed in *source* anchor values
// (`anchor_to_source` empty = anchor is already in source encoding).
// Rows where the anchor translates to nothing are skipped.
using Signature = std::unordered_map<Value, double, ValueHash>;

std::vector<Signature> ConditionalSignatures(
    const Column& column, const Column& anchor,
    const std::unordered_map<Value, Value, ValueHash>* anchor_to_source) {
  std::vector<Signature> signatures(column.distinct_count());
  std::vector<double> totals(column.distinct_count(), 0.0);
  for (size_t row = 0; row < column.size(); ++row) {
    int32_t code = column.code(row);
    if (code == Column::kNullCode) continue;
    int32_t anchor_code = anchor.code(row);
    if (anchor_code == Column::kNullCode) continue;
    Value anchor_value = anchor.dictionary()[static_cast<size_t>(anchor_code)];
    if (anchor_to_source != nullptr) {
      auto it = anchor_to_source->find(anchor_value);
      if (it == anchor_to_source->end()) continue;  // untranslated value
      anchor_value = it->second;
    }
    signatures[static_cast<size_t>(code)][anchor_value] += 1.0;
    totals[static_cast<size_t>(code)] += 1.0;
  }
  for (size_t code = 0; code < signatures.size(); ++code) {
    if (totals[code] <= 0.0) continue;
    for (auto& [value, mass] : signatures[code]) mass /= totals[code];
  }
  return signatures;
}

// Total-variation distance between two normalized signatures, in [0, 1].
double TotalVariation(const Signature& a, const Signature& b) {
  double distance = 0.0;
  for (const auto& [value, mass] : a) {
    auto it = b.find(value);
    double other = it == b.end() ? 0.0 : it->second;
    distance += std::fabs(mass - other);
  }
  for (const auto& [value, mass] : b) {
    if (a.find(value) == a.end()) distance += mass;
  }
  return 0.5 * distance;
}

}  // namespace

Value ValueTranslation::Translate(const Value& source_value) const {
  for (const auto& [from, to] : pairs) {
    if (from == source_value) return to;
  }
  return Value::Null();
}

Value ValueTranslation::TranslateBack(const Value& target_value) const {
  for (const auto& [from, to] : pairs) {
    if (to == target_value) return from;
  }
  return Value::Null();
}

Result<ValueTranslation> InferValueTranslationByFrequency(
    const Column& source, const Column& target) {
  std::vector<RankedValue> ranked_source = RankByFrequency(source);
  std::vector<RankedValue> ranked_target = RankByFrequency(target);
  double source_total = 0.0;
  double target_total = 0.0;
  for (const RankedValue& r : ranked_source) {
    source_total += static_cast<double>(r.count);
  }
  for (const RankedValue& r : ranked_target) {
    target_total += static_cast<double>(r.count);
  }

  ValueTranslation translation;
  size_t count = std::min(ranked_source.size(), ranked_target.size());
  double agreement_sum = 0.0;
  for (size_t rank = 0; rank < count; ++rank) {
    translation.pairs.emplace_back(ranked_source[rank].value,
                                   ranked_target[rank].value);
    double p = static_cast<double>(ranked_source[rank].count) /
               (source_total > 0 ? source_total : 1.0);
    double q = static_cast<double>(ranked_target[rank].count) /
               (target_total > 0 ? target_total : 1.0);
    agreement_sum += FrequencyAgreement(p, q);
  }
  translation.agreement =
      count > 0 ? agreement_sum / static_cast<double>(count) : 0.0;
  return translation;
}

Result<ValueTranslation> InferValueTranslationWithAnchor(
    const Column& source, const Column& anchor_source, const Column& target,
    const Column& anchor_target,
    const ValueTranslation& anchor_translation) {
  if (source.size() != anchor_source.size()) {
    return InvalidArgumentError(
        "source and anchor_source must be columns of the same table");
  }
  if (target.size() != anchor_target.size()) {
    return InvalidArgumentError(
        "target and anchor_target must be columns of the same table");
  }
  size_t n = source.distinct_count();
  size_t m = target.distinct_count();
  if (n == 0 || m == 0) return ValueTranslation{};
  if (n * m > kMaxCostCells) {
    return ResourceExhaustedError(StrFormat(
        "dictionaries too large for anchor alignment (%zu x %zu)", n, m));
  }

  // Map target anchor values back into source anchor encoding.
  std::unordered_map<Value, Value, ValueHash> anchor_back;
  for (const auto& [from, to] : anchor_translation.pairs) {
    anchor_back.emplace(to, from);
  }

  std::vector<Signature> source_signatures =
      ConditionalSignatures(source, anchor_source, nullptr);
  std::vector<Signature> target_signatures =
      ConditionalSignatures(target, anchor_target, &anchor_back);

  // Assignment over TV distances; flip roles if source dictionary is
  // larger (SolveAssignment needs rows <= cols).
  bool flipped = n > m;
  size_t rows = flipped ? m : n;
  size_t cols = flipped ? n : m;
  std::vector<std::vector<double>> cost(rows, std::vector<double>(cols));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const Signature& a = flipped ? target_signatures[r]
                                   : source_signatures[r];
      const Signature& b = flipped ? source_signatures[c]
                                   : target_signatures[c];
      cost[r][c] = TotalVariation(a, b);
    }
  }
  Result<std::vector<size_t>> assignment = SolveAssignment(cost);
  if (!assignment.ok()) return assignment.status();

  ValueTranslation translation;
  double agreement_sum = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    size_t c = (*assignment)[r];
    size_t source_code = flipped ? c : r;
    size_t target_code = flipped ? r : c;
    translation.pairs.emplace_back(source.dictionary()[source_code],
                                   target.dictionary()[target_code]);
    agreement_sum += 1.0 - cost[r][c];
  }
  // Deterministic order: sort by source value.
  std::sort(translation.pairs.begin(), translation.pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  translation.agreement =
      rows > 0 ? agreement_sum / static_cast<double>(rows) : 0.0;
  return translation;
}

Result<std::vector<ValueTranslation>> InferValueTranslations(
    const Table& source_table, const Table& target_table,
    const MatchResult& mapping) {
  for (const MatchPair& pair : mapping.pairs) {
    if (pair.source >= source_table.num_attributes() ||
        pair.target >= target_table.num_attributes()) {
      return OutOfRangeError("mapping refers to out-of-range attributes");
    }
  }
  size_t count = mapping.pairs.size();
  std::vector<ValueTranslation> translations(count);
  if (count == 0) return translations;

  // Seed: the pair whose source frequency signature is most informative
  // (largest probability mass on values with a unique count).
  size_t seed = 0;
  double best_quality = -1.0;
  for (size_t i = 0; i < count; ++i) {
    const Column& column = source_table.column(mapping.pairs[i].source);
    std::vector<RankedValue> ranked = RankByFrequency(column);
    double total = 0.0;
    double unique_mass = 0.0;
    for (size_t k = 0; k < ranked.size(); ++k) {
      total += static_cast<double>(ranked[k].count);
      bool tied = (k > 0 && ranked[k - 1].count == ranked[k].count) ||
                  (k + 1 < ranked.size() &&
                   ranked[k + 1].count == ranked[k].count);
      if (!tied) unique_mass += static_cast<double>(ranked[k].count);
    }
    double quality = total > 0 ? unique_mass / total : 0.0;
    if (quality > best_quality) {
      best_quality = quality;
      seed = i;
    }
  }

  Result<ValueTranslation> seeded = InferValueTranslationByFrequency(
      source_table.column(mapping.pairs[seed].source),
      target_table.column(mapping.pairs[seed].target));
  if (!seeded.ok()) return seeded.status();
  translations[seed] = std::move(seeded).value();

  // Propagate: every other pair aligns via the seed as anchor; if the
  // anchor alignment fails (e.g. dictionary blowup), fall back to
  // frequency ranks.
  for (size_t i = 0; i < count; ++i) {
    if (i == seed) continue;
    Result<ValueTranslation> anchored = InferValueTranslationWithAnchor(
        source_table.column(mapping.pairs[i].source),
        source_table.column(mapping.pairs[seed].source),
        target_table.column(mapping.pairs[i].target),
        target_table.column(mapping.pairs[seed].target),
        translations[seed]);
    if (anchored.ok()) {
      translations[i] = std::move(anchored).value();
      continue;
    }
    Result<ValueTranslation> by_frequency =
        InferValueTranslationByFrequency(
            source_table.column(mapping.pairs[i].source),
            target_table.column(mapping.pairs[i].target));
    if (!by_frequency.ok()) return by_frequency.status();
    translations[i] = std::move(by_frequency).value();
  }
  return translations;
}

}  // namespace depmatch
