#include "depmatch/translate/translate.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "depmatch/common/string_util.h"

namespace depmatch {

std::string GenerateMappingSql(const MatchResult& mapping,
                               const Schema& source_schema,
                               const Schema& target_schema,
                               const std::string& target_table_name) {
  std::string sql = "SELECT\n";
  for (size_t s = 0; s < source_schema.num_attributes(); ++s) {
    size_t t = mapping.TargetOf(s);
    if (s > 0) sql += ",\n";
    if (t == MatchResult::kUnmatched || t >= target_schema.num_attributes()) {
      sql += StrFormat("  NULL AS \"%s\"",
                       source_schema.attribute(s).name.c_str());
    } else {
      sql += StrFormat("  t.\"%s\" AS \"%s\"",
                       target_schema.attribute(t).name.c_str(),
                       source_schema.attribute(s).name.c_str());
    }
  }
  sql += StrFormat("\nFROM \"%s\" AS t;", target_table_name.c_str());
  return sql;
}

Result<Table> TranslateTable(const Table& target_data,
                             const MatchResult& mapping,
                             const Schema& source_schema) {
  std::vector<const ValueTranslation*> no_translations(
      source_schema.num_attributes(), nullptr);
  return TranslateTableWithValues(target_data, mapping, source_schema,
                                  no_translations);
}

Result<Table> TranslateTableWithValues(
    const Table& target_data, const MatchResult& mapping,
    const Schema& source_schema,
    const std::vector<const ValueTranslation*>& translations) {
  size_t n = source_schema.num_attributes();
  if (translations.size() != n) {
    return InvalidArgumentError(StrFormat(
        "need one translation slot per source attribute (%zu for %zu)",
        translations.size(), n));
  }
  for (const MatchPair& pair : mapping.pairs) {
    if (pair.target >= target_data.num_attributes()) {
      return OutOfRangeError(
          StrFormat("mapping target %zu out of range", pair.target));
    }
    if (pair.source >= n) {
      return OutOfRangeError(
          StrFormat("mapping source %zu out of range", pair.source));
    }
  }

  // The output schema keeps source attribute names; column types follow
  // the data actually placed in them (target encoding, or the source
  // side of a value translation), so recompute per column.
  std::vector<AttributeSpec> specs;
  specs.reserve(n);
  std::vector<std::vector<Value>> columns(n);
  size_t rows = target_data.num_rows();

  for (size_t s = 0; s < n; ++s) {
    size_t t = mapping.TargetOf(s);
    std::vector<Value>& out = columns[s];
    out.resize(rows);
    if (t == MatchResult::kUnmatched) {
      for (size_t r = 0; r < rows; ++r) out[r] = Value::Null();
    } else if (translations[s] == nullptr) {
      for (size_t r = 0; r < rows; ++r) {
        out[r] = target_data.GetValue(r, t);
      }
    } else {
      // Rewrite through the inverse translation (target -> source).
      std::unordered_map<Value, Value, ValueHash> back;
      for (const auto& [from, to] : translations[s]->pairs) {
        back.emplace(to, from);
      }
      for (size_t r = 0; r < rows; ++r) {
        Value target_value = target_data.GetValue(r, t);
        if (target_value.is_null()) {
          out[r] = Value::Null();
          continue;
        }
        auto it = back.find(target_value);
        out[r] = it == back.end() ? Value::Null() : it->second;
      }
    }
    // Type = the common type of non-null values, else string.
    DataType type = DataType::kString;
    bool seen = false;
    bool uniform = true;
    for (const Value& value : out) {
      if (value.is_null()) continue;
      DataType cell = value.is_int64()
                          ? DataType::kInt64
                          : value.is_double() ? DataType::kDouble
                                              : DataType::kString;
      if (!seen) {
        type = cell;
        seen = true;
      } else if (type != cell) {
        uniform = false;
      }
    }
    if (!uniform) {
      // Mixed physical types (possible when a translation maps into a
      // heterogeneous source dictionary): stringify everything.
      for (Value& value : out) {
        if (!value.is_null()) value = Value(value.ToString());
      }
      type = DataType::kString;
    }
    specs.push_back({source_schema.attribute(s).name, type});
  }

  Result<Schema> schema = Schema::Create(std::move(specs));
  if (!schema.ok()) return schema.status();
  TableBuilder builder(schema.value());
  for (size_t s = 0; s < n; ++s) {
    for (size_t r = 0; r < rows; ++r) {
      builder.AppendValue(s, columns[s][r]);
    }
  }
  return std::move(builder).Build();
}

}  // namespace depmatch
