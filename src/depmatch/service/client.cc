// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.

#include "depmatch/service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "depmatch/common/string_util.h"

namespace depmatch {
namespace service {

namespace {

bool ReadFull(int fd, char* data, size_t count) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = read(fd, data + done, count - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool WriteFull(int fd, const char* data, size_t count) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = send(fd, data + done, count - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

ServiceClient::~ServiceClient() { Close(); }

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

Result<ServiceClient> ServiceClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError(
        StrFormat("socket path must be 1..%zu bytes, got %zu",
                  sizeof(addr.sun_path) - 1, socket_path.size()));
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = NotFoundError(StrFormat("connect(%s) failed: %s",
                                            socket_path.c_str(),
                                            std::strerror(errno)));
    close(fd);
    return status;
  }
  return ServiceClient(fd);
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Response> ServiceClient::Call(const Request& request) {
  if (fd_ < 0) {
    return FailedPreconditionError("client is not connected");
  }
  std::string frame = EncodeRequest(request);
  if (!WriteFull(fd_, frame.data(), frame.size())) {
    Close();
    return InternalError("connection broke while sending the request");
  }

  std::string header(kFrameHeaderBytes, '\0');
  if (!ReadFull(fd_, header.data(), header.size())) {
    Close();
    return InternalError("connection closed before a response arrived");
  }
  Result<uint64_t> body_bytes =
      DecodeFrameHeader(header, /*expect_request=*/false);
  if (!body_bytes.ok()) {
    Close();
    return body_bytes.status();
  }
  std::string response_frame = header;
  response_frame.resize(FrameSizeForBody(*body_bytes));
  if (!ReadFull(fd_, response_frame.data() + header.size(),
                response_frame.size() - header.size())) {
    Close();
    return InternalError("connection closed mid-response");
  }
  Result<Response> response = DecodeResponse(response_frame);
  if (!response.ok()) {
    Close();
    return response.status();
  }
  // The server answered a framing error it could not attribute with
  // request id 0; anything else must echo ours.
  if (response->request_id != request.request_id &&
      response->request_id != 0) {
    Close();
    return InternalError(
        StrFormat("response id %llu does not echo request id %llu",
                  static_cast<unsigned long long>(response->request_id),
                  static_cast<unsigned long long>(request.request_id)));
  }
  return response;
}

Result<Response> ServiceClient::MatchTables(Table source, Table target,
                                            const WireMatchOptions& options,
                                            uint64_t deadline_ms) {
  Request request;
  request.type = RequestType::kMatchTables;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.match.source = std::move(source);
  request.match.target = std::move(target);
  request.match.options = options;
  return Call(request);
}

Result<Response> ServiceClient::SearchTable(Table table, uint64_t k,
                                            const WireMatchOptions& options,
                                            uint64_t deadline_ms) {
  Request request;
  request.type = RequestType::kSearch;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.search.source = SearchSource::kInlineTable;
  request.search.table = std::move(table);
  request.search.k = k;
  request.search.options = options;
  return Call(request);
}

Result<Response> ServiceClient::SearchStored(std::string stored_name,
                                             uint64_t k,
                                             const WireMatchOptions& options,
                                             uint64_t deadline_ms) {
  Request request;
  request.type = RequestType::kSearch;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.search.source = SearchSource::kStoredEntry;
  request.search.stored_name = std::move(stored_name);
  request.search.k = k;
  request.search.options = options;
  return Call(request);
}

Result<Response> ServiceClient::InsertTable(std::string name, Table table,
                                            bool replace_existing,
                                            uint64_t deadline_ms) {
  Request request;
  request.type = RequestType::kInsert;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.insert.name = std::move(name);
  request.insert.payload = InsertPayload::kTable;
  request.insert.table = std::move(table);
  request.insert.replace_existing = replace_existing;
  return Call(request);
}

Result<Response> ServiceClient::InsertGraph(std::string name,
                                            DependencyGraph graph,
                                            bool replace_existing,
                                            uint64_t deadline_ms) {
  Request request;
  request.type = RequestType::kInsert;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.insert.name = std::move(name);
  request.insert.payload = InsertPayload::kGraphBlob;
  request.insert.graph = std::move(graph);
  request.insert.replace_existing = replace_existing;
  return Call(request);
}

Result<Response> ServiceClient::AppendRows(std::string name, Table delta,
                                           uint64_t deadline_ms) {
  Request request;
  request.type = RequestType::kAppend;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.append.name = std::move(name);
  request.append.table = std::move(delta);
  return Call(request);
}

Result<Response> ServiceClient::Stats() {
  Request request;
  request.type = RequestType::kStats;
  request.request_id = next_request_id_++;
  return Call(request);
}

}  // namespace service
}  // namespace depmatch
