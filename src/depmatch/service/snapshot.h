// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// ServiceSnapshot: the immutable unit of catalog publication.
//
// The serving loop (service/match_service.h) never mutates a catalog in
// place. The daemon holds a shared_ptr<const ServiceSnapshot>; every
// request grabs that pointer once at execution start and works against
// it for its whole lifetime, so readers never block on writers and a
// response can name exactly the catalog state it was computed on
// (SearchResponse::snapshot_version). An insert builds a *new* snapshot
// — copy, apply, re-index, all outside any lock — and swaps the
// published pointer; in-flight requests keep the old snapshot alive
// through their shared_ptr until they finish.

#ifndef DEPMATCH_SERVICE_SNAPSHOT_H_
#define DEPMATCH_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "depmatch/core/catalog_index.h"
#include "depmatch/core/graph_catalog.h"

namespace depmatch {
namespace service {

// One published catalog state. Immutable after construction: every
// member is set before the snapshot is shared and never written again,
// so concurrent readers need no synchronization beyond the shared_ptr.
struct ServiceSnapshot {
  // Monotonically increasing publication counter (1 = the snapshot the
  // service started with).
  uint64_t version = 0;
  // The catalog, with its tiered index built when index_built is set.
  GraphCatalog catalog;
  bool index_built = false;
};

// Wraps `catalog` into an immutable snapshot, building the tiered index
// first when `build_index` is set (small catalogs search fine without
// one; the flat path is bit-identical either way).
std::shared_ptr<const ServiceSnapshot> MakeServiceSnapshot(
    uint64_t version, GraphCatalog catalog, bool build_index,
    const CatalogIndexOptions& index_options = {});

// Wraps an already-prepared catalog into a snapshot as-is, WITHOUT
// rebuilding the tiered index: index_built reflects whatever index the
// catalog carries. This is the incremental-append publication path — the
// dispatcher copies the current catalog (index included), refreshes one
// entry in place (GraphCatalog::UpdateEntry keeps the index live by
// widening its envelope path), and publishes in O(delta) instead of the
// O(N log N) re-index a full MakeServiceSnapshot would pay.
std::shared_ptr<const ServiceSnapshot> MakeServiceSnapshotPreservingIndex(
    uint64_t version, GraphCatalog catalog);

}  // namespace service
}  // namespace depmatch

#endif  // DEPMATCH_SERVICE_SNAPSHOT_H_
