// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// ServiceClient: a synchronous client for the matching service.
//
// One client wraps one connection and issues one request at a time
// (Call blocks until the response frame arrives), which is exactly the
// closed-loop shape the bench's load generator wants: N concurrent
// clients = N connections, each with its own ServiceClient on its own
// thread. The client is movable but not thread-safe; do not share one
// instance across threads.

#ifndef DEPMATCH_SERVICE_CLIENT_H_
#define DEPMATCH_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/service/protocol.h"

namespace depmatch {
namespace service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;

  // Connects to a ServiceServer's AF_UNIX socket.
  static Result<ServiceClient> Connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }
  void Close();

  // Sends `request` and blocks for its response. Transport failures
  // (broken connection, undecodable response frame) surface as a
  // non-OK Result; service-level failures (kOverloaded, kNotFound,
  // ...) come back as OK Results whose Response carries the status.
  // Fails if the response echoes a different request id.
  Result<Response> Call(const Request& request);

  // Convenience wrappers around Call(), stamping sequential request
  // ids.
  Result<Response> MatchTables(Table source, Table target,
                               const WireMatchOptions& options = {},
                               uint64_t deadline_ms = 0);
  Result<Response> SearchTable(Table table, uint64_t k,
                               const WireMatchOptions& options = {},
                               uint64_t deadline_ms = 0);
  Result<Response> SearchStored(std::string stored_name, uint64_t k,
                                const WireMatchOptions& options = {},
                                uint64_t deadline_ms = 0);
  Result<Response> InsertTable(std::string name, Table table,
                               bool replace_existing = true,
                               uint64_t deadline_ms = 0);
  Result<Response> InsertGraph(std::string name, DependencyGraph graph,
                               bool replace_existing = true,
                               uint64_t deadline_ms = 0);
  // Appends `delta` to the table-backed entry `name`; the server
  // refreshes the entry in O(delta) rows and republishes (see
  // AppendRequest in protocol.h for the preconditions).
  Result<Response> AppendRows(std::string name, Table delta,
                              uint64_t deadline_ms = 0);
  Result<Response> Stats();

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace service
}  // namespace depmatch

#endif  // DEPMATCH_SERVICE_CLIENT_H_
