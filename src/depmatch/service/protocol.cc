// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.

#include "depmatch/service/protocol.h"

#include <cstring>
#include <utility>

#include "depmatch/common/string_util.h"
#include "depmatch/graph/graph_io.h"

namespace depmatch {
namespace service {

namespace {

using graphio::AppendF64;
using graphio::AppendU32;
using graphio::AppendU64;
using graphio::Crc32;
using graphio::ReadF64;
using graphio::ReadU32;
using graphio::ReadU64;

// Strings and nested blobs are u64-length-prefixed raw bytes.
void AppendString(std::string* out, std::string_view text) {
  AppendU64(out, text.size());
  out->append(text.data(), text.size());
}

bool ReadByte(std::string_view bytes, size_t* cursor, uint8_t* value) {
  if (*cursor + 1 > bytes.size()) return false;
  *value = static_cast<uint8_t>(bytes[*cursor]);
  *cursor += 1;
  return true;
}

void AppendByte(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

// Reads a length-prefixed string; the length is bounds-checked against
// the remaining bytes before any allocation, so a corrupt length cannot
// trigger a huge allocation or an out-of-range read.
bool ReadString(std::string_view bytes, size_t* cursor, std::string* value) {
  uint64_t length = 0;
  if (!ReadU64(bytes, cursor, &length)) return false;
  if (length > bytes.size() - *cursor) return false;
  value->assign(bytes.data() + *cursor, static_cast<size_t>(length));
  *cursor += static_cast<size_t>(length);
  return true;
}

Status Malformed(const char* what) {
  return InvalidArgumentError(
      StrFormat("malformed service frame: %s", what));
}

// ---- enum validation -------------------------------------------------------

bool ValidRequestType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(RequestType::kMatchTables) &&
         raw <= static_cast<uint8_t>(RequestType::kAppend);
}

bool ValidWireStatus(uint8_t raw) {
  return raw <= static_cast<uint8_t>(WireStatus::kShuttingDown);
}

bool ValidCardinality(uint8_t raw) {
  return raw <= static_cast<uint8_t>(Cardinality::kPartial);
}

bool ValidMetric(uint8_t raw) {
  return raw <= static_cast<uint8_t>(MetricKind::kEntropyNormal);
}

bool ValidAlgorithm(uint8_t raw) {
  return raw <= static_cast<uint8_t>(MatchAlgorithm::kSimulatedAnnealing);
}

bool ValidDataType(uint8_t raw) {
  return raw <= static_cast<uint8_t>(DataType::kString);
}

// ---- match options ---------------------------------------------------------

void AppendMatchOptions(std::string* out, const WireMatchOptions& options) {
  AppendByte(out, static_cast<uint8_t>(options.cardinality));
  AppendByte(out, static_cast<uint8_t>(options.metric));
  AppendByte(out, static_cast<uint8_t>(options.algorithm));
  AppendF64(out, options.alpha);
  AppendU64(out, options.candidates_per_attribute);
  AppendU64(out, options.max_search_nodes);
}

Status ParseMatchOptions(std::string_view bytes, size_t* cursor,
                         WireMatchOptions* options) {
  uint8_t cardinality = 0;
  uint8_t metric = 0;
  uint8_t algorithm = 0;
  if (!ReadByte(bytes, cursor, &cardinality) ||
      !ReadByte(bytes, cursor, &metric) ||
      !ReadByte(bytes, cursor, &algorithm) ||
      !ReadF64(bytes, cursor, &options->alpha) ||
      !ReadU64(bytes, cursor, &options->candidates_per_attribute) ||
      !ReadU64(bytes, cursor, &options->max_search_nodes)) {
    return Malformed("truncated match options");
  }
  if (!ValidCardinality(cardinality)) return Malformed("bad cardinality");
  if (!ValidMetric(metric)) return Malformed("bad metric kind");
  if (!ValidAlgorithm(algorithm)) return Malformed("bad match algorithm");
  options->cardinality = static_cast<Cardinality>(cardinality);
  options->metric = static_cast<MetricKind>(metric);
  options->algorithm = static_cast<MatchAlgorithm>(algorithm);
  return OkStatus();
}

// ---- graphs ----------------------------------------------------------------

// Graphs ride as nested DMG1 blobs (graph/graph_io.h): the inner blob
// carries its own CRC, and doubles round-trip bit-identically.
void AppendGraph(std::string* out, const DependencyGraph& graph) {
  AppendString(out, SerializeGraphBinary(graph));
}

Status ParseGraph(std::string_view bytes, size_t* cursor,
                  DependencyGraph* graph) {
  std::string blob;
  if (!ReadString(bytes, cursor, &blob)) {
    return Malformed("truncated graph blob");
  }
  Result<DependencyGraph> parsed = DeserializeGraphBinary(blob);
  if (!parsed.ok()) return parsed.status();
  *graph = *std::move(parsed);
  return OkStatus();
}

// ---- match pairs -----------------------------------------------------------

void AppendMatchPairs(std::string* out, const std::vector<MatchPair>& pairs) {
  AppendU64(out, pairs.size());
  for (const MatchPair& pair : pairs) {
    AppendU64(out, pair.source);
    AppendU64(out, pair.target);
  }
}

Status ParseMatchPairs(std::string_view bytes, size_t* cursor,
                       std::vector<MatchPair>* pairs) {
  uint64_t count = 0;
  if (!ReadU64(bytes, cursor, &count)) return Malformed("truncated pairs");
  // Each pair needs 16 bytes; reject counts the frame cannot hold.
  if (count > (bytes.size() - *cursor) / 16) {
    return Malformed("pair count exceeds frame");
  }
  pairs->clear();
  pairs->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t source = 0;
    uint64_t target = 0;
    if (!ReadU64(bytes, cursor, &source) ||
        !ReadU64(bytes, cursor, &target)) {
      return Malformed("truncated pair");
    }
    pairs->push_back(MatchPair{static_cast<size_t>(source),
                               static_cast<size_t>(target)});
  }
  return OkStatus();
}

// ---- frame assembly --------------------------------------------------------

std::string SealFrame(std::string_view magic, std::string body) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size() + kFrameTrailerBytes);
  frame.append(magic.data(), magic.size());
  AppendU32(&frame, kProtocolVersion);
  AppendU64(&frame, body.size());
  frame.append(body);
  AppendU32(&frame, Crc32(frame));
  return frame;
}

// Validates magic/version/length/CRC and returns the body span.
Result<std::string_view> OpenFrame(std::string_view frame,
                                   std::string_view magic) {
  if (frame.size() < kFrameHeaderBytes + kFrameTrailerBytes) {
    return Malformed("frame shorter than header + checksum");
  }
  Result<uint64_t> body_bytes =
      DecodeFrameHeader(frame.substr(0, kFrameHeaderBytes),
                        magic == kRequestMagic);
  if (!body_bytes.ok()) return body_bytes.status();
  if (frame.size() != FrameSizeForBody(*body_bytes)) {
    return Malformed("frame size does not match header body length");
  }
  size_t crc_offset = frame.size() - kFrameTrailerBytes;
  size_t cursor = crc_offset;
  uint32_t stored_crc = 0;
  if (!ReadU32(frame, &cursor, &stored_crc)) {
    return Malformed("truncated checksum");
  }
  if (Crc32(frame.substr(0, crc_offset)) != stored_crc) {
    return Malformed("checksum mismatch");
  }
  return frame.substr(kFrameHeaderBytes,
                      crc_offset - kFrameHeaderBytes);
}

}  // namespace

std::string_view RequestTypeToString(RequestType type) {
  switch (type) {
    case RequestType::kMatchTables:
      return "match_tables";
    case RequestType::kSearch:
      return "search";
    case RequestType::kInsert:
      return "insert";
    case RequestType::kStats:
      return "stats";
    case RequestType::kAppend:
      return "append";
  }
  return "unknown";
}

std::string_view WireStatusToString(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kInvalidArgument:
      return "invalid_argument";
    case WireStatus::kNotFound:
      return "not_found";
    case WireStatus::kFailedPrecondition:
      return "failed_precondition";
    case WireStatus::kAlreadyExists:
      return "already_exists";
    case WireStatus::kInternal:
      return "internal";
    case WireStatus::kUnimplemented:
      return "unimplemented";
    case WireStatus::kResourceExhausted:
      return "resource_exhausted";
    case WireStatus::kOverloaded:
      return "overloaded";
    case WireStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case WireStatus::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

WireStatus WireStatusFromStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kOutOfRange:
      return WireStatus::kInvalidArgument;
    case StatusCode::kFailedPrecondition:
      return WireStatus::kFailedPrecondition;
    case StatusCode::kAlreadyExists:
      return WireStatus::kAlreadyExists;
    case StatusCode::kInternal:
      return WireStatus::kInternal;
    case StatusCode::kUnimplemented:
      return WireStatus::kUnimplemented;
    case StatusCode::kResourceExhausted:
      return WireStatus::kResourceExhausted;
  }
  return WireStatus::kInternal;
}

MatchOptions WireMatchOptions::ToMatchOptions(size_t num_threads) const {
  MatchOptions options;
  options.cardinality = cardinality;
  options.metric = metric;
  options.algorithm = algorithm;
  options.alpha = alpha;
  options.candidates_per_attribute =
      static_cast<size_t>(candidates_per_attribute);
  options.max_search_nodes = max_search_nodes;
  options.num_threads = num_threads;
  return options;
}

WireMatchOptions WireMatchOptions::FromMatchOptions(
    const MatchOptions& options) {
  WireMatchOptions wire;
  wire.cardinality = options.cardinality;
  wire.metric = options.metric;
  wire.algorithm = options.algorithm;
  wire.alpha = options.alpha;
  wire.candidates_per_attribute = options.candidates_per_attribute;
  wire.max_search_nodes = options.max_search_nodes;
  return wire;
}

// ---- table codec -----------------------------------------------------------

void AppendTable(std::string* out, const Table& table) {
  const Schema& schema = table.schema();
  AppendU64(out, schema.num_attributes());
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    AppendString(out, schema.attribute(i).name);
    AppendByte(out, static_cast<uint8_t>(schema.attribute(i).type));
  }
  AppendU64(out, table.num_rows());
  // Column-major: cells of one column are contiguous on the wire.
  for (size_t col = 0; col < schema.num_attributes(); ++col) {
    for (size_t row = 0; row < table.num_rows(); ++row) {
      Value value = table.GetValue(row, col);
      if (value.is_null()) {
        AppendByte(out, 0);
        continue;
      }
      AppendByte(out, 1);
      switch (schema.attribute(col).type) {
        case DataType::kInt64:
          AppendU64(out, static_cast<uint64_t>(value.int64_value()));
          break;
        case DataType::kDouble:
          AppendF64(out, value.double_value());
          break;
        case DataType::kString:
          AppendString(out, value.string_value());
          break;
      }
    }
  }
}

Result<Table> ParseTable(std::string_view bytes, size_t* cursor) {
  uint64_t num_attributes = 0;
  if (!ReadU64(bytes, cursor, &num_attributes)) {
    return Malformed("truncated table schema");
  }
  // Every attribute record needs at least 9 bytes (name length + type).
  if (num_attributes > (bytes.size() - *cursor) / 9) {
    return Malformed("attribute count exceeds frame");
  }
  std::vector<AttributeSpec> attributes;
  attributes.reserve(static_cast<size_t>(num_attributes));
  for (uint64_t i = 0; i < num_attributes; ++i) {
    AttributeSpec spec;
    uint8_t type = 0;
    if (!ReadString(bytes, cursor, &spec.name) ||
        !ReadByte(bytes, cursor, &type)) {
      return Malformed("truncated attribute spec");
    }
    if (!ValidDataType(type)) return Malformed("bad attribute type");
    spec.type = static_cast<DataType>(type);
    attributes.push_back(std::move(spec));
  }
  Result<Schema> schema = Schema::Create(std::move(attributes));
  if (!schema.ok()) return schema.status();

  uint64_t num_rows = 0;
  if (!ReadU64(bytes, cursor, &num_rows)) {
    return Malformed("truncated table row count");
  }
  // Each cell needs at least the 1-byte null tag.
  if (num_attributes > 0 &&
      num_rows > (bytes.size() - *cursor) / num_attributes) {
    return Malformed("row count exceeds frame");
  }
  TableBuilder builder(*schema);
  for (uint64_t col = 0; col < num_attributes; ++col) {
    DataType type = schema->attribute(static_cast<size_t>(col)).type;
    for (uint64_t row = 0; row < num_rows; ++row) {
      uint8_t present = 0;
      if (!ReadByte(bytes, cursor, &present)) {
        return Malformed("truncated table cell");
      }
      if (present == 0) {
        builder.AppendValue(static_cast<size_t>(col), Value::Null());
        continue;
      }
      if (present != 1) return Malformed("bad cell tag");
      switch (type) {
        case DataType::kInt64: {
          uint64_t raw = 0;
          if (!ReadU64(bytes, cursor, &raw)) {
            return Malformed("truncated int64 cell");
          }
          builder.AppendValue(static_cast<size_t>(col),
                              Value(static_cast<int64_t>(raw)));
          break;
        }
        case DataType::kDouble: {
          double raw = 0.0;
          if (!ReadF64(bytes, cursor, &raw)) {
            return Malformed("truncated double cell");
          }
          builder.AppendValue(static_cast<size_t>(col), Value(raw));
          break;
        }
        case DataType::kString: {
          std::string raw;
          if (!ReadString(bytes, cursor, &raw)) {
            return Malformed("truncated string cell");
          }
          builder.AppendValue(static_cast<size_t>(col),
                              Value(std::move(raw)));
          break;
        }
      }
    }
  }
  return std::move(builder).Build();
}

// ---- request ---------------------------------------------------------------

std::string EncodeRequest(const Request& request) {
  std::string body;
  AppendByte(&body, static_cast<uint8_t>(request.type));
  AppendU64(&body, request.request_id);
  AppendU64(&body, request.deadline_ms);
  switch (request.type) {
    case RequestType::kMatchTables:
      AppendMatchOptions(&body, request.match.options);
      AppendTable(&body, request.match.source);
      AppendTable(&body, request.match.target);
      break;
    case RequestType::kSearch:
      AppendByte(&body, static_cast<uint8_t>(request.search.source));
      AppendU64(&body, request.search.k);
      AppendMatchOptions(&body, request.search.options);
      if (request.search.source == SearchSource::kInlineTable) {
        AppendTable(&body, request.search.table);
      } else {
        AppendString(&body, request.search.stored_name);
      }
      break;
    case RequestType::kInsert:
      AppendString(&body, request.insert.name);
      AppendByte(&body, static_cast<uint8_t>(request.insert.payload));
      AppendByte(&body, request.insert.replace_existing ? 1 : 0);
      if (request.insert.payload == InsertPayload::kTable) {
        AppendTable(&body, request.insert.table);
      } else {
        AppendGraph(&body, request.insert.graph);
      }
      break;
    case RequestType::kAppend:
      AppendString(&body, request.append.name);
      AppendTable(&body, request.append.table);
      break;
    case RequestType::kStats:
      break;
  }
  return SealFrame(kRequestMagic, std::move(body));
}

Result<Request> DecodeRequest(std::string_view frame) {
  Result<std::string_view> body = OpenFrame(frame, kRequestMagic);
  if (!body.ok()) return body.status();
  std::string_view bytes = *body;
  size_t cursor = 0;

  Request request;
  uint8_t type = 0;
  if (!ReadByte(bytes, &cursor, &type) ||
      !ReadU64(bytes, &cursor, &request.request_id) ||
      !ReadU64(bytes, &cursor, &request.deadline_ms)) {
    return Malformed("truncated request header");
  }
  if (!ValidRequestType(type)) return Malformed("unknown request type");
  request.type = static_cast<RequestType>(type);

  switch (request.type) {
    case RequestType::kMatchTables: {
      DEPMATCH_RETURN_IF_ERROR(
          ParseMatchOptions(bytes, &cursor, &request.match.options));
      Result<Table> source = ParseTable(bytes, &cursor);
      if (!source.ok()) return source.status();
      Result<Table> target = ParseTable(bytes, &cursor);
      if (!target.ok()) return target.status();
      request.match.source = *std::move(source);
      request.match.target = *std::move(target);
      break;
    }
    case RequestType::kSearch: {
      uint8_t source = 0;
      if (!ReadByte(bytes, &cursor, &source) ||
          !ReadU64(bytes, &cursor, &request.search.k)) {
        return Malformed("truncated search header");
      }
      if (source > static_cast<uint8_t>(SearchSource::kStoredEntry)) {
        return Malformed("bad search source");
      }
      request.search.source = static_cast<SearchSource>(source);
      DEPMATCH_RETURN_IF_ERROR(
          ParseMatchOptions(bytes, &cursor, &request.search.options));
      if (request.search.source == SearchSource::kInlineTable) {
        Result<Table> table = ParseTable(bytes, &cursor);
        if (!table.ok()) return table.status();
        request.search.table = *std::move(table);
      } else if (!ReadString(bytes, &cursor, &request.search.stored_name)) {
        return Malformed("truncated stored entry name");
      }
      break;
    }
    case RequestType::kInsert: {
      uint8_t payload = 0;
      uint8_t replace = 0;
      if (!ReadString(bytes, &cursor, &request.insert.name) ||
          !ReadByte(bytes, &cursor, &payload) ||
          !ReadByte(bytes, &cursor, &replace)) {
        return Malformed("truncated insert header");
      }
      if (payload > static_cast<uint8_t>(InsertPayload::kGraphBlob)) {
        return Malformed("bad insert payload kind");
      }
      if (replace > 1) return Malformed("bad replace flag");
      request.insert.payload = static_cast<InsertPayload>(payload);
      request.insert.replace_existing = replace == 1;
      if (request.insert.payload == InsertPayload::kTable) {
        Result<Table> table = ParseTable(bytes, &cursor);
        if (!table.ok()) return table.status();
        request.insert.table = *std::move(table);
      } else {
        DEPMATCH_RETURN_IF_ERROR(
            ParseGraph(bytes, &cursor, &request.insert.graph));
      }
      break;
    }
    case RequestType::kAppend: {
      if (!ReadString(bytes, &cursor, &request.append.name)) {
        return Malformed("truncated append header");
      }
      Result<Table> table = ParseTable(bytes, &cursor);
      if (!table.ok()) return table.status();
      request.append.table = *std::move(table);
      break;
    }
    case RequestType::kStats:
      break;
  }
  if (cursor != bytes.size()) return Malformed("trailing garbage in body");
  return request;
}

// ---- response --------------------------------------------------------------

std::string EncodeResponse(const Response& response) {
  std::string body;
  AppendU64(&body, response.request_id);
  AppendByte(&body, static_cast<uint8_t>(response.status));
  AppendString(&body, response.message);
  AppendByte(&body, static_cast<uint8_t>(response.type));
  if (response.status == WireStatus::kOk) {
    switch (response.type) {
      case RequestType::kMatchTables: {
        const MatchTablesResponse& match = response.match;
        AppendByte(&body, static_cast<uint8_t>(match.metric));
        AppendF64(&body, match.metric_value);
        AppendU64(&body, match.correspondences.size());
        for (const WireCorrespondence& c : match.correspondences) {
          AppendU64(&body, c.source_index);
          AppendU64(&body, c.target_index);
          AppendString(&body, c.source_name);
          AppendString(&body, c.target_name);
        }
        break;
      }
      case RequestType::kSearch: {
        const SearchResponse& search = response.search;
        AppendU64(&body, search.snapshot_version);
        AppendU64(&body, search.entries_total);
        AppendU64(&body, search.entries_searched);
        AppendU64(&body, search.entries_pruned);
        AppendU64(&body, search.hits.size());
        for (const SearchHit& hit : search.hits) {
          AppendString(&body, hit.name);
          AppendU64(&body, hit.entry);
          AppendF64(&body, hit.ranking_key);
          AppendF64(&body, hit.normalized_score);
          AppendF64(&body, hit.metric_value);
          AppendMatchPairs(&body, hit.pairs);
        }
        break;
      }
      case RequestType::kInsert:
        AppendU64(&body, response.insert.snapshot_version);
        AppendU64(&body, response.insert.catalog_entries);
        AppendByte(&body, response.insert.replaced ? 1 : 0);
        break;
      case RequestType::kAppend:
        AppendU64(&body, response.append.snapshot_version);
        AppendU64(&body, response.append.catalog_entries);
        AppendU64(&body, response.append.rows_total);
        AppendU64(&body, response.append.generation);
        break;
      case RequestType::kStats: {
        const StatsResponse& stats = response.stats;
        AppendU64(&body, stats.snapshot_version);
        AppendU64(&body, stats.catalog_entries);
        AppendU64(&body, stats.accepted_total);
        AppendU64(&body, stats.completed_total);
        AppendU64(&body, stats.shed_overload_total);
        AppendU64(&body, stats.shed_deadline_total);
        AppendU64(&body, stats.batches_total);
        AppendU64(&body, stats.batched_requests_total);
        AppendU64(&body, stats.inserts_total);
        AppendU64(&body, stats.appends_total);
        AppendU64(&body, stats.queue_depth);
        AppendU64(&body, stats.max_queue_depth_seen);
        AppendU64(&body, stats.stat_cache_hits);
        AppendU64(&body, stats.stat_cache_misses);
        break;
      }
    }
  }
  return SealFrame(kResponseMagic, std::move(body));
}

Result<Response> DecodeResponse(std::string_view frame) {
  Result<std::string_view> body = OpenFrame(frame, kResponseMagic);
  if (!body.ok()) return body.status();
  std::string_view bytes = *body;
  size_t cursor = 0;

  Response response;
  uint8_t status = 0;
  uint8_t type = 0;
  if (!ReadU64(bytes, &cursor, &response.request_id) ||
      !ReadByte(bytes, &cursor, &status) ||
      !ReadString(bytes, &cursor, &response.message) ||
      !ReadByte(bytes, &cursor, &type)) {
    return Malformed("truncated response header");
  }
  if (!ValidWireStatus(status)) return Malformed("unknown wire status");
  if (!ValidRequestType(type)) return Malformed("unknown response type");
  response.status = static_cast<WireStatus>(status);
  response.type = static_cast<RequestType>(type);

  if (response.status == WireStatus::kOk) {
    switch (response.type) {
      case RequestType::kMatchTables: {
        uint8_t metric = 0;
        uint64_t count = 0;
        if (!ReadByte(bytes, &cursor, &metric) ||
            !ReadF64(bytes, &cursor, &response.match.metric_value) ||
            !ReadU64(bytes, &cursor, &count)) {
          return Malformed("truncated match payload");
        }
        if (!ValidMetric(metric)) return Malformed("bad metric kind");
        response.match.metric = static_cast<MetricKind>(metric);
        // Each correspondence needs at least 32 bytes.
        if (count > (bytes.size() - cursor) / 32) {
          return Malformed("correspondence count exceeds frame");
        }
        response.match.correspondences.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          WireCorrespondence c;
          if (!ReadU64(bytes, &cursor, &c.source_index) ||
              !ReadU64(bytes, &cursor, &c.target_index) ||
              !ReadString(bytes, &cursor, &c.source_name) ||
              !ReadString(bytes, &cursor, &c.target_name)) {
            return Malformed("truncated correspondence");
          }
          response.match.correspondences.push_back(std::move(c));
        }
        break;
      }
      case RequestType::kSearch: {
        SearchResponse& search = response.search;
        uint64_t count = 0;
        if (!ReadU64(bytes, &cursor, &search.snapshot_version) ||
            !ReadU64(bytes, &cursor, &search.entries_total) ||
            !ReadU64(bytes, &cursor, &search.entries_searched) ||
            !ReadU64(bytes, &cursor, &search.entries_pruned) ||
            !ReadU64(bytes, &cursor, &count)) {
          return Malformed("truncated search payload");
        }
        // Each hit needs at least 48 bytes of fixed fields.
        if (count > (bytes.size() - cursor) / 48) {
          return Malformed("hit count exceeds frame");
        }
        search.hits.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          SearchHit hit;
          if (!ReadString(bytes, &cursor, &hit.name) ||
              !ReadU64(bytes, &cursor, &hit.entry) ||
              !ReadF64(bytes, &cursor, &hit.ranking_key) ||
              !ReadF64(bytes, &cursor, &hit.normalized_score) ||
              !ReadF64(bytes, &cursor, &hit.metric_value)) {
            return Malformed("truncated search hit");
          }
          DEPMATCH_RETURN_IF_ERROR(
              ParseMatchPairs(bytes, &cursor, &hit.pairs));
          search.hits.push_back(std::move(hit));
        }
        break;
      }
      case RequestType::kInsert: {
        uint8_t replaced = 0;
        if (!ReadU64(bytes, &cursor, &response.insert.snapshot_version) ||
            !ReadU64(bytes, &cursor, &response.insert.catalog_entries) ||
            !ReadByte(bytes, &cursor, &replaced)) {
          return Malformed("truncated insert payload");
        }
        if (replaced > 1) return Malformed("bad replaced flag");
        response.insert.replaced = replaced == 1;
        break;
      }
      case RequestType::kAppend: {
        if (!ReadU64(bytes, &cursor, &response.append.snapshot_version) ||
            !ReadU64(bytes, &cursor, &response.append.catalog_entries) ||
            !ReadU64(bytes, &cursor, &response.append.rows_total) ||
            !ReadU64(bytes, &cursor, &response.append.generation)) {
          return Malformed("truncated append payload");
        }
        break;
      }
      case RequestType::kStats: {
        StatsResponse& stats = response.stats;
        if (!ReadU64(bytes, &cursor, &stats.snapshot_version) ||
            !ReadU64(bytes, &cursor, &stats.catalog_entries) ||
            !ReadU64(bytes, &cursor, &stats.accepted_total) ||
            !ReadU64(bytes, &cursor, &stats.completed_total) ||
            !ReadU64(bytes, &cursor, &stats.shed_overload_total) ||
            !ReadU64(bytes, &cursor, &stats.shed_deadline_total) ||
            !ReadU64(bytes, &cursor, &stats.batches_total) ||
            !ReadU64(bytes, &cursor, &stats.batched_requests_total) ||
            !ReadU64(bytes, &cursor, &stats.inserts_total) ||
            !ReadU64(bytes, &cursor, &stats.appends_total) ||
            !ReadU64(bytes, &cursor, &stats.queue_depth) ||
            !ReadU64(bytes, &cursor, &stats.max_queue_depth_seen) ||
            !ReadU64(bytes, &cursor, &stats.stat_cache_hits) ||
            !ReadU64(bytes, &cursor, &stats.stat_cache_misses)) {
          return Malformed("truncated stats payload");
        }
        break;
      }
    }
  }
  if (cursor != bytes.size()) return Malformed("trailing garbage in body");
  return response;
}

Result<uint64_t> DecodeFrameHeader(std::string_view header,
                                   bool expect_request) {
  if (header.size() < kFrameHeaderBytes) {
    return Malformed("short frame header");
  }
  std::string_view magic = expect_request ? kRequestMagic : kResponseMagic;
  if (header.substr(0, 4) != magic) {
    return Malformed(expect_request ? "bad request magic"
                                    : "bad response magic");
  }
  size_t cursor = 4;
  uint32_t version = 0;
  uint64_t body_bytes = 0;
  if (!ReadU32(header, &cursor, &version) ||
      !ReadU64(header, &cursor, &body_bytes)) {
    return Malformed("short frame header");
  }
  if (version != kProtocolVersion) {
    return InvalidArgumentError(
        StrFormat("unsupported protocol version %u (this build speaks %u)",
                  version, kProtocolVersion));
  }
  if (body_bytes > kMaxFrameBodyBytes) {
    return InvalidArgumentError(
        StrFormat("frame body of %llu bytes exceeds the %llu-byte limit",
                  static_cast<unsigned long long>(body_bytes),
                  static_cast<unsigned long long>(kMaxFrameBodyBytes)));
  }
  return body_bytes;
}

}  // namespace service
}  // namespace depmatch
