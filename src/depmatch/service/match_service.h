// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// MatchService: the serving core behind depmatch_serve — an admission
// queue, a dispatcher, and an immutable published catalog snapshot,
// independent of any transport (service/server.h speaks the socket
// protocol and calls Process(); tests and benches call it directly).
//
// Concurrency model
//
//   * Any number of caller threads enter Process(). Admission happens
//     under mu_: a stats request is answered inline (health must work
//     under overload); everything else is appended to a bounded FIFO.
//     When the queue already holds max_queue requests the caller gets
//     an immediate kOverloaded response — the service sheds load
//     explicitly instead of queueing unboundedly, so latency under
//     overload stays bounded by what is already queued.
//   * One dispatcher thread drains the queue. At dequeue it first
//     enforces the request's deadline (admission-relative): a request
//     whose deadline passed while queued is answered kDeadlineExceeded
//     without executing. It then coalesces a run of consecutive search
//     requests (up to max_batch) into one micro-batch executed as
//     concurrent tasks on the owned ThreadPool — one pool pass
//     amortized over the whole batch instead of one per request. All
//     other request types execute singly, in admission order.
//   * Execution reads the published snapshot pointer exactly once and
//     works against that immutable snapshot throughout, so searches
//     never block on inserts. An insert builds the successor snapshot
//     outside the lock (copy + insert + re-index) and swaps the
//     published pointer; because only the dispatcher executes inserts,
//     publications are serialized without a writer lock.
//
// Determinism: execution uses single-threaded library calls
// (num_threads = 1 inside each match/search), and batching only
// changes *when* a search runs, never its snapshot or options — so
// every response is bit-identical to a direct library call against
// the snapshot named in the response. The TSan stress suite
// (tests/stress/service_stress_test.cc) asserts exactly that, post
// hoc, via the retained snapshot history.

#ifndef DEPMATCH_SERVICE_MATCH_SERVICE_H_
#define DEPMATCH_SERVICE_MATCH_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "depmatch/common/thread_annotations.h"
#include "depmatch/common/thread_pool.h"
#include "depmatch/core/catalog_index.h"
#include "depmatch/core/graph_catalog.h"
#include "depmatch/graph/incremental_builder.h"
#include "depmatch/service/protocol.h"
#include "depmatch/service/snapshot.h"
#include "depmatch/stats/stat_cache.h"

namespace depmatch {
namespace service {

struct ServiceOptions {
  // Workers in the owned pool that micro-batches fan out onto.
  size_t num_threads = 1;
  // Admission bound: a request arriving when this many are already
  // queued is shed with kOverloaded. Must be >= 1.
  size_t max_queue = 64;
  // Longest run of consecutive search requests coalesced onto one pool
  // pass. Must be >= 1 (1 disables coalescing).
  size_t max_batch = 8;
  // Deadline applied when a request carries none (0 = unlimited).
  uint64_t default_deadline_ms = 0;
  // Build the tiered index into every published snapshot.
  bool build_index = true;
  CatalogIndexOptions index;
  // Catalog fan-out knobs forwarded to SearchCatalog (results are
  // bit-identical regardless; these only affect speed).
  bool use_prefilter = true;
  bool use_index = true;
  // StatCache recycling: the cache is cleared before an execution that
  // would grow it past this many column entries. Inline tables arrive
  // as fresh snapshots (each gets a new table id), so without a bound
  // a long-lived daemon would accrete one entry per column per request
  // forever. 0 disables the cache entirely.
  size_t stat_cache_max_entries = 4096;
  // Past snapshots retained (newest first) for post-hoc verification:
  // SnapshotAt() can resolve the version named in a response for this
  // many publications back. 0 keeps only the current snapshot.
  size_t snapshot_history = 0;
};

class MatchService {
 public:
  // Publishes `catalog` as snapshot version 1 and starts the
  // dispatcher.
  MatchService(GraphCatalog catalog, ServiceOptions options);
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  // Admits `request` and blocks the calling thread until its response
  // is ready. Shed outcomes (kOverloaded, kDeadlineExceeded,
  // kShuttingDown) come back as ordinary responses. Stats requests are
  // answered inline without admission.
  Response Process(const Request& request) DEPMATCH_EXCLUDES(mu_);

  // The currently published snapshot.
  std::shared_ptr<const ServiceSnapshot> snapshot() const
      DEPMATCH_EXCLUDES(mu_);

  // The retained snapshot with `version`, or nullptr if it was never
  // published or has aged out of the history window.
  std::shared_ptr<const ServiceSnapshot> SnapshotAt(uint64_t version) const
      DEPMATCH_EXCLUDES(mu_);

  // Snapshot of the service counters (same numbers a kStats request
  // reports).
  StatsResponse Stats() const DEPMATCH_EXCLUDES(mu_);

  // Stops the dispatcher. Queued requests are answered kShuttingDown;
  // the request currently executing finishes first. Idempotent; also
  // run by the destructor.
  void Stop() DEPMATCH_EXCLUDES(mu_);

  // Test hooks: freeze / thaw the dispatcher between batches, so tests
  // can fill the queue deterministically and observe shedding. Not
  // used by production callers.
  void PauseForTest() DEPMATCH_EXCLUDES(mu_);
  void ResumeForTest() DEPMATCH_EXCLUDES(mu_);
  size_t QueueDepthForTest() const DEPMATCH_EXCLUDES(mu_);

  // The direct-call equivalents of the served execution paths, exposed
  // so benches and the stress suite can reproduce a response
  // bit-identically from the snapshot named in it.
  static Response ExecuteMatchDirect(const Request& request,
                                     StatCache* stat_cache);
  static Response ExecuteSearchDirect(const Request& request,
                                      const ServiceSnapshot& snapshot,
                                      const ServiceOptions& options);

  const ServiceOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct WorkItem {
    Request request;
    Clock::time_point admitted;
    bool has_deadline = false;
    Clock::time_point deadline;
    std::promise<Response> promise;
  };

  // Counters mirrored into StatsResponse; all writes happen under mu_.
  struct Counters {
    uint64_t accepted_total = 0;
    uint64_t completed_total = 0;
    uint64_t shed_overload_total = 0;
    uint64_t shed_deadline_total = 0;
    uint64_t batches_total = 0;
    uint64_t batched_requests_total = 0;
    uint64_t inserts_total = 0;
    uint64_t appends_total = 0;
    uint64_t max_queue_depth_seen = 0;
  };

  void DispatcherLoop() DEPMATCH_EXCLUDES(mu_);
  // Executes one non-search request on the dispatcher thread.
  Response ExecuteSingle(const Request& request) DEPMATCH_EXCLUDES(mu_);
  Response ExecuteInsert(const Request& request) DEPMATCH_EXCLUDES(mu_);
  // Appends delta rows to a table-backed entry's incremental builder,
  // refreshes its graph in O(delta), widens the copied catalog's index
  // in place, and publishes — never re-indexing. Dispatcher thread only.
  Response ExecuteAppend(const Request& request) DEPMATCH_EXCLUDES(mu_);
  StatsResponse StatsLocked() const DEPMATCH_REQUIRES(mu_);
  // Clears the stat cache when it outgrew the configured bound.
  void RecycleStatCache();

  const ServiceOptions options_;
  // depmatch-analyze: allow(lock-annotation) — ThreadPool is internally
  // synchronized (its own mutex guards the task queue).
  ThreadPool pool_;
  // depmatch-analyze: allow(lock-annotation) — StatCache is internally
  // synchronized; it is also only touched from the dispatcher thread.
  StatCache stat_cache_;
  // Per-entry incremental count state for table-backed catalog entries,
  // keyed by entry name. Inserts with InsertPayload::kTable create one;
  // graph-blob inserts erase it; appends extend it. Only the dispatcher
  // thread executes inserts and appends, so the map is never shared.
  std::unordered_map<std::string, std::unique_ptr<IncrementalGraphBuilder>>
      builders_;  // depmatch-analyze: allow(lock-annotation) — dispatcher-only

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::unique_ptr<WorkItem>> queue_ DEPMATCH_GUARDED_BY(mu_);
  bool stopping_ DEPMATCH_GUARDED_BY(mu_) = false;
  bool paused_ DEPMATCH_GUARDED_BY(mu_) = false;
  Counters counters_ DEPMATCH_GUARDED_BY(mu_);
  // The published snapshot. Readers copy the shared_ptr under mu_ and
  // then work lock-free against the immutable snapshot.
  std::shared_ptr<const ServiceSnapshot> snapshot_ DEPMATCH_GUARDED_BY(mu_);
  // Previously published snapshots, newest first, bounded by
  // options_.snapshot_history.
  std::deque<std::shared_ptr<const ServiceSnapshot>> history_
      DEPMATCH_GUARDED_BY(mu_);
  // depmatch-analyze: allow(lock-annotation) — written by the
  // constructor before any sharing and joined by Stop(); never touched
  // concurrently.
  // depmatch-lint: allow(raw-thread) — the dispatcher is a long-lived
  // consumer loop, not a fan-out task; ThreadPool tasks cannot block on
  // a condition variable without starving the pool.
  std::thread dispatcher_;
};

}  // namespace service
}  // namespace depmatch

#endif  // DEPMATCH_SERVICE_MATCH_SERVICE_H_
