// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.

#include "depmatch/service/snapshot.h"

namespace depmatch {
namespace service {

std::shared_ptr<const ServiceSnapshot> MakeServiceSnapshot(
    uint64_t version, GraphCatalog catalog, bool build_index,
    const CatalogIndexOptions& index_options) {
  auto snapshot = std::make_shared<ServiceSnapshot>();
  snapshot->version = version;
  snapshot->catalog = std::move(catalog);
  if (build_index && !snapshot->catalog.empty()) {
    snapshot->catalog.BuildIndex(index_options);
    snapshot->index_built = true;
  }
  return snapshot;
}

std::shared_ptr<const ServiceSnapshot> MakeServiceSnapshotPreservingIndex(
    uint64_t version, GraphCatalog catalog) {
  auto snapshot = std::make_shared<ServiceSnapshot>();
  snapshot->version = version;
  snapshot->catalog = std::move(catalog);
  snapshot->index_built = snapshot->catalog.index() != nullptr;
  return snapshot;
}

}  // namespace service
}  // namespace depmatch
