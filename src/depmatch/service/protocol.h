// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Wire protocol for the matching service (service/server.h): versioned,
// CRC-framed binary request/response records exchanged over a local
// stream socket.
//
// Frame layout (all integers little-endian, all doubles raw IEEE-754
// bit patterns — the same conventions as graph/graph_io.h, whose
// graphio:: primitives this module reuses):
//
//   bytes 0..3   magic "DMR1" (request) / "DMP1" (response)
//   u32          protocol version (currently 1)
//   u64          body length in bytes
//   body         type-specific payload (below)
//   u32          CRC-32 of every preceding byte (magic included)
//
// The fixed 16-byte prefix (magic + version + body length) lets a
// socket reader validate the frame before buffering the body, and the
// body length is capped at kMaxFrameBytes so a corrupt or hostile
// length field cannot make the server allocate unboundedly. The CRC is
// verified before any body field is interpreted; corruption and
// truncation surface as InvalidArgument Status values, never as
// crashes, hangs, or silently wrong results (exhaustively tested in
// tests/service/protocol_test.cc, mirroring graph_io_test).
//
// Request body:
//   u8   request type (RequestType)
//   u64  request id (echoed verbatim in the response)
//   u64  deadline in milliseconds from admission (0 = none)
//   ...  type-specific fields (see the per-type structs below)
//
// Response body:
//   u64  request id echo
//   u8   wire status (WireStatus; kOverloaded is how the admission
//        queue sheds load — an explicit fast reply, not a timeout)
//   str  status message (empty on success)
//   u8   request type the payload answers
//   ...  type-specific fields, present only when status == kOk
//
// Inline tables cross the wire in a bit-exact binary form (schema +
// typed cells; doubles as raw bit patterns), so a table decoded on the
// server is value-identical to the client's and the served match is
// bit-identical to a direct library call on the original — the
// round-trip invariant the service bench gates on.

#ifndef DEPMATCH_SERVICE_PROTOCOL_H_
#define DEPMATCH_SERVICE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"
#include "depmatch/table/table.h"

namespace depmatch {
namespace service {

inline constexpr std::string_view kRequestMagic = "DMR1";
inline constexpr std::string_view kResponseMagic = "DMP1";
inline constexpr uint32_t kProtocolVersion = 1;
// magic (4) + version (4) + body length (8).
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr size_t kFrameTrailerBytes = 4;  // CRC-32
// Upper bound on the body of one frame. Oversized frames are rejected
// from the 16-byte prefix alone, before any body bytes are read.
inline constexpr uint64_t kMaxFrameBodyBytes = 64ull << 20;

// The four request kinds of ROADMAP item 1, plus the incremental
// append path (graph/incremental_builder.h).
enum class RequestType : uint8_t {
  kMatchTables = 1,  // match two inline tables
  kSearch = 2,       // top-k catalog search (inline table or stored entry)
  kInsert = 3,       // insert/update a catalog entry (snapshot swap)
  kStats = 4,        // stats & health
  kAppend = 5,       // append rows to a stored entry (O(delta) rebuild)
};

std::string_view RequestTypeToString(RequestType type);

// Status taxonomy on the wire: the library's StatusCode subset plus the
// service-level outcomes that have no library equivalent. kOverloaded
// is the admission queue's explicit load-shedding reply; a client sees
// it within milliseconds instead of queueing unboundedly.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kAlreadyExists = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
  kOverloaded = 8,         // admission queue full; retry later
  kDeadlineExceeded = 9,   // shed before execution: deadline passed
  kShuttingDown = 10,      // server stopping; request not executed
};

std::string_view WireStatusToString(WireStatus status);
WireStatus WireStatusFromStatusCode(StatusCode code);

// The MatchOptions subset a client may set. Threading is deliberately
// absent: worker placement is server policy (the daemon owns the pool).
struct WireMatchOptions {
  Cardinality cardinality = Cardinality::kOneToOne;
  MetricKind metric = MetricKind::kMutualInfoEuclidean;
  MatchAlgorithm algorithm = MatchAlgorithm::kExhaustive;
  double alpha = 3.0;
  uint64_t candidates_per_attribute = 3;
  uint64_t max_search_nodes = 200'000'000;

  // Expands to full MatchOptions with the server-chosen thread count.
  MatchOptions ToMatchOptions(size_t num_threads) const;
  static WireMatchOptions FromMatchOptions(const MatchOptions& options);
};

struct MatchTablesRequest {
  Table source;
  Table target;
  WireMatchOptions options;
};

enum class SearchSource : uint8_t {
  kInlineTable = 0,  // build the query graph from `table` server-side
  kStoredEntry = 1,  // query with the graph of catalog entry `stored_name`
};

struct SearchRequest {
  SearchSource source = SearchSource::kInlineTable;
  Table table;              // kInlineTable only
  std::string stored_name;  // kStoredEntry only
  uint64_t k = 10;
  WireMatchOptions options;
};

enum class InsertPayload : uint8_t {
  kTable = 0,      // build the entry graph from `table` server-side
  kGraphBlob = 1,  // entry graph shipped directly
};

struct InsertRequest {
  std::string name;
  InsertPayload payload = InsertPayload::kTable;
  Table table;            // kTable only
  DependencyGraph graph;  // kGraphBlob only
  // Replace an existing entry of the same name instead of failing with
  // kAlreadyExists.
  bool replace_existing = true;
};

// Appends the rows of `table` to the stored entry `name` and republishes
// the catalog. The server keeps an incremental builder per table-backed
// entry (graph/incremental_builder.h), so the refreshed entry graph is
// bit-identical to a cold rebuild over all rows ever ingested while
// costing O(delta). Requires the entry to have been inserted with
// InsertPayload::kTable (a graph-blob entry has no count state to extend
// — kFailedPrecondition); the delta's schema must match the original's.
struct AppendRequest {
  std::string name;
  Table table;
};

struct Request {
  RequestType type = RequestType::kStats;
  uint64_t request_id = 0;
  // Milliseconds from admission before the request is shed with
  // kDeadlineExceeded instead of executed. 0 = no deadline.
  uint64_t deadline_ms = 0;
  // Payload for `type` (the others stay default-constructed).
  MatchTablesRequest match;
  SearchRequest search;
  InsertRequest insert;
  AppendRequest append;
};

struct WireCorrespondence {
  uint64_t source_index = 0;
  uint64_t target_index = 0;
  std::string source_name;
  std::string target_name;
};

struct MatchTablesResponse {
  std::vector<WireCorrespondence> correspondences;
  double metric_value = 0.0;
  MetricKind metric = MetricKind::kMutualInfoEuclidean;
};

struct SearchHit {
  std::string name;
  uint64_t entry = 0;
  double ranking_key = 0.0;
  double normalized_score = 0.0;
  double metric_value = 0.0;
  std::vector<MatchPair> pairs;
};

struct SearchResponse {
  std::vector<SearchHit> hits;
  // Version of the immutable snapshot that served this search, so a
  // client (or the stress suite) can verify the result against exactly
  // the catalog state it was computed on.
  uint64_t snapshot_version = 0;
  uint64_t entries_total = 0;
  uint64_t entries_searched = 0;
  uint64_t entries_pruned = 0;
};

struct InsertResponse {
  uint64_t snapshot_version = 0;  // version holding the new entry
  uint64_t catalog_entries = 0;
  bool replaced = false;
};

struct AppendResponse {
  uint64_t snapshot_version = 0;  // version holding the refreshed entry
  uint64_t catalog_entries = 0;
  // Rows the entry's count state now covers (base + every append).
  uint64_t rows_total = 0;
  // Count-state generation after this ingestion (1 = cold build only).
  uint64_t generation = 0;
};

struct StatsResponse {
  uint64_t snapshot_version = 0;
  uint64_t catalog_entries = 0;
  uint64_t accepted_total = 0;
  uint64_t completed_total = 0;
  uint64_t shed_overload_total = 0;
  uint64_t shed_deadline_total = 0;
  uint64_t batches_total = 0;
  uint64_t batched_requests_total = 0;
  uint64_t inserts_total = 0;
  uint64_t appends_total = 0;
  uint64_t queue_depth = 0;
  uint64_t max_queue_depth_seen = 0;
  uint64_t stat_cache_hits = 0;
  uint64_t stat_cache_misses = 0;
};

struct Response {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;
  RequestType type = RequestType::kStats;
  // Payload for `type`, meaningful only when status == kOk.
  MatchTablesResponse match;
  SearchResponse search;
  InsertResponse insert;
  AppendResponse append;
  StatsResponse stats;
};

// Serializes a complete frame (header + body + CRC).
std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

// Parses a complete frame produced by the encoder. Fails with
// InvalidArgument on bad magic, unknown version, oversized or
// mismatched body length, checksum mismatch, truncation, malformed
// payload fields, or trailing garbage.
Result<Request> DecodeRequest(std::string_view frame);
Result<Response> DecodeResponse(std::string_view frame);

// Validates the fixed 16-byte prefix of a frame and returns the body
// length, so socket readers can size their buffer (and reject
// oversized frames) before reading further. `expect_request` selects
// which magic is required.
Result<uint64_t> DecodeFrameHeader(std::string_view header,
                                   bool expect_request);

// Total frame size implied by a validated header value.
inline size_t FrameSizeForBody(uint64_t body_bytes) {
  return kFrameHeaderBytes + static_cast<size_t>(body_bytes) +
         kFrameTrailerBytes;
}

// Bit-exact binary table codec used for inline tables (exposed for the
// protocol tests): schema + typed cells, doubles as raw bit patterns.
void AppendTable(std::string* out, const Table& table);
Result<Table> ParseTable(std::string_view bytes, size_t* cursor);

}  // namespace service
}  // namespace depmatch

#endif  // DEPMATCH_SERVICE_PROTOCOL_H_
