// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.

#include "depmatch/service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "depmatch/common/string_util.h"
#include "depmatch/service/protocol.h"

namespace depmatch {
namespace service {

namespace {

// Reads exactly `count` bytes, riding out EINTR and short reads.
// Returns false on EOF or a hard error.
bool ReadFull(int fd, char* data, size_t count) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = read(fd, data + done, count - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF (n == 0) or error
  }
  return true;
}

// Writes exactly `count` bytes. MSG_NOSIGNAL turns a peer hang-up into
// EPIPE instead of a process-killing SIGPIPE.
bool WriteFull(int fd, const char* data, size_t count) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = send(fd, data + done, count - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

ServiceServer::ServiceServer(std::unique_ptr<MatchService> match_service,
                             ServerOptions options)
    : options_(std::move(options)), match_service_(std::move(match_service)) {}

ServiceServer::~ServiceServer() { Stop(); }

Status ServiceServer::Start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError(
        StrFormat("socket path must be 1..%zu bytes, got %zu",
                  sizeof(addr.sun_path) - 1, options_.socket_path.size()));
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return FailedPreconditionError("server already started");
    }
  }

  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  unlink(options_.socket_path.c_str());
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = InternalError(StrFormat("bind(%s) failed: %s",
                                            options_.socket_path.c_str(),
                                            std::strerror(errno)));
    close(fd);
    return status;
  }
  if (listen(fd, options_.backlog) != 0) {
    Status status = InternalError(
        StrFormat("listen() failed: %s", std::strerror(errno)));
    close(fd);
    return status;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
    listen_fd_ = fd;
  }
  // depmatch-lint: allow(raw-thread) — the accept loop blocks in
  // accept(2) for the server's lifetime (see the header).
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void ServiceServer::Stop() {
  bool was_started = false;
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_started = started_;
    stopping_ = true;
    listen_fd = listen_fd_;
  }
  if (!was_started) {
    match_service_->Stop();
    return;
  }
  // Unblock accept(2); the accept thread sees stopping_ and exits.
  if (listen_fd >= 0) shutdown(listen_fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // With the accept thread gone, no new connections appear. Unblock
  // every reader and join them outside the lock.
  // depmatch-lint: allow(raw-thread)
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : connection_fds_) shutdown(fd, SHUT_RDWR);
    readers.swap(connection_threads_);
  }
  // depmatch-lint: allow(raw-thread)
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : connection_fds_) close(fd);
    connection_fds_.clear();
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  unlink(options_.socket_path.c_str());
  match_service_->Stop();
}

void ServiceServer::AcceptLoop() {
  for (;;) {
    int listen_fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Any other failure (including the Stop() shutdown) ends the
      // loop; Stop() owns cleanup.
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    // depmatch-lint: allow(raw-thread) — one blocking reader per
    // connection (see the header).
    // depmatch-analyze: allow(lock-discipline) — ServeConnection
    // (EXCLUDES(mu_)) is only named here; it executes on the thread
    // just spawned, never on this one, so the lock is not held when
    // it actually runs. Registering the thread must happen under mu_
    // or Stop() could miss joining it.
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void ServiceServer::ServeConnection(int fd) {
  std::string header(kFrameHeaderBytes, '\0');
  bool serving = true;
  while (serving) {
    if (!ReadFull(fd, header.data(), header.size())) break;  // EOF/error
    Result<uint64_t> body_bytes =
        DecodeFrameHeader(header, /*expect_request=*/true);
    if (!body_bytes.ok()) {
      // The stream is unframed from here on: answer once, then drop
      // the connection.
      Response error;
      error.status = WireStatus::kInvalidArgument;
      error.message = body_bytes.status().message();
      std::string encoded = EncodeResponse(error);
      WriteFull(fd, encoded.data(), encoded.size());  // best effort
      break;
    }
    std::string frame = header;
    frame.resize(FrameSizeForBody(*body_bytes));
    if (!ReadFull(fd, frame.data() + header.size(),
                  frame.size() - header.size())) {
      break;
    }
    Result<Request> request = DecodeRequest(frame);
    Response response;
    if (!request.ok()) {
      response.status = WireStatus::kInvalidArgument;
      response.message = request.status().message();
      serving = false;  // close after a framing error
    } else {
      response = match_service_->Process(*request);
    }
    std::string encoded = EncodeResponse(response);
    if (!WriteFull(fd, encoded.data(), encoded.size())) break;
  }
  // Drop the connection now rather than at Stop(): close the fd and
  // deregister it so a long-lived daemon does not accumulate one dead
  // fd per departed client. Removal and close happen under mu_, so
  // Stop() (which shuts down every registered fd under the same lock)
  // never touches an already-closed — possibly reused — descriptor.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(connection_fds_.begin(), connection_fds_.end(), fd);
  if (it != connection_fds_.end()) {
    connection_fds_.erase(it);
    close(fd);
  }
}

}  // namespace service
}  // namespace depmatch
