// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.

#include "depmatch/service/match_service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/core/schema_matcher.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/table/encoded_column.h"

namespace depmatch {
namespace service {

namespace {

ServiceOptions Sanitize(ServiceOptions options) {
  options.num_threads = std::max<size_t>(1, options.num_threads);
  options.max_queue = std::max<size_t>(1, options.max_queue);
  options.max_batch = std::max<size_t>(1, options.max_batch);
  return options;
}

Response MakeErrorResponse(const Request& request, WireStatus status,
                           std::string message) {
  Response response;
  response.request_id = request.request_id;
  response.type = request.type;
  response.status = status;
  response.message = std::move(message);
  return response;
}

Response MakeStatusResponse(const Request& request, const Status& status) {
  return MakeErrorResponse(request, WireStatusFromStatusCode(status.code()),
                           status.message());
}

// Builds the CatalogSearchOptions a search request resolves to. The
// catalog-level fan-out stays serial (num_threads = 1): concurrency
// comes from running the micro-batch's members as parallel pool tasks,
// and SearchCatalog is bit-identical at any thread count, so the direct
// re-execution in tests may pick any value.
CatalogSearchOptions ResolveSearchOptions(const SearchRequest& search,
                                          const ServiceOptions& service) {
  CatalogSearchOptions options;
  options.k = static_cast<size_t>(search.k);
  options.match = search.options.ToMatchOptions(1);
  options.use_prefilter = service.use_prefilter;
  options.use_index = service.use_index;
  options.num_threads = 1;
  return options;
}

}  // namespace

MatchService::MatchService(GraphCatalog catalog, ServiceOptions options)
    : options_(Sanitize(std::move(options))), pool_(options_.num_threads) {
  std::shared_ptr<const ServiceSnapshot> first = MakeServiceSnapshot(
      1, std::move(catalog), options_.build_index, options_.index);
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = std::move(first);
  }
  // depmatch-lint: allow(raw-thread) — long-lived dispatcher consumer
  // loop; a ThreadPool task blocking on the queue's condition variable
  // would starve the pool (see the header's concurrency model).
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

MatchService::~MatchService() { Stop(); }

Response MatchService::Process(const Request& request) {
  std::future<Response> pending;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (request.type == RequestType::kStats) {
      Response response;
      response.request_id = request.request_id;
      response.type = RequestType::kStats;
      response.stats = StatsLocked();
      return response;
    }
    if (stopping_) {
      return MakeErrorResponse(request, WireStatus::kShuttingDown,
                               "service is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      ++counters_.shed_overload_total;
      return MakeErrorResponse(
          request, WireStatus::kOverloaded,
          StrFormat("admission queue full (%zu queued); retry later",
                    queue_.size()));
    }
    auto item = std::make_unique<WorkItem>();
    item->request = request;
    item->admitted = Clock::now();
    uint64_t deadline_ms = request.deadline_ms != 0
                               ? request.deadline_ms
                               : options_.default_deadline_ms;
    if (deadline_ms != 0) {
      item->has_deadline = true;
      item->deadline =
          item->admitted + std::chrono::milliseconds(deadline_ms);
    }
    pending = item->promise.get_future();
    queue_.push_back(std::move(item));
    ++counters_.accepted_total;
    counters_.max_queue_depth_seen =
        std::max<uint64_t>(counters_.max_queue_depth_seen, queue_.size());
    work_cv_.notify_one();
  }
  return pending.get();
}

std::shared_ptr<const ServiceSnapshot> MatchService::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

std::shared_ptr<const ServiceSnapshot> MatchService::SnapshotAt(
    uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_ != nullptr && snapshot_->version == version) return snapshot_;
  for (const auto& old : history_) {
    if (old->version == version) return old;
  }
  return nullptr;
}

StatsResponse MatchService::StatsLocked() const {
  StatsResponse stats;
  if (snapshot_ != nullptr) {
    stats.snapshot_version = snapshot_->version;
    stats.catalog_entries = snapshot_->catalog.size();
  }
  stats.accepted_total = counters_.accepted_total;
  stats.completed_total = counters_.completed_total;
  stats.shed_overload_total = counters_.shed_overload_total;
  stats.shed_deadline_total = counters_.shed_deadline_total;
  stats.batches_total = counters_.batches_total;
  stats.batched_requests_total = counters_.batched_requests_total;
  stats.inserts_total = counters_.inserts_total;
  stats.appends_total = counters_.appends_total;
  stats.queue_depth = queue_.size();
  stats.max_queue_depth_seen = counters_.max_queue_depth_seen;
  StatCache::Counters cache = stat_cache_.counters();
  stats.stat_cache_hits = cache.hits + cache.edge_hits;
  stats.stat_cache_misses = cache.misses + cache.edge_misses;
  return stats;
}

StatsResponse MatchService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StatsLocked();
}

void MatchService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  std::deque<std::unique_ptr<WorkItem>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(queue_);
  }
  for (auto& item : drained) {
    item->promise.set_value(MakeErrorResponse(
        item->request, WireStatus::kShuttingDown,
        "service stopped before the request was executed"));
  }
}

void MatchService::PauseForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MatchService::ResumeForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

size_t MatchService::QueueDepthForTest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void MatchService::RecycleStatCache() {
  if (options_.stat_cache_max_entries == 0) return;
  StatCache::Counters counters = stat_cache_.counters();
  if (counters.entries > options_.stat_cache_max_entries ||
      counters.edge_entries > options_.stat_cache_max_entries) {
    stat_cache_.Clear();
  }
}

void MatchService::DispatcherLoop() {
  for (;;) {
    std::vector<std::unique_ptr<WorkItem>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || (!queue_.empty() && !paused_);
      });
      if (stopping_) return;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Micro-batching: coalesce the run of consecutive search requests
      // at the head of the queue onto one pool pass.
      if (batch.front()->request.type == RequestType::kSearch) {
        while (batch.size() < options_.max_batch && !queue_.empty() &&
               queue_.front()->request.type == RequestType::kSearch) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
    }

    // Deadline shedding happens at dequeue: a request that waited past
    // its deadline is answered immediately instead of executed, so
    // overload produces fast explicit failures, not slow successes.
    // Responses are collected first and the promises resolved only
    // after the counter flush below, so by the time a caller unblocks
    // the counters already account for its request.
    Clock::time_point now = Clock::now();
    std::vector<WorkItem*> live;
    std::vector<std::pair<WorkItem*, Response>> resolved;
    uint64_t shed_deadline = 0;
    for (auto& item : batch) {
      if (item->has_deadline && now > item->deadline) {
        ++shed_deadline;
        resolved.emplace_back(
            item.get(),
            MakeErrorResponse(
                item->request, WireStatus::kDeadlineExceeded,
                "deadline expired while the request was queued"));
        continue;
      }
      live.push_back(item.get());
    }

    uint64_t completed = 0;
    uint64_t batches = 0;
    uint64_t batched_requests = 0;
    if (!live.empty()) {
      if (live.front()->request.type == RequestType::kSearch) {
        // One pool pass for the whole batch. Every member executes
        // against the same immutable snapshot, grabbed once here.
        std::shared_ptr<const ServiceSnapshot> snap = snapshot();
        batches = 1;
        batched_requests = live.size();
        std::vector<Response> responses(live.size());
        for (size_t i = 0; i < live.size(); ++i) {
          WorkItem* item = live[i];
          pool_.Schedule([this, &responses, i, item, snap] {
            responses[i] = ExecuteSearchDirect(item->request, *snap, options_);
          });
        }
        pool_.Wait();
        for (size_t i = 0; i < live.size(); ++i) {
          resolved.emplace_back(live[i], std::move(responses[i]));
        }
        completed = live.size();
      } else {
        resolved.emplace_back(live.front(),
                              ExecuteSingle(live.front()->request));
        completed = 1;
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.completed_total += completed;
      counters_.shed_deadline_total += shed_deadline;
      counters_.batches_total += batches;
      counters_.batched_requests_total += batched_requests;
    }
    for (auto& [item, response] : resolved) {
      item->promise.set_value(std::move(response));
    }
  }
}

Response MatchService::ExecuteSingle(const Request& request) {
  switch (request.type) {
    case RequestType::kMatchTables:
      RecycleStatCache();
      return ExecuteMatchDirect(
          request,
          options_.stat_cache_max_entries != 0 ? &stat_cache_ : nullptr);
    case RequestType::kInsert:
      return ExecuteInsert(request);
    case RequestType::kAppend:
      return ExecuteAppend(request);
    case RequestType::kSearch:
    case RequestType::kStats:
      break;  // handled elsewhere; fall through to the error below
  }
  return MakeErrorResponse(request, WireStatus::kInternal,
                           "request type routed to the wrong executor");
}

Response MatchService::ExecuteMatchDirect(const Request& request,
                                          StatCache* stat_cache) {
  Response response;
  response.request_id = request.request_id;
  response.type = RequestType::kMatchTables;

  SchemaMatchOptions options;
  options.match = request.match.options.ToMatchOptions(1);
  options.stat_cache = stat_cache;
  // The encoded-view path honors the stat cache and is bit-identical to
  // the Table overload (core/schema_matcher.h), so cache on/off cannot
  // change a served result.
  Result<SchemaMatchResult> matched =
      MatchTables(EncodedTableView::FromTable(request.match.source),
                  EncodedTableView::FromTable(request.match.target), options);
  if (!matched.ok()) return MakeStatusResponse(request, matched.status());

  response.match.metric_value = matched->match.metric_value;
  response.match.metric = matched->match.metric;
  response.match.correspondences.reserve(matched->correspondences.size());
  for (const Correspondence& c : matched->correspondences) {
    WireCorrespondence wire;
    wire.source_index = c.source_index;
    wire.target_index = c.target_index;
    wire.source_name = c.source_name;
    wire.target_name = c.target_name;
    response.match.correspondences.push_back(std::move(wire));
  }
  return response;
}

Response MatchService::ExecuteSearchDirect(const Request& request,
                                           const ServiceSnapshot& snapshot,
                                           const ServiceOptions& options) {
  Response response;
  response.request_id = request.request_id;
  response.type = RequestType::kSearch;

  if (request.search.k == 0) {
    return MakeErrorResponse(request, WireStatus::kInvalidArgument,
                             "search k must be >= 1");
  }

  // Resolve the query graph: built from the inline table, or borrowed
  // from the named stored entry of the serving snapshot.
  DependencyGraph built;
  const DependencyGraph* query = nullptr;
  if (request.search.source == SearchSource::kInlineTable) {
    Result<DependencyGraph> graph =
        BuildDependencyGraph(request.search.table);
    if (!graph.ok()) return MakeStatusResponse(request, graph.status());
    built = *std::move(graph);
    query = &built;
  } else {
    Result<size_t> entry = snapshot.catalog.Find(request.search.stored_name);
    if (!entry.ok()) return MakeStatusResponse(request, entry.status());
    query = &snapshot.catalog.graph(*entry);
  }

  Result<CatalogSearchResult> searched = SearchCatalog(
      *query, snapshot.catalog, ResolveSearchOptions(request.search, options));
  if (!searched.ok()) return MakeStatusResponse(request, searched.status());

  response.search.snapshot_version = snapshot.version;
  response.search.entries_total = searched->stats.entries_total;
  response.search.entries_searched = searched->stats.entries_searched;
  response.search.entries_pruned = searched->stats.entries_pruned;
  response.search.hits.reserve(searched->ranked.size());
  for (const CatalogMatch& match : searched->ranked) {
    SearchHit hit;
    hit.name = match.name;
    hit.entry = match.entry;
    hit.ranking_key = match.ranking_key;
    hit.normalized_score = match.normalized_score;
    hit.metric_value = match.match.metric_value;
    hit.pairs = match.match.pairs;
    response.search.hits.push_back(std::move(hit));
  }
  return response;
}

Response MatchService::ExecuteInsert(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  response.type = RequestType::kInsert;

  if (request.insert.name.empty()) {
    return MakeErrorResponse(request, WireStatus::kInvalidArgument,
                             "catalog entry name must not be empty");
  }

  // A table-backed entry is built through the incremental builder so
  // its count state survives for later kAppend requests. The builder's
  // initial Refresh IS the cold build — bit-identical to
  // BuildDependencyGraph on the same table (graph/incremental_builder.h)
  // — so table inserts serve exactly what they always did.
  DependencyGraph graph;
  std::unique_ptr<IncrementalGraphBuilder> builder;
  if (request.insert.payload == InsertPayload::kTable) {
    Result<IncrementalGraphBuilder> built =
        IncrementalGraphBuilder::Create(request.insert.table);
    if (!built.ok()) return MakeStatusResponse(request, built.status());
    builder = std::make_unique<IncrementalGraphBuilder>(*std::move(built));
    graph = builder->graph();
  } else {
    graph = request.insert.graph;
  }

  // Copy-on-write publication: the successor catalog is assembled here,
  // outside any lock, while readers keep serving the current snapshot.
  // Only the dispatcher runs inserts, so publications are serialized.
  std::shared_ptr<const ServiceSnapshot> current = snapshot();
  GraphCatalog next;
  bool replaced = false;
  if (current->catalog.Find(request.insert.name).ok()) {
    if (!request.insert.replace_existing) {
      return MakeErrorResponse(
          request, WireStatus::kAlreadyExists,
          StrFormat("entry '%s' already exists and replace_existing is off",
                    request.insert.name.c_str()));
    }
    replaced = true;
    // GraphCatalog has no erase: rebuild with the replacement swapped
    // in. Signatures are recomputed deterministically at insert, so the
    // surviving entries are bit-identical to their previous selves.
    for (size_t i = 0; i < current->catalog.size(); ++i) {
      const std::string& name = current->catalog.name(i);
      Status inserted =
          next.Insert(name, name == request.insert.name
                                ? graph
                                : current->catalog.graph(i));
      if (!inserted.ok()) return MakeStatusResponse(request, inserted);
    }
  } else {
    next = current->catalog;
    Status inserted = next.Insert(request.insert.name, std::move(graph));
    if (!inserted.ok()) return MakeStatusResponse(request, inserted);
  }

  std::shared_ptr<const ServiceSnapshot> published =
      MakeServiceSnapshot(current->version + 1, std::move(next),
                          options_.build_index, options_.index);
  response.insert.snapshot_version = published->version;
  response.insert.catalog_entries = published->catalog.size();
  response.insert.replaced = replaced;
  // Builder bookkeeping happens only once publication is certain, so a
  // failed insert never clobbers an entry's existing count state. A
  // graph-blob (re)insert drops any prior state: the entry is no longer
  // table-backed, and a later append must fail kFailedPrecondition
  // rather than extend counts that no longer describe the entry.
  if (builder != nullptr) {
    builders_[request.insert.name] = std::move(builder);
  } else {
    builders_.erase(request.insert.name);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.snapshot_history > 0) {
      history_.push_front(snapshot_);
      while (history_.size() > options_.snapshot_history) {
        history_.pop_back();
      }
    }
    snapshot_ = std::move(published);
    ++counters_.inserts_total;
  }
  return response;
}

Response MatchService::ExecuteAppend(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  response.type = RequestType::kAppend;

  if (request.append.name.empty()) {
    return MakeErrorResponse(request, WireStatus::kInvalidArgument,
                             "catalog entry name must not be empty");
  }

  std::shared_ptr<const ServiceSnapshot> current = snapshot();
  Result<size_t> entry = current->catalog.Find(request.append.name);
  if (!entry.ok()) return MakeStatusResponse(request, entry.status());

  auto it = builders_.find(request.append.name);
  if (it == builders_.end()) {
    return MakeErrorResponse(
        request, WireStatus::kFailedPrecondition,
        StrFormat("entry '%s' has no count state (inserted as a graph "
                  "blob); append requires a table-backed entry",
                  request.append.name.c_str()));
  }
  IncrementalGraphBuilder& builder = *it->second;

  // O(delta): count only the new rows, refold only the dirty entries.
  // A schema-mismatched delta fails here, before any mutation.
  Status appended = builder.Append(request.append.table);
  if (!appended.ok()) return MakeStatusResponse(request, appended);
  Result<DependencyGraph> refreshed = builder.Refresh();
  if (!refreshed.ok()) return MakeStatusResponse(request, refreshed.status());

  // Copy-on-write publication, but cheaper than an insert's: copying
  // the catalog carries its tiered index along, UpdateEntry widens just
  // the refreshed entry's root-to-leaf envelope path, and the
  // index-preserving snapshot maker skips the O(N log N) re-index
  // entirely. Search against the widened index stays bit-identical to a
  // flat scan (core/catalog_index.h's widen-only contract).
  GraphCatalog next = current->catalog;
  Status updated = next.UpdateEntry(request.append.name, *std::move(refreshed),
                                    options_.index);
  if (!updated.ok()) return MakeStatusResponse(request, updated);

  std::shared_ptr<const ServiceSnapshot> published =
      MakeServiceSnapshotPreservingIndex(current->version + 1,
                                         std::move(next));
  response.append.snapshot_version = published->version;
  response.append.catalog_entries = published->catalog.size();
  response.append.rows_total = builder.rows();
  response.append.generation = builder.generation();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.snapshot_history > 0) {
      history_.push_front(snapshot_);
      while (history_.size() > options_.snapshot_history) {
        history_.pop_back();
      }
    }
    snapshot_ = std::move(published);
    ++counters_.appends_total;
  }
  return response;
}

}  // namespace service
}  // namespace depmatch
