// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// ServiceServer: the socket transport in front of MatchService.
//
// Listens on a local (AF_UNIX) stream socket and serves the framed
// binary protocol of service/protocol.h: each connection carries a
// sequence of DMR1 request frames, answered in order with DMP1
// response frames. One thread per connection reads a frame, calls
// MatchService::Process() (which blocks until the dispatcher answers),
// and writes the response — so the per-connection socket needs no
// locking, and concurrency across connections is bounded by the
// service's admission queue, not by the transport.
//
// Robustness: the 16-byte frame prefix is validated before the body is
// buffered (oversized or malformed frames are rejected without
// allocation), and a connection that sends an undecodable frame gets
// one best-effort error response and is closed — after a framing error
// the byte stream cannot be trusted to be re-synchronizable.

#ifndef DEPMATCH_SERVICE_SERVER_H_
#define DEPMATCH_SERVICE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/common/thread_annotations.h"
#include "depmatch/service/match_service.h"

namespace depmatch {
namespace service {

struct ServerOptions {
  // Filesystem path of the AF_UNIX socket. A stale file at the path is
  // unlinked at Start(). Must fit sockaddr_un (~100 chars).
  std::string socket_path;
  // listen(2) backlog.
  int backlog = 16;
};

class ServiceServer {
 public:
  // Takes ownership of the service the connections dispatch into.
  ServiceServer(std::unique_ptr<MatchService> match_service,
                ServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // Binds, listens, and starts the accept loop. Fails if the path does
  // not fit, cannot be bound, or the server already started.
  Status Start() DEPMATCH_EXCLUDES(mu_);

  // Stops accepting, unblocks every connection, joins all threads, and
  // stops the service. Idempotent; also run by the destructor.
  void Stop() DEPMATCH_EXCLUDES(mu_);

  const std::string& socket_path() const { return options_.socket_path; }

  // The owned service (for stats, snapshots, and test hooks).
  MatchService& match_service() { return *match_service_; }

 private:
  void AcceptLoop() DEPMATCH_EXCLUDES(mu_);
  void ServeConnection(int fd) DEPMATCH_EXCLUDES(mu_);

  const ServerOptions options_;
  // depmatch-analyze: allow(lock-annotation) — MatchService is
  // internally synchronized; the pointer itself is set once in the
  // constructor and never reseated.
  std::unique_ptr<MatchService> match_service_;

  mutable std::mutex mu_;
  bool started_ DEPMATCH_GUARDED_BY(mu_) = false;
  bool stopping_ DEPMATCH_GUARDED_BY(mu_) = false;
  int listen_fd_ DEPMATCH_GUARDED_BY(mu_) = -1;
  // Open connection sockets, shut down on Stop() to unblock their
  // reader threads.
  std::vector<int> connection_fds_ DEPMATCH_GUARDED_BY(mu_);
  // Reader threads, one per connection (Stop() swaps the vector out
  // under the lock and joins outside it).
  // depmatch-lint: allow(raw-thread) — one blocking reader per
  // connection; pool tasks must not block on socket reads.
  std::vector<std::thread> connection_threads_ DEPMATCH_GUARDED_BY(mu_);
  // depmatch-analyze: allow(lock-annotation) — started by Start(),
  // joined by Stop(); never touched concurrently.
  // depmatch-lint: allow(raw-thread) — the accept loop blocks in
  // accept(2) for the server's lifetime.
  std::thread accept_thread_;
};

}  // namespace service
}  // namespace depmatch

#endif  // DEPMATCH_SERVICE_SERVER_H_
