#include "depmatch/match/hungarian_matcher.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/metric.h"

namespace depmatch {

Result<std::vector<size_t>> SolveAssignment(
    const std::vector<std::vector<double>>& cost) {
  size_t n = cost.size();
  if (n == 0) return std::vector<size_t>{};
  size_t m = cost[0].size();
  for (const auto& row : cost) {
    if (row.size() != m) {
      return InvalidArgumentError("cost matrix rows have unequal lengths");
    }
  }
  if (m < n) {
    return InvalidArgumentError(StrFormat(
        "assignment needs at least as many columns as rows (%zu < %zu)", m,
        n));
  }

  // Hungarian algorithm with potentials (Jonker/e-maxx formulation),
  // 1-based internally; p[j] = row currently assigned to column j.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0);
  std::vector<size_t> way(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<size_t> assignment(n, 0);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) assignment[p[j] - 1] = j - 1;
  }
  // Feasibility: an optimal solution through a forbidden cell means no
  // feasible assignment avoids one.
  for (size_t i = 0; i < n; ++i) {
    if (cost[i][assignment[i]] >= kUnusableCost / 2) {
      return NotFoundError(
          "no feasible assignment within the allowed cells");
    }
  }
  return assignment;
}

Result<MatchResult> HungarianMatch(const DependencyGraph& source,
                                   const DependencyGraph& target,
                                   const MatchOptions& options) {
  Metric metric(options.metric, options.alpha);
  if (metric.structural()) {
    return InvalidArgumentError(
        "the Hungarian matcher requires an element-wise (entropy-only) "
        "metric; MI metrics form a quadratic assignment problem");
  }
  size_t n = source.size();
  size_t m = target.size();
  if (options.cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (options.cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }

  MatchResult result;
  result.metric = options.metric;
  if (n == 0) {
    result.metric_value = metric.Finalize(0.0);
    return result;
  }

  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);

  bool partial = options.cardinality == Cardinality::kPartial;
  size_t columns = partial ? m + n : m;
  std::vector<std::vector<double>> cost(
      n, std::vector<double>(columns, kUnusableCost));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t : candidates[s]) {
      double term = metric.Term(source.entropy(s), target.entropy(t));
      cost[s][t] = metric.maximize() ? -term : term;
    }
    if (partial) {
      // Private zero-cost dummy: staying unmatched contributes nothing.
      cost[s][m + s] = 0.0;
    }
  }

  Result<std::vector<size_t>> assignment = SolveAssignment(cost);
  if (!assignment.ok()) return assignment.status();

  double sum = 0.0;
  for (size_t s = 0; s < n; ++s) {
    size_t t = (*assignment)[s];
    if (t >= m) continue;  // dummy: unmatched
    result.pairs.push_back({s, t});
    sum += metric.Term(source.entropy(s), target.entropy(t));
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = metric.Finalize(sum);
  result.nodes_explored = n * columns;  // cost cells examined
  return result;
}

}  // namespace depmatch
