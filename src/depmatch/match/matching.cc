#include "depmatch/match/matching.h"

namespace depmatch {

std::string_view CardinalityToString(Cardinality cardinality) {
  switch (cardinality) {
    case Cardinality::kOneToOne:
      return "one_to_one";
    case Cardinality::kOnto:
      return "onto";
    case Cardinality::kPartial:
      return "partial";
  }
  return "unknown";
}

std::string_view MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kMutualInfoEuclidean:
      return "mi_euclidean";
    case MetricKind::kMutualInfoNormal:
      return "mi_normal";
    case MetricKind::kEntropyEuclidean:
      return "entropy_euclidean";
    case MetricKind::kEntropyNormal:
      return "entropy_normal";
  }
  return "unknown";
}

std::string_view MatchAlgorithmToString(MatchAlgorithm algorithm) {
  switch (algorithm) {
    case MatchAlgorithm::kExhaustive:
      return "exhaustive";
    case MatchAlgorithm::kGreedy:
      return "greedy";
    case MatchAlgorithm::kGraduatedAssignment:
      return "graduated_assignment";
    case MatchAlgorithm::kHungarian:
      return "hungarian";
    case MatchAlgorithm::kSimulatedAnnealing:
      return "simulated_annealing";
  }
  return "unknown";
}

size_t MatchResult::TargetOf(size_t source) const {
  for (const MatchPair& pair : pairs) {
    if (pair.source == source) return pair.target;
  }
  return kUnmatched;
}

}  // namespace depmatch
