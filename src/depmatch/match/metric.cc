#include "depmatch/match/metric.h"

#include <cmath>

#include "depmatch/common/logging.h"

namespace depmatch {
namespace {

// Below this, a + b is treated as zero and the normal distance is defined
// to be 0 (two zero-MI cells match perfectly).
constexpr double kZeroSumEpsilon = 1e-12;

}  // namespace

Metric::Metric(MetricKind kind, double alpha) : kind_(kind), alpha_(alpha) {}

bool Metric::maximize() const {
  return kind_ == MetricKind::kMutualInfoNormal ||
         kind_ == MetricKind::kEntropyNormal;
}

bool Metric::structural() const {
  return kind_ == MetricKind::kMutualInfoEuclidean ||
         kind_ == MetricKind::kMutualInfoNormal;
}

bool Metric::IsMonotonic() const {
  if (!maximize()) return true;  // Euclidean kinds
  // Normal kinds: every term is 1 - alpha*nd with nd in [0,1]; if
  // alpha <= 1 all terms are >= 0 and the maximized sum only grows.
  return alpha_ <= 1.0;
}

double Metric::Term(double a, double b) const {
  switch (kind_) {
    case MetricKind::kMutualInfoEuclidean:
    case MetricKind::kEntropyEuclidean: {
      double d = a - b;
      return d * d;
    }
    case MetricKind::kMutualInfoNormal:
    case MetricKind::kEntropyNormal: {
      double sum = a + b;
      double nd = (sum < kZeroSumEpsilon) ? 0.0 : std::fabs(a - b) / sum;
      return 1.0 - alpha_ * nd;
    }
  }
  return 0.0;
}

double Metric::MaxTerm() const { return maximize() ? 1.0 : 0.0; }

double Metric::Finalize(double accumulated_sum) const {
  if (kind_ == MetricKind::kMutualInfoEuclidean ||
      kind_ == MetricKind::kEntropyEuclidean) {
    return std::sqrt(accumulated_sum < 0.0 ? 0.0 : accumulated_sum);
  }
  return accumulated_sum;
}

double Metric::IncrementalGain(const DependencyGraph& a,
                               const DependencyGraph& b,
                               const std::vector<MatchPair>& assigned,
                               size_t s, size_t t) const {
  if (!structural()) {
    return Term(a.entropy(s), b.entropy(t));
  }
  double gain = Term(a.mi(s, s), b.mi(t, t));
  for (const MatchPair& pair : assigned) {
    // Ordered pairs (s, s') and (s', s); the matrices are symmetric so the
    // two cells contribute identical terms.
    gain += 2.0 * Term(a.mi(s, pair.source), b.mi(t, pair.target));
  }
  return gain;
}

double Metric::EvaluateSum(const DependencyGraph& a,
                           const DependencyGraph& b,
                           const std::vector<MatchPair>& pairs) const {
  for (const MatchPair& pair : pairs) {
    DEPMATCH_CHECK_LT(pair.source, a.size());
    DEPMATCH_CHECK_LT(pair.target, b.size());
  }
  double sum = 0.0;
  if (structural()) {
    for (const MatchPair& p : pairs) {
      for (const MatchPair& q : pairs) {
        sum += Term(a.mi(p.source, q.source), b.mi(p.target, q.target));
      }
    }
  } else {
    for (const MatchPair& p : pairs) {
      sum += Term(a.entropy(p.source), b.entropy(p.target));
    }
  }
  return sum;
}

double Metric::Evaluate(const DependencyGraph& a, const DependencyGraph& b,
                        const std::vector<MatchPair>& pairs) const {
  return Finalize(EvaluateSum(a, b, pairs));
}

}  // namespace depmatch
