// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Exact polynomial-time matcher for the element-wise (entropy-only)
// metrics. With DEU/DEN the objective decomposes into one term per
// matched node, so optimal matching is a linear assignment problem: the
// Hungarian algorithm solves it exactly in O(n^2 * m) — no exponential
// search, no candidate filter needed for tractability (the filter is
// still honored so results stay comparable with the other matchers).
//
// Cardinalities:
//   one-to-one / onto: rectangular assignment (every source assigned).
//   partial:           each source may stay unmatched at gain 0; realized
//                      by giving every source a private zero-cost dummy
//                      target.
//
// Structural (MI) metrics make the objective a *quadratic* assignment
// problem, which Hungarian cannot solve; requesting one is an
// InvalidArgument error.

#ifndef DEPMATCH_MATCH_HUNGARIAN_MATCHER_H_
#define DEPMATCH_MATCH_HUNGARIAN_MATCHER_H_

#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"

namespace depmatch {

// Same contract as ExhaustiveMatch, restricted to entropy-only metrics.
// Exact: for kEntropyEuclidean / kEntropyNormal the returned mapping
// attains the optimal metric value over the candidate-filtered space.
Result<MatchResult> HungarianMatch(const DependencyGraph& source,
                                   const DependencyGraph& target,
                                   const MatchOptions& options);

// Low-level solver, exposed for reuse (interpreted baselines use it with
// their own cost matrices) and for direct testing.
//
// Minimizes sum_i cost[i][assignment[i]] over injective assignments of
// all n rows into m >= n columns. Entries set to kUnusableCost are
// forbidden; if no feasible assignment exists, returns NotFoundError.
inline constexpr double kUnusableCost = 1e30;
Result<std::vector<size_t>> SolveAssignment(
    const std::vector<std::vector<double>>& cost);

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_HUNGARIAN_MATCHER_H_
