#include "depmatch/match/greedy_matcher.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/metric.h"
#include "depmatch/match/score_kernel.h"

namespace depmatch {

Result<MatchResult> GreedyMatch(const DependencyGraph& source,
                                const DependencyGraph& target,
                                const MatchOptions& options) {
  size_t n = source.size();
  size_t m = target.size();
  if (options.cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (options.cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }
  Metric metric(options.metric, options.alpha);
  // One greedy pass computes too few gains to amortize the pair-term
  // table; budget 0 keeps the kernel on the on-the-fly path.
  ScoreKernel kernel(source, target, metric, /*pair_term_budget=*/0);
  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);

  MatchResult result;
  result.metric = options.metric;

  std::vector<char> source_done(n, 0);
  std::vector<char> target_used(m, 0);
  std::vector<MatchPair> assigned;
  double sum = 0.0;
  uint64_t nodes = 0;

  bool must_assign_all = options.cardinality != Cardinality::kPartial;
  size_t remaining = n;
  while (remaining > 0) {
    bool found = false;
    double best_gain = 0.0;
    MatchPair best_pair;
    for (size_t s = 0; s < n; ++s) {
      if (source_done[s]) continue;
      for (size_t t : candidates[s]) {
        if (target_used[t]) continue;
        ++nodes;
        double gain = kernel.GainOf(assigned.data(), assigned.size(), s, t);
        bool better = !found || (metric.maximize() ? gain > best_gain
                                                   : gain < best_gain);
        if (better) {
          found = true;
          best_gain = gain;
          best_pair = {s, t};
        }
      }
    }
    if (!found) {
      if (must_assign_all) {
        return NotFoundError(
            "greedy search ran out of free candidate targets; widen "
            "candidates_per_attribute");
      }
      break;
    }
    if (!must_assign_all) {
      // Partial: stop once the best available step stops improving the
      // objective (normal metrics: non-positive gain; Euclidean metrics:
      // any positive gain worsens the distance).
      bool improves = metric.maximize() ? best_gain > 0.0 : best_gain < 0.0;
      if (!improves) break;
    }
    source_done[best_pair.source] = 1;
    target_used[best_pair.target] = 1;
    assigned.push_back(best_pair);
    sum += best_gain;
    --remaining;
  }

  result.pairs = std::move(assigned);
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = metric.Finalize(sum);
  result.nodes_explored = nodes;
  return result;
}

}  // namespace depmatch
