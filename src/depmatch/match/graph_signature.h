// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// GraphSignature: per-graph node signatures precomputed once and reused
// by every per-attribute comparison.
//
// For each node the signature stores the attribute entropy (the graph
// diagonal) and the node's off-diagonal MI profile sorted descending —
// exactly the vector MiProfileSimilarity in match/candidate_ranking.h
// compares. RankCandidates evaluates O(n_s * n_t) pairs; extracting and
// sorting both profiles inside every pair evaluation made the hot loop
// O(n_s * n_t * n log n). Building the signature once per graph reduces
// the per-pair work to a single linear merge over two already-sorted
// arrays, bit-identical to the historical path (the same doubles are
// compared in the same order).
//
// The catalog prefilter (core/graph_catalog.h) reuses the same
// signatures: the descending profiles drive the profile-similarity
// upper bounds, and the ascending copies support the nearest-neighbor
// best-term lookups of the admissible score bound.

#ifndef DEPMATCH_MATCH_GRAPH_SIGNATURE_H_
#define DEPMATCH_MATCH_GRAPH_SIGNATURE_H_

#include <cstddef>
#include <vector>

#include "depmatch/graph/dependency_graph.h"

namespace depmatch {

class GraphSignature {
 public:
  GraphSignature() = default;
  explicit GraphSignature(const DependencyGraph& graph);

  // Reassembles a signature from its persisted parts (the sharded
  // catalog store serializes entropies + descending profiles only; the
  // ascending copies are derived, so they are rebuilt here instead of
  // stored). `desc` must hold entropies.size() rows of
  // (entropies.size() - 1) descending values each, exactly as produced
  // by GraphSignature(graph) — the result is then bit-identical to
  // constructing from the original graph.
  static GraphSignature FromParts(std::vector<double> entropies,
                                  std::vector<double> desc);

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  // H(a_i), in original node order.
  double entropy(size_t i) const { return entropies_[i]; }
  const std::vector<double>& entropies() const { return entropies_; }

  // Length of every per-node off-diagonal profile: size() - 1 (0 for
  // empty or single-node graphs).
  size_t profile_length() const { return n_ > 0 ? n_ - 1 : 0; }

  // Node i's off-diagonal MI values sorted descending (the vector
  // MiProfileSimilarity compares). Valid for profile_length() entries.
  const double* ProfileDesc(size_t i) const {
    return desc_.data() + i * profile_length();
  }

  // The same values sorted ascending, for binary-search nearest-neighbor
  // lookups in the catalog prefilter bound.
  const double* ProfileAsc(size_t i) const {
    return asc_.data() + i * profile_length();
  }

 private:
  size_t n_ = 0;
  std::vector<double> entropies_;  // size n
  std::vector<double> desc_;       // n * (n-1), row-major, descending
  std::vector<double> asc_;        // n * (n-1), row-major, ascending
};

// Order-invariant MI-profile similarity between node `s` of `a` and node
// `t` of `b`, served from precomputed signatures. Bit-identical to
// MiProfileSimilarity(const DependencyGraph&, ...) over the matching
// graphs: the padded profiles are accumulated in the same index order.
double MiProfileSimilarity(const GraphSignature& a, size_t s,
                           const GraphSignature& b, size_t t);

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_GRAPH_SIGNATURE_H_
