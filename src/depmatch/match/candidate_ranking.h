// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Ranked per-attribute candidates for human review. The paper frames
// automatic matching as "proposing likely matches that are then verified
// by some human expert"; a single best mapping is the wrong artifact for
// that loop — reviewers want, per attribute, a short ranked list of
// alternatives with scores.
//
// Each (source, target) pair is scored without fixing a global mapping,
// from two un-interpreted node signals:
//   * entropy closeness: 1 - |Ha-Hb| / (Ha+Hb)   (0/0 -> 1), and
//   * MI-profile similarity: the node's sorted off-diagonal MI vector
//     compared by normalized L1 distance (order-invariant, so it needs
//     no correspondence to evaluate).
// The final score is their weighted blend.

#ifndef DEPMATCH_MATCH_CANDIDATE_RANKING_H_
#define DEPMATCH_MATCH_CANDIDATE_RANKING_H_

#include <cstddef>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"

namespace depmatch {

// Order-invariant similarity in [0, 1] between the MI row profiles of
// node `s` of `source` and node `t` of `target` (sorted descending,
// zero-padded, 1 - L1/mass). Two all-zero profiles score 1.
double MiProfileSimilarity(const DependencyGraph& source, size_t s,
                           const DependencyGraph& target, size_t t);

struct RankedCandidate {
  size_t target = 0;
  double score = 0.0;       // blended, in [0, 1]
  double entropy_score = 0.0;
  double profile_score = 0.0;
};

struct CandidateRankingOptions {
  // Candidates kept per source attribute (0 = all targets).
  size_t top_k = 5;
  // Weight of the MI-profile signal vs entropy closeness, in [0, 1].
  double profile_weight = 0.6;
};

// ranking[s] = up to top_k targets for source s, best first (ties broken
// by target index).
Result<std::vector<std::vector<RankedCandidate>>> RankCandidates(
    const DependencyGraph& source, const DependencyGraph& target,
    const CandidateRankingOptions& options = {});

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_CANDIDATE_RANKING_H_
