// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// The paper's four distance metrics (Definitions 2.6-2.9) behind one
// incremental-evaluation interface used by every search algorithm.
//
// Structural (MI) metrics sum a per-cell term over all ordered pairs (i,j)
// of *matched* source nodes, comparing a[i][j] against b[m(i)][m(j)]
// (diagonal included: entropies compare against entropies). Element-wise
// (entropy-only) metrics sum one term per matched node.
//
//   Euclidean term:  (a - b)^2          minimized; reported as sqrt(sum)
//   Normal term:     1 - alpha*|a-b|/(a+b)   maximized; (a+b)=0 -> nd = 0
//
// Monotonicity (Definition 2.5): Euclidean metrics are monotonic (the
// optimum over p+1 matched nodes is >= the optimum over p), so they are
// unusable for partial mappings. The normal metric is monotonic iff
// alpha <= 1 (every term is then non-negative), reproducing the paper's
// Figure 8(c) discussion.

#ifndef DEPMATCH_MATCH_METRIC_H_
#define DEPMATCH_MATCH_METRIC_H_

#include <vector>

#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"

namespace depmatch {

class Metric {
 public:
  // `alpha` is used only by the normal kinds.
  explicit Metric(MetricKind kind, double alpha = 3.0);

  MetricKind kind() const { return kind_; }
  double alpha() const { return alpha_; }

  // True for the normal kinds (metric is maximized); Euclidean kinds are
  // minimized.
  bool maximize() const;

  // True for the MI kinds (terms over node pairs); false for the
  // entropy-only kinds (terms over single nodes).
  bool structural() const;

  // True if the metric is monotonic per Definition 2.5.
  bool IsMonotonic() const;

  // The per-cell / per-node term for label values a (source) and b
  // (target).
  double Term(double a, double b) const;

  // Largest achievable single term when maximizing (used as an admissible
  // branch-and-bound bound). 1.0 for normal kinds.
  double MaxTerm() const;

  // Accumulated-sum -> reported metric value (sqrt for Euclidean kinds).
  double Finalize(double accumulated_sum) const;

  // Incremental contribution of appending the pair (s -> t) to the partial
  // assignment `assigned` (which must not already contain s or t).
  // Structural kinds: Term(a[s][s], b[t][t]) + 2 * sum over prior pairs.
  // Entropy-only kinds: Term(H_a(s), H_b(t)).
  double IncrementalGain(const DependencyGraph& a, const DependencyGraph& b,
                         const std::vector<MatchPair>& assigned, size_t s,
                         size_t t) const;

  // Raw accumulated sum of a complete assignment (the quantity the
  // searchers accumulate incrementally; Finalize() of it is the metric
  // value).
  double EvaluateSum(const DependencyGraph& a, const DependencyGraph& b,
                     const std::vector<MatchPair>& pairs) const;

  // Full (finalized) metric value of a complete assignment.
  double Evaluate(const DependencyGraph& a, const DependencyGraph& b,
                  const std::vector<MatchPair>& pairs) const;

 private:
  MetricKind kind_;
  double alpha_;
};

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_METRIC_H_
