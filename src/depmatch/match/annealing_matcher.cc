#include "depmatch/match/annealing_matcher.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "depmatch/common/rng.h"
#include "depmatch/common/string_util.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/greedy_matcher.h"
#include "depmatch/match/metric.h"

namespace depmatch {
namespace {

constexpr size_t kUnassigned = static_cast<size_t>(-1);

// Mutable assignment state with O(n) contribution deltas.
class State {
 public:
  State(const DependencyGraph& a, const DependencyGraph& b,
        const Metric& metric, size_t n, size_t m)
      : a_(a), b_(b), metric_(metric), target_of_(n, kUnassigned),
        source_of_(m, kUnassigned) {}

  size_t target_of(size_t s) const { return target_of_[s]; }
  bool target_used(size_t t) const { return source_of_[t] != kUnassigned; }
  double sum() const { return sum_; }

  std::vector<MatchPair> Pairs() const {
    std::vector<MatchPair> pairs;
    for (size_t s = 0; s < target_of_.size(); ++s) {
      if (target_of_[s] != kUnassigned) pairs.push_back({s, target_of_[s]});
    }
    return pairs;
  }

  // Contribution of assigning s -> t given the current assignment minus s.
  double GainOf(size_t s, size_t t) const {
    std::vector<MatchPair> others;
    for (size_t s2 = 0; s2 < target_of_.size(); ++s2) {
      if (s2 == s || target_of_[s2] == kUnassigned) continue;
      others.push_back({s2, target_of_[s2]});
    }
    return metric_.IncrementalGain(a_, b_, others, s, t);
  }

  void Assign(size_t s, size_t t) {
    sum_ += GainOf(s, t);
    target_of_[s] = t;
    source_of_[t] = s;
  }

  void Unassign(size_t s) {
    size_t t = target_of_[s];
    target_of_[s] = kUnassigned;
    source_of_[t] = kUnassigned;
    // Contribution is measured against the assignment without s.
    sum_ -= GainOf(s, t);
  }

 private:
  const DependencyGraph& a_;
  const DependencyGraph& b_;
  const Metric& metric_;
  std::vector<size_t> target_of_;
  std::vector<size_t> source_of_;
  double sum_ = 0.0;
};

}  // namespace

Result<MatchResult> AnnealingMatch(const DependencyGraph& source,
                                   const DependencyGraph& target,
                                   const MatchOptions& options,
                                   const AnnealingParams& params) {
  Metric metric(options.metric, options.alpha);
  size_t n = source.size();
  size_t m = target.size();
  if (options.cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (options.cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }
  MatchResult result;
  result.metric = options.metric;
  if (n == 0) {
    result.metric_value = metric.Finalize(0.0);
    return result;
  }

  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);

  // Start from the greedy solution; if greedy strands itself inside the
  // candidate filter (its one-pass commitment can leave a later source
  // without free candidates), fall back to any feasible assignment from
  // bipartite matching. NotFound only if the filter truly admits none.
  std::vector<MatchPair> start;
  Result<MatchResult> greedy = GreedyMatch(source, target, options);
  if (greedy.ok()) {
    start = greedy->pairs;
  } else if (greedy.status().code() == StatusCode::kNotFound) {
    std::optional<std::vector<size_t>> feasible =
        FindFeasibleAssignment(candidates, m);
    if (!feasible.has_value()) return greedy.status();
    for (size_t s = 0; s < n; ++s) start.push_back({s, (*feasible)[s]});
  } else {
    return greedy.status();
  }
  // allowed[s][t] for O(1) swap legality checks.
  std::vector<std::vector<char>> allowed(n, std::vector<char>(m, 0));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t : candidates[s]) allowed[s][t] = 1;
  }

  State state(source, target, metric, n, m);
  for (const MatchPair& pair : start) {
    state.Assign(pair.source, pair.target);
  }

  bool partial = options.cardinality == Cardinality::kPartial;
  bool maximize = metric.maximize();
  auto better = [&](double candidate, double incumbent) {
    return maximize ? candidate > incumbent : candidate < incumbent;
  };

  double best_sum = state.sum();
  std::vector<MatchPair> best_pairs = state.Pairs();
  uint64_t moves_tried = 0;

  Rng rng(params.seed);
  for (double temperature = params.initial_temperature;
       temperature > params.final_temperature;
       temperature *= params.cooling_rate) {
    for (size_t step = 0; step < params.moves_per_node * n; ++step) {
      ++moves_tried;
      size_t s1 = rng.NextBounded(n);
      const std::vector<size_t>& cand = candidates[s1];
      if (cand.empty()) continue;
      size_t t_new = cand[rng.NextBounded(cand.size())];
      size_t t_old = state.target_of(s1);

      double before = state.sum();
      // Build and tentatively apply the move; roll back on rejection.
      std::vector<std::pair<size_t, size_t>> undo_assign;   // (s, t)
      std::vector<size_t> undo_unassign;                    // s

      if (t_old == t_new) {
        if (!partial) continue;
        // Toggle: drop s1 (partial only).
        state.Unassign(s1);
        undo_assign.push_back({s1, t_old});
      } else if (!state.target_used(t_new)) {
        // Reassign (or fresh assign) s1 -> t_new.
        if (t_old != kUnassigned) {
          state.Unassign(s1);
          undo_assign.push_back({s1, t_old});
        }
        state.Assign(s1, t_new);
        undo_unassign.push_back(s1);
      } else {
        // Swap with the owner of t_new, if mutually legal.
        size_t s2 = kUnassigned;
        for (size_t s = 0; s < n; ++s) {
          if (state.target_of(s) == t_new) {
            s2 = s;
            break;
          }
        }
        if (s2 == kUnassigned || s2 == s1) continue;
        if (t_old == kUnassigned) {
          // s1 unmatched: steal t_new, leaving s2 unmatched (partial) or
          // illegal (exact cardinalities).
          if (!partial) continue;
          state.Unassign(s2);
          undo_assign.push_back({s2, t_new});
          state.Assign(s1, t_new);
          undo_unassign.push_back(s1);
        } else {
          if (!allowed[s2][t_old]) continue;
          state.Unassign(s1);
          undo_assign.push_back({s1, t_old});
          state.Unassign(s2);
          undo_assign.push_back({s2, t_new});
          state.Assign(s1, t_new);
          undo_unassign.push_back(s1);
          state.Assign(s2, t_old);
          undo_unassign.push_back(s2);
        }
      }

      double delta = state.sum() - before;
      double improvement = maximize ? delta : -delta;
      bool accept = improvement > 0.0 ||
                    rng.NextDouble() < std::exp(improvement / temperature);
      if (!accept) {
        // Roll back in reverse order of application.
        for (auto it = undo_unassign.rbegin(); it != undo_unassign.rend();
             ++it) {
          state.Unassign(*it);
        }
        for (auto it = undo_assign.rbegin(); it != undo_assign.rend();
             ++it) {
          state.Assign(it->first, it->second);
        }
        continue;
      }
      if (better(state.sum(), best_sum)) {
        best_sum = state.sum();
        best_pairs = state.Pairs();
      }
    }
  }

  result.pairs = std::move(best_pairs);
  std::sort(result.pairs.begin(), result.pairs.end());
  // Recompute from scratch to shed accumulated floating-point drift.
  result.metric_value = metric.Evaluate(source, target, result.pairs);
  result.nodes_explored = moves_tried;
  return result;
}

}  // namespace depmatch
