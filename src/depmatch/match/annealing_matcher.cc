// depmatch-lint: bit-identical-file
// Results are bit-identical at any thread count: every floating-point
// sum in this file accumulates in a fixed, thread-independent order.
// Do not introduce constructs that reorder double accumulation
// (std::reduce, atomic floating adds, OpenMP reductions); the
// depmatch_lint bit-identical rule and the tsan_stress tests enforce
// and exercise this contract.
#include "depmatch/match/annealing_matcher.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "depmatch/common/logging.h"
#include "depmatch/common/rng.h"
#include "depmatch/common/string_util.h"
#include "depmatch/common/thread_pool.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/greedy_matcher.h"
#include "depmatch/match/metric.h"
#include "depmatch/match/score_kernel.h"

namespace depmatch {
namespace {

constexpr size_t kUnassigned = ScoreState::kUnassigned;

struct RestartOutcome {
  double best_sum = 0.0;
  std::vector<MatchPair> best_pairs;
  uint64_t moves_tried = 0;
};

// One annealing run over the shared kernel, seeded with `seed`. The move
// proposal / acceptance sequence is identical to the historical
// implementation; only the mechanics changed (allocation-free ScoreState
// deltas, O(1) owner lookup, fixed-size undo stacks).
RestartOutcome RunRestart(const ScoreKernel& kernel,
                          const std::vector<std::vector<size_t>>& candidates,
                          const std::vector<char>& allowed,
                          const std::vector<MatchPair>& start,
                          const AnnealingParams& params, uint64_t seed,
                          bool partial) {
  size_t n = kernel.source_size();
  size_t m = kernel.target_size();
  bool maximize = kernel.maximize();
  auto better = [maximize](double candidate, double incumbent) {
    return maximize ? candidate > incumbent : candidate < incumbent;
  };

  ScoreState state(kernel);
  for (const MatchPair& pair : start) {
    state.Assign(pair.source, pair.target);
  }

  RestartOutcome out;
  out.best_sum = state.sum();
  state.AppendPairs(&out.best_pairs);

  // A move touches at most two sources, so the undo stacks never exceed
  // two entries each.
  size_t undo_assign_s[2];
  size_t undo_assign_t[2];
  size_t undo_unassign[2];

  Rng rng(seed);
  for (double temperature = params.initial_temperature;
       temperature > params.final_temperature;
       temperature *= params.cooling_rate) {
    for (size_t step = 0; step < params.moves_per_node * n; ++step) {
      ++out.moves_tried;
      size_t s1 = rng.NextBounded(n);
      const std::vector<size_t>& cand = candidates[s1];
      if (cand.empty()) continue;
      size_t t_new = cand[rng.NextBounded(cand.size())];
      size_t t_old = state.target_of(s1);

      double before = state.sum();
      size_t num_undo_assign = 0;
      size_t num_undo_unassign = 0;

      if (t_old == t_new) {
        if (!partial) continue;
        // Toggle: drop s1 (partial only).
        state.Unassign(s1);
        undo_assign_s[num_undo_assign] = s1;
        undo_assign_t[num_undo_assign++] = t_old;
      } else if (!state.target_used(t_new)) {
        // Reassign (or fresh assign) s1 -> t_new.
        if (t_old != kUnassigned) {
          state.Unassign(s1);
          undo_assign_s[num_undo_assign] = s1;
          undo_assign_t[num_undo_assign++] = t_old;
        }
        state.Assign(s1, t_new);
        undo_unassign[num_undo_unassign++] = s1;
      } else {
        // Swap with the owner of t_new, if mutually legal.
        size_t s2 = state.source_of(t_new);
        if (s2 == s1) continue;
        if (t_old == kUnassigned) {
          // s1 unmatched: steal t_new, leaving s2 unmatched (partial) or
          // illegal (exact cardinalities).
          if (!partial) continue;
          state.Unassign(s2);
          undo_assign_s[num_undo_assign] = s2;
          undo_assign_t[num_undo_assign++] = t_new;
          state.Assign(s1, t_new);
          undo_unassign[num_undo_unassign++] = s1;
        } else {
          if (!allowed[s2 * m + t_old]) continue;
          state.Unassign(s1);
          undo_assign_s[num_undo_assign] = s1;
          undo_assign_t[num_undo_assign++] = t_old;
          state.Unassign(s2);
          undo_assign_s[num_undo_assign] = s2;
          undo_assign_t[num_undo_assign++] = t_new;
          state.Assign(s1, t_new);
          undo_unassign[num_undo_unassign++] = s1;
          state.Assign(s2, t_old);
          undo_unassign[num_undo_unassign++] = s2;
        }
      }

      double delta = state.sum() - before;
      double improvement = maximize ? delta : -delta;
      bool accept = improvement > 0.0 ||
                    rng.NextDouble() < std::exp(improvement / temperature);
      if (!accept) {
        // Roll back in reverse order of application.
        for (size_t i = num_undo_unassign; i > 0; --i) {
          state.Unassign(undo_unassign[i - 1]);
        }
        for (size_t i = num_undo_assign; i > 0; --i) {
          state.Assign(undo_assign_s[i - 1], undo_assign_t[i - 1]);
        }
        continue;
      }
      if (better(state.sum(), out.best_sum)) {
        out.best_sum = state.sum();
        state.AppendPairs(&out.best_pairs);
      }
    }
  }
  return out;
}

}  // namespace

Result<MatchResult> AnnealingMatch(const DependencyGraph& source,
                                   const DependencyGraph& target,
                                   const MatchOptions& options,
                                   const AnnealingParams& params) {
  Metric metric(options.metric, options.alpha);
  size_t n = source.size();
  size_t m = target.size();
  if (options.cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (options.cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }
  MatchResult result;
  result.metric = options.metric;
  if (n == 0) {
    result.metric_value = metric.Finalize(0.0);
    return result;
  }

  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);

  // Start from the greedy solution; if greedy strands itself inside the
  // candidate filter (its one-pass commitment can leave a later source
  // without free candidates), fall back to any feasible assignment from
  // bipartite matching. NotFound only if the filter truly admits none.
  std::vector<MatchPair> start;
  Result<MatchResult> greedy = GreedyMatch(source, target, options);
  if (greedy.ok()) {
    start = greedy->pairs;
  } else if (greedy.status().code() == StatusCode::kNotFound) {
    std::optional<std::vector<size_t>> feasible =
        FindFeasibleAssignment(candidates, m);
    if (!feasible.has_value()) return greedy.status();
    for (size_t s = 0; s < n; ++s) start.push_back({s, (*feasible)[s]});
  } else {
    return greedy.status();
  }
  // allowed[s * m + t] for O(1) swap legality checks.
  std::vector<char> allowed(n * m, 0);
  for (size_t s = 0; s < n; ++s) {
    for (size_t t : candidates[s]) allowed[s * m + t] = 1;
  }

  ScoreKernel kernel(source, target, metric);
  bool partial = options.cardinality == Cardinality::kPartial;
  bool maximize = metric.maximize();

  // Restart portfolio: independent runs seeded seed + r, distributed over
  // the pool. Each outcome lands in its own slot, so the reduction below
  // sees the same values at any thread count.
  size_t restarts = std::max<size_t>(1, params.num_restarts);
  std::vector<RestartOutcome> outcomes(restarts);
  ThreadPool::ParallelForWithWorker(
      options.num_threads, restarts,
      [&](size_t /*worker*/, size_t r) {
        outcomes[r] = RunRestart(kernel, candidates, allowed, start, params,
                                 params.seed + r, partial);
      });

  // Winner by (score, seed): strictly better wins, ties keep the earliest
  // seed. Deterministic regardless of scheduling.
  size_t winner = 0;
  uint64_t moves_tried = outcomes[0].moves_tried;
  for (size_t r = 1; r < restarts; ++r) {
    moves_tried += outcomes[r].moves_tried;
    bool better = maximize ? outcomes[r].best_sum > outcomes[winner].best_sum
                           : outcomes[r].best_sum < outcomes[winner].best_sum;
    if (better) winner = r;
  }

  result.pairs = std::move(outcomes[winner].best_pairs);
  std::sort(result.pairs.begin(), result.pairs.end());
#ifndef NDEBUG
  // Delta-kernel self-check: the incrementally maintained sum must agree
  // with a from-scratch evaluation (catches future delta-kernel bugs).
  double full_sum = metric.EvaluateSum(source, target, result.pairs);
  DEPMATCH_CHECK(std::fabs(outcomes[winner].best_sum - full_sum) <= 1e-6)
      << "annealing delta sum " << outcomes[winner].best_sum
      << " diverged from full evaluation " << full_sum;
#endif
  // Recompute from scratch to shed accumulated floating-point drift.
  result.metric_value = metric.Evaluate(source, target, result.pairs);
  result.nodes_explored = moves_tried;
  return result;
}

}  // namespace depmatch
