// depmatch-lint: bit-identical-file
// Results are bit-identical at any thread count: every floating-point
// sum in this file accumulates in a fixed, thread-independent order.
// Do not introduce constructs that reorder double accumulation
// (std::reduce, atomic floating adds, OpenMP reductions); the
// depmatch_lint bit-identical rule and the tsan_stress tests enforce
// and exercise this contract.
#include "depmatch/match/exhaustive_matcher.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/common/thread_pool.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/metric.h"
#include "depmatch/match/score_kernel.h"

namespace depmatch {
namespace {

// Best objective sum published across parallel root branches. Branches
// prune against it *strictly* (only subtrees that cannot even tie are
// cut), so each branch still deterministically finds its first-in-DFS
// optimal solution no matter when other branches publish — which is what
// makes the parallel search's result independent of thread scheduling.
class SharedBound {
 public:
  SharedBound(bool maximize, double initial)
      : maximize_(maximize), value_(initial) {}

  double Load() const { return value_.load(std::memory_order_relaxed); }

  void Publish(double sum) {
    double current = value_.load(std::memory_order_relaxed);
    while ((maximize_ ? sum > current : sum < current) &&
           !value_.compare_exchange_weak(current, sum,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  bool maximize_;
  // Bound publication, not a sum: branches only prune strictly against
  // it, so the result stays exact at any publication order.
  // depmatch-analyze: allow(det-atomic-float) — no accumulation through
  // this atomic
  std::atomic<double> value_;
};

// Immutable per-search context shared by every branch: graphs (via the
// kernel), candidate lists, processing order, and the per-depth
// diagonal-term bounds.
struct SearchContext {
  SearchContext(const ScoreKernel& kernel_in, Cardinality cardinality_in,
                const std::vector<std::vector<size_t>>& candidates_in,
                const std::vector<size_t>& order_in)
      : kernel(kernel_in),
        cardinality(cardinality_in),
        candidates(candidates_in),
        order(order_in) {
    // Per-depth diagonal-term bounds (admissible: each future assignment
    // of order[k] pays at least / at most its best diagonal term over
    // its own candidates, regardless of which targets remain free).
    // Only valid when every source must be assigned (not partial).
    size_t depth = order.size();
    min_diag_suffix.assign(depth + 1, 0.0);
    max_diag_suffix.assign(depth + 1, 0.0);
    if (cardinality != Cardinality::kPartial) {
      for (size_t k = depth; k > 0; --k) {
        size_t s = order[k - 1];
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (size_t t : candidates[s]) {
          double term = kernel.PairTerm(s, t, s, t);
          lo = std::min(lo, term);
          hi = std::max(hi, term);
        }
        if (candidates[s].empty()) {
          lo = 0.0;
          hi = 0.0;
        }
        min_diag_suffix[k - 1] = min_diag_suffix[k] + lo;
        max_diag_suffix[k - 1] = max_diag_suffix[k] + hi;
      }
    }
  }

  const ScoreKernel& kernel;
  Cardinality cardinality;
  const std::vector<std::vector<size_t>>& candidates;
  const std::vector<size_t>& order;
  std::vector<double> min_diag_suffix;
  std::vector<double> max_diag_suffix;
};

// Depth-first branch-and-bound over a fixed source processing order.
class Search {
 public:
  Search(const SearchContext& ctx, uint64_t node_budget,
         SharedBound* shared_bound)
      : ctx_(ctx),
        metric_(ctx.kernel.metric()),
        node_budget_(node_budget),
        shared_bound_(shared_bound),
        used_(ctx.kernel.target_size(), 0) {
    assigned_.reserve(ctx.order.size());
  }

  // Installs a known-feasible assignment as the incumbent before the
  // search starts, enabling pruning from the first node.
  void SeedIncumbent(std::vector<MatchPair> pairs, double sum) {
    has_best_ = true;
    best_sum_ = sum;
    best_pairs_ = std::move(pairs);
  }

  // Runs the full search (the serial path). Returns true if any feasible
  // assignment was found (for partial, the empty assignment always
  // counts).
  bool Run() {
    if (ctx_.cardinality == Cardinality::kPartial && !has_best_) {
      // The empty mapping is feasible; it is the baseline to beat.
      has_best_ = true;
      best_sum_ = 0.0;
      best_pairs_.clear();
    }
    Dfs(0, 0.0);
    return has_best_;
  }

  // Runs one root-level branch: assigns order[0] -> *t (or, for partial
  // with nullopt, leaves it unmatched), then searches depths 1..end.
  // Mirrors one iteration of Dfs(0, 0.0)'s candidate loop.
  bool RunBranch(std::optional<size_t> t) {
    if (ctx_.cardinality == Cardinality::kPartial && !has_best_) {
      has_best_ = true;
      best_sum_ = 0.0;
      best_pairs_.clear();
    }
    if (!t.has_value()) {
      Dfs(1, 0.0);
      return has_best_;
    }
    size_t s = ctx_.order[0];
    if (++nodes_explored_ > node_budget_) {
      budget_exhausted_ = true;
      return has_best_;
    }
    double gain = ctx_.kernel.GainOf(nullptr, 0, s, *t);
    if (!metric_.maximize() && has_best_ &&
        gain + LowerBoundFrom(1) >= best_sum_) {
      return has_best_;
    }
    used_[*t] = 1;
    assigned_.push_back({s, *t});
    Dfs(1, gain);
    assigned_.pop_back();
    used_[*t] = 0;
    return has_best_;
  }

  const std::vector<MatchPair>& best_pairs() const { return best_pairs_; }
  double best_sum() const { return best_sum_; }
  bool has_best() const { return has_best_; }
  uint64_t nodes_explored() const { return nodes_explored_; }
  bool budget_exhausted() const { return budget_exhausted_; }

 private:
  // Admissible optimistic bound on the additional sum attainable from
  // depth `k` (maximization only). For exact cardinalities the r future
  // diagonal cells are bounded by each source's best candidate diagonal
  // term instead of MaxTerm, which bites hard on mismatched schema pairs.
  double UpperBoundFrom(size_t k) const {
    size_t assigned = assigned_.size();
    size_t remaining = ctx_.order.size() - k;
    if (metric_.structural()) {
      double final_count = static_cast<double>(assigned + remaining);
      double now = static_cast<double>(assigned);
      double cells = final_count * final_count - now * now;
      if (ctx_.cardinality == Cardinality::kPartial) {
        return cells * metric_.MaxTerm();
      }
      double r = static_cast<double>(remaining);
      return (cells - r) * metric_.MaxTerm() + ctx_.max_diag_suffix[k];
    }
    if (ctx_.cardinality == Cardinality::kPartial) {
      return static_cast<double>(remaining) * metric_.MaxTerm();
    }
    return ctx_.max_diag_suffix[k];
  }

  // Admissible lower bound on the additional sum that *must* accrue from
  // depth `k` (minimization; 0 under partial where skipping is free).
  double LowerBoundFrom(size_t k) const { return ctx_.min_diag_suffix[k]; }

  bool Improves(double sum) const {
    if (!has_best_) return true;
    return metric_.maximize() ? sum > best_sum_ : sum < best_sum_;
  }

  void RecordIfBetter(double sum) {
    if (Improves(sum)) {
      has_best_ = true;
      best_sum_ = sum;
      best_pairs_ = assigned_;
      if (shared_bound_ != nullptr) shared_bound_->Publish(sum);
    }
  }

  void Dfs(size_t k, double sum) {
    if (budget_exhausted_) return;
    if (k == ctx_.order.size()) {
      RecordIfBetter(sum);
      return;
    }
    // Prune against the local incumbent (ties included, as in the serial
    // search)...
    if (has_best_) {
      if (metric_.maximize()) {
        if (sum + UpperBoundFrom(k) <= best_sum_) return;
      } else {
        // Every Euclidean increment is >= 0, and at least the best-case
        // diagonal terms of all unassigned sources must still accrue.
        if (sum + LowerBoundFrom(k) >= best_sum_) return;
      }
    }
    // ...and strictly against the shared cross-branch bound, so a subtree
    // that could still tie the published best is never cut (see
    // SharedBound).
    if (shared_bound_ != nullptr) {
      double bound = shared_bound_->Load();
      if (metric_.maximize()) {
        if (sum + UpperBoundFrom(k) < bound) return;
      } else {
        if (sum + LowerBoundFrom(k) > bound) return;
      }
    }
    size_t s = ctx_.order[k];
    for (size_t t : ctx_.candidates[s]) {
      if (used_[t]) continue;
      if (++nodes_explored_ > node_budget_) {
        budget_exhausted_ = true;
        return;
      }
      double gain =
          ctx_.kernel.GainOf(assigned_.data(), assigned_.size(), s, t);
      // Cheap per-child pruning for minimization.
      if (!metric_.maximize() && has_best_ &&
          sum + gain + LowerBoundFrom(k + 1) >= best_sum_) {
        continue;
      }
      used_[t] = 1;
      assigned_.push_back({s, t});
      Dfs(k + 1, sum + gain);
      assigned_.pop_back();
      used_[t] = 0;
      if (budget_exhausted_) return;
    }
    if (ctx_.cardinality == Cardinality::kPartial) {
      // Leave s unmatched.
      Dfs(k + 1, sum);
    }
  }

  const SearchContext& ctx_;
  const Metric& metric_;
  uint64_t node_budget_;
  SharedBound* shared_bound_;

  std::vector<char> used_;
  std::vector<MatchPair> assigned_;
  std::vector<MatchPair> best_pairs_;
  double best_sum_ = 0.0;
  bool has_best_ = false;
  uint64_t nodes_explored_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

Result<MatchResult> ExhaustiveMatch(const DependencyGraph& source,
                                    const DependencyGraph& target,
                                    const MatchOptions& options) {
  size_t n = source.size();
  size_t m = target.size();
  if (options.cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (options.cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }
  Metric metric(options.metric, options.alpha);

  MatchResult result;
  result.metric = options.metric;
  if (n == 0) {
    result.metric_value = metric.Finalize(0.0);
    return result;
  }

  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);

  // Process high-entropy sources first: their labels vary most, which
  // tightens bounds early.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return source.entropy(x) > source.entropy(y);
  });

  ScoreKernel kernel(source, target, metric);
  SearchContext ctx(kernel, options.cardinality, candidates, order);

  // For the exact cardinalities, check feasibility of the filtered space
  // up front and seed the search with the feasible assignment found, so
  // that (a) infeasible filters fail in O(n * m) instead of by exhaustive
  // enumeration and (b) pruning is active from the first search node.
  std::optional<std::vector<MatchPair>> incumbent;
  double incumbent_sum = 0.0;
  if (options.cardinality != Cardinality::kPartial) {
    std::optional<std::vector<size_t>> assignment =
        FindFeasibleAssignment(candidates, m);
    if (!assignment.has_value()) {
      return NotFoundError(
          "candidate filter admits no complete injective assignment; "
          "widen candidates_per_attribute");
    }
    incumbent.emplace();
    for (size_t s = 0; s < n; ++s) {
      incumbent->push_back({s, (*assignment)[s]});
    }
    incumbent_sum = kernel.EvaluateSum(*incumbent);
  }

  bool partial = options.cardinality == Cardinality::kPartial;

  // Parallel mode: one independent Search per root-level branch (each
  // candidate of order[0], plus the skip branch under partial), sharing
  // only the atomic incumbent bound. The node budget is split evenly
  // across branches so budget accounting is scheduling-independent.
  std::vector<std::optional<size_t>> branches;
  if (options.num_threads > 1) {
    for (size_t t : candidates[order[0]]) branches.push_back(t);
    if (partial) branches.push_back(std::nullopt);
  }
  if (branches.size() > 1) {
    SharedBound shared(metric.maximize(),
                       partial ? 0.0 : incumbent_sum);
    uint64_t per_branch_budget = std::max<uint64_t>(
        1, options.max_search_nodes / branches.size());
    struct BranchOutcome {
      bool has_best = false;
      double best_sum = 0.0;
      std::vector<MatchPair> best_pairs;
      uint64_t nodes_explored = 0;
      bool budget_exhausted = false;
    };
    std::vector<BranchOutcome> outcomes(branches.size());
    ThreadPool::ParallelForWithWorker(
        options.num_threads, branches.size(),
        [&](size_t /*worker*/, size_t i) {
          Search search(ctx, per_branch_budget, &shared);
          if (incumbent.has_value()) {
            search.SeedIncumbent(*incumbent, incumbent_sum);
          }
          BranchOutcome& out = outcomes[i];
          out.has_best = search.RunBranch(branches[i]);
          out.best_sum = search.best_sum();
          out.best_pairs = search.best_pairs();
          out.nodes_explored = search.nodes_explored();
          out.budget_exhausted = search.budget_exhausted();
        });
    // Deterministic reduction in branch order: strictly better wins, ties
    // keep the earliest branch — exactly the solution the serial DFS
    // would have recorded first.
    size_t winner = branches.size();
    uint64_t total_nodes = 0;
    bool any_exhausted = false;
    for (size_t i = 0; i < branches.size(); ++i) {
      total_nodes += outcomes[i].nodes_explored;
      any_exhausted = any_exhausted || outcomes[i].budget_exhausted;
      if (!outcomes[i].has_best) continue;
      if (winner == branches.size() ||
          (metric.maximize()
               ? outcomes[i].best_sum > outcomes[winner].best_sum
               : outcomes[i].best_sum < outcomes[winner].best_sum)) {
        winner = i;
      }
    }
    if (winner == branches.size()) {
      return NotFoundError(
          "candidate filter admits no complete injective assignment; widen "
          "candidates_per_attribute");
    }
    result.pairs = std::move(outcomes[winner].best_pairs);
    std::sort(result.pairs.begin(), result.pairs.end());
    result.metric_value = metric.Finalize(outcomes[winner].best_sum);
    result.nodes_explored = total_nodes;
    result.budget_exhausted = any_exhausted;
    return result;
  }

  Search search(ctx, options.max_search_nodes, nullptr);
  if (incumbent.has_value()) {
    search.SeedIncumbent(*incumbent, incumbent_sum);
  }
  bool found = search.Run();
  if (!found) {
    return NotFoundError(
        "candidate filter admits no complete injective assignment; widen "
        "candidates_per_attribute");
  }

  result.pairs = search.best_pairs();
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = metric.Finalize(search.best_sum());
  result.nodes_explored = search.nodes_explored();
  result.budget_exhausted = search.budget_exhausted();
  return result;
}

}  // namespace depmatch
