#include "depmatch/match/exhaustive_matcher.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/metric.h"

namespace depmatch {
namespace {

// Depth-first branch-and-bound state over a fixed source processing order.
class Search {
 public:
  Search(const DependencyGraph& a, const DependencyGraph& b,
         const Metric& metric, Cardinality cardinality,
         std::vector<std::vector<size_t>> candidates,
         std::vector<size_t> order, uint64_t node_budget)
      : a_(a),
        b_(b),
        metric_(metric),
        cardinality_(cardinality),
        candidates_(std::move(candidates)),
        order_(std::move(order)),
        node_budget_(node_budget),
        used_(b.size(), 0) {
    // Per-depth diagonal-term bounds (admissible: each future assignment
    // of order_[k] pays at least / at most its best diagonal term over
    // its own candidates, regardless of which targets remain free).
    // Only valid when every source must be assigned (not partial).
    size_t depth = order_.size();
    min_diag_suffix_.assign(depth + 1, 0.0);
    max_diag_suffix_.assign(depth + 1, 0.0);
    if (cardinality_ != Cardinality::kPartial) {
      for (size_t k = depth; k > 0; --k) {
        size_t s = order_[k - 1];
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (size_t t : candidates_[s]) {
          double term = metric_.Term(a_.mi(s, s), b_.mi(t, t));
          lo = std::min(lo, term);
          hi = std::max(hi, term);
        }
        if (candidates_[s].empty()) {
          lo = 0.0;
          hi = 0.0;
        }
        min_diag_suffix_[k - 1] = min_diag_suffix_[k] + lo;
        max_diag_suffix_[k - 1] = max_diag_suffix_[k] + hi;
      }
    }
  }

  // Installs a known-feasible assignment as the incumbent before the
  // search starts, enabling pruning from the first node.
  void SeedIncumbent(std::vector<MatchPair> pairs, double sum) {
    has_best_ = true;
    best_sum_ = sum;
    best_pairs_ = std::move(pairs);
  }

  // Runs the search. Returns true if any feasible assignment was found
  // (for partial, the empty assignment always counts).
  bool Run() {
    if (cardinality_ == Cardinality::kPartial && !has_best_) {
      // The empty mapping is feasible; it is the baseline to beat.
      has_best_ = true;
      best_sum_ = 0.0;
      best_pairs_.clear();
    }
    Dfs(0, 0.0);
    return has_best_;
  }

  const std::vector<MatchPair>& best_pairs() const { return best_pairs_; }
  double best_sum() const { return best_sum_; }
  uint64_t nodes_explored() const { return nodes_explored_; }
  bool budget_exhausted() const { return budget_exhausted_; }

 private:
  // Admissible optimistic bound on the additional sum attainable from
  // depth `k` (maximization only). For exact cardinalities the r future
  // diagonal cells are bounded by each source's best candidate diagonal
  // term instead of MaxTerm, which bites hard on mismatched schema pairs.
  double UpperBoundFrom(size_t k) const {
    size_t assigned = assigned_.size();
    size_t remaining = order_.size() - k;
    if (metric_.structural()) {
      double final_count = static_cast<double>(assigned + remaining);
      double now = static_cast<double>(assigned);
      double cells = final_count * final_count - now * now;
      if (cardinality_ == Cardinality::kPartial) {
        return cells * metric_.MaxTerm();
      }
      double r = static_cast<double>(remaining);
      return (cells - r) * metric_.MaxTerm() + max_diag_suffix_[k];
    }
    if (cardinality_ == Cardinality::kPartial) {
      return static_cast<double>(remaining) * metric_.MaxTerm();
    }
    return max_diag_suffix_[k];
  }

  // Admissible lower bound on the additional sum that *must* accrue from
  // depth `k` (minimization; 0 under partial where skipping is free).
  double LowerBoundFrom(size_t k) const { return min_diag_suffix_[k]; }

  bool Improves(double sum) const {
    if (!has_best_) return true;
    return metric_.maximize() ? sum > best_sum_ : sum < best_sum_;
  }

  void RecordIfBetter(double sum) {
    if (Improves(sum)) {
      has_best_ = true;
      best_sum_ = sum;
      best_pairs_ = assigned_;
    }
  }

  void Dfs(size_t k, double sum) {
    if (budget_exhausted_) return;
    if (k == order_.size()) {
      RecordIfBetter(sum);
      return;
    }
    // Prune.
    if (has_best_) {
      if (metric_.maximize()) {
        if (sum + UpperBoundFrom(k) <= best_sum_) return;
      } else {
        // Every Euclidean increment is >= 0, and at least the best-case
        // diagonal terms of all unassigned sources must still accrue.
        if (sum + LowerBoundFrom(k) >= best_sum_) return;
      }
    }
    size_t s = order_[k];
    for (size_t t : candidates_[s]) {
      if (used_[t]) continue;
      if (++nodes_explored_ > node_budget_) {
        budget_exhausted_ = true;
        return;
      }
      double gain = metric_.IncrementalGain(a_, b_, assigned_, s, t);
      // Cheap per-child pruning for minimization.
      if (!metric_.maximize() && has_best_ &&
          sum + gain + LowerBoundFrom(k + 1) >= best_sum_) {
        continue;
      }
      used_[t] = 1;
      assigned_.push_back({s, t});
      Dfs(k + 1, sum + gain);
      assigned_.pop_back();
      used_[t] = 0;
      if (budget_exhausted_) return;
    }
    if (cardinality_ == Cardinality::kPartial) {
      // Leave s unmatched.
      Dfs(k + 1, sum);
    }
  }

  const DependencyGraph& a_;
  const DependencyGraph& b_;
  const Metric& metric_;
  Cardinality cardinality_;
  std::vector<std::vector<size_t>> candidates_;
  std::vector<size_t> order_;
  uint64_t node_budget_;

  std::vector<char> used_;
  std::vector<double> min_diag_suffix_;
  std::vector<double> max_diag_suffix_;
  std::vector<MatchPair> assigned_;
  std::vector<MatchPair> best_pairs_;
  double best_sum_ = 0.0;
  bool has_best_ = false;
  uint64_t nodes_explored_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

Result<MatchResult> ExhaustiveMatch(const DependencyGraph& source,
                                    const DependencyGraph& target,
                                    const MatchOptions& options) {
  size_t n = source.size();
  size_t m = target.size();
  if (options.cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (options.cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }
  Metric metric(options.metric, options.alpha);

  MatchResult result;
  result.metric = options.metric;
  if (n == 0) {
    result.metric_value = metric.Finalize(0.0);
    return result;
  }

  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);

  // Process high-entropy sources first: their labels vary most, which
  // tightens bounds early.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return source.entropy(x) > source.entropy(y);
  });

  // For the exact cardinalities, check feasibility of the filtered space
  // up front and seed the search with the feasible assignment found, so
  // that (a) infeasible filters fail in O(n * m) instead of by exhaustive
  // enumeration and (b) pruning is active from the first search node.
  std::optional<std::vector<MatchPair>> incumbent;
  if (options.cardinality != Cardinality::kPartial) {
    std::optional<std::vector<size_t>> assignment =
        FindFeasibleAssignment(candidates, m);
    if (!assignment.has_value()) {
      return NotFoundError(
          "candidate filter admits no complete injective assignment; "
          "widen candidates_per_attribute");
    }
    incumbent.emplace();
    for (size_t s = 0; s < n; ++s) {
      incumbent->push_back({s, (*assignment)[s]});
    }
  }

  Search search(source, target, metric, options.cardinality,
                std::move(candidates), std::move(order),
                options.max_search_nodes);
  if (incumbent.has_value()) {
    search.SeedIncumbent(*incumbent,
                         metric.EvaluateSum(source, target, *incumbent));
  }
  bool found = search.Run();
  if (!found) {
    return NotFoundError(
        "candidate filter admits no complete injective assignment; widen "
        "candidates_per_attribute");
  }

  result.pairs = search.best_pairs();
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = metric.Finalize(search.best_sum());
  result.nodes_explored = search.nodes_explored();
  result.budget_exhausted = search.budget_exhausted();
  return result;
}

}  // namespace depmatch
