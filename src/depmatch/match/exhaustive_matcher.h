// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// The paper's search procedure: exhaustive search over injective node
// mappings, restricted by the entropy candidate filter, implemented as
// depth-first branch-and-bound so it is exact over the filtered space but
// visits far fewer states than naive enumeration.
//
// Supports all three cardinality constraints:
//   one-to-one: |A| == |B|, every source assigned
//   onto:       |A| <= |B|, every source assigned
//   partial:    any sizes, sources may stay unmatched
//
// For one-to-one and onto, the candidate filter can in rare cases admit no
// complete injective assignment (a Hall-condition violation); the matcher
// then returns NotFoundError and MatchGraphs() retries with a wider filter.

#ifndef DEPMATCH_MATCH_EXHAUSTIVE_MATCHER_H_
#define DEPMATCH_MATCH_EXHAUSTIVE_MATCHER_H_

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"

namespace depmatch {

// Finds the mapping optimizing options.metric subject to
// options.cardinality. Exact over the candidate-filtered search space
// unless options.max_search_nodes is exceeded (then best-so-far is
// returned with budget_exhausted set).
Result<MatchResult> ExhaustiveMatch(const DependencyGraph& source,
                                    const DependencyGraph& target,
                                    const MatchOptions& options);

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_EXHAUSTIVE_MATCHER_H_
