// depmatch-lint: bit-identical-file
// Results are bit-identical at any thread count: every floating-point
// sum in this file accumulates in a fixed, thread-independent order.
// Do not introduce constructs that reorder double accumulation
// (std::reduce, atomic floating adds, OpenMP reductions); the
// depmatch_lint bit-identical rule and the tsan_stress tests enforce
// and exercise this contract.
#include "depmatch/match/score_kernel.h"

#include <algorithm>
#include <cmath>

#include "depmatch/common/logging.h"

namespace depmatch {
namespace {

// Mirrors Metric::Term's zero-sum cutoff for the normal kinds.
constexpr double kZeroSumEpsilon = 1e-12;

// The per-term formula with the kind resolved at compile time. Produces
// exactly the doubles Metric::Term produces.
template <bool kEuclidean>
inline double TermOf(double x, double y, double alpha) {
  if constexpr (kEuclidean) {
    double d = x - y;
    return d * d;
  } else {
    double sum = x + y;
    double nd = (sum < kZeroSumEpsilon) ? 0.0 : std::fabs(x - y) / sum;
    return 1.0 - alpha * nd;
  }
}

std::vector<double> Flatten(const DependencyGraph& g) {
  size_t n = g.size();
  std::vector<double> flat(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) flat[i * n + j] = g.mi(i, j);
  }
  return flat;
}

}  // namespace

ScoreKernel::ScoreKernel(const DependencyGraph& a, const DependencyGraph& b,
                         const Metric& metric, size_t pair_term_budget)
    : n_(a.size()),
      m_(b.size()),
      metric_(metric),
      maximize_(metric.maximize()),
      structural_(metric.structural()),
      euclidean_(!metric.maximize()),
      alpha_(metric.alpha()),
      a_flat_(Flatten(a)),
      b_flat_(Flatten(b)) {
  size_t nm = n_ * m_;
  if (!structural_ || nm == 0 || nm > pair_term_budget / nm) return;
  pair_terms_.resize(nm * nm);
  for (size_t s = 0; s < n_; ++s) {
    const double* a_row = a_flat_.data() + s * n_;
    for (size_t t = 0; t < m_; ++t) {
      const double* b_row = b_flat_.data() + t * m_;
      double* row = pair_terms_.data() + (s * m_ + t) * nm;
      for (size_t s2 = 0; s2 < n_; ++s2) {
        double av = a_row[s2];
        double* cell = row + s2 * m_;
        if (euclidean_) {
          for (size_t t2 = 0; t2 < m_; ++t2) {
            cell[t2] = TermOf<true>(av, b_row[t2], alpha_);
          }
        } else {
          for (size_t t2 = 0; t2 < m_; ++t2) {
            cell[t2] = TermOf<false>(av, b_row[t2], alpha_);
          }
        }
      }
    }
  }
}

double ScoreKernel::Term(double x, double y) const {
  return euclidean_ ? TermOf<true>(x, y, alpha_)
                    : TermOf<false>(x, y, alpha_);
}

double ScoreKernel::PairTerm(size_t s, size_t t, size_t s2,
                             size_t t2) const {
  if (!pair_terms_.empty()) {
    return pair_terms_[(s * m_ + t) * (n_ * m_) + s2 * m_ + t2];
  }
  return Term(a_flat_[s * n_ + s2], b_flat_[t * m_ + t2]);
}

template <bool kEuclidean>
double ScoreKernel::GainOfImpl(const MatchPair* assigned, size_t count,
                               size_t s, size_t t, bool exclude_s) const {
  if (!structural_) {
    return TermOf<kEuclidean>(a_flat_[s * n_ + s], b_flat_[t * m_ + t],
                              alpha_);
  }
  if (!pair_terms_.empty()) {
    const double* row = pair_terms_.data() + (s * m_ + t) * (n_ * m_);
    double gain = row[s * m_ + t];
    for (size_t i = 0; i < count; ++i) {
      if (exclude_s && assigned[i].source == s) continue;
      gain += 2.0 * row[assigned[i].source * m_ + assigned[i].target];
    }
    return gain;
  }
  const double* a_row = a_flat_.data() + s * n_;
  const double* b_row = b_flat_.data() + t * m_;
  double gain = TermOf<kEuclidean>(a_row[s], b_row[t], alpha_);
  for (size_t i = 0; i < count; ++i) {
    if (exclude_s && assigned[i].source == s) continue;
    gain += 2.0 * TermOf<kEuclidean>(a_row[assigned[i].source],
                                     b_row[assigned[i].target], alpha_);
  }
  return gain;
}

double ScoreKernel::GainOf(const MatchPair* assigned, size_t count,
                           size_t s, size_t t) const {
  return euclidean_ ? GainOfImpl<true>(assigned, count, s, t, false)
                    : GainOfImpl<false>(assigned, count, s, t, false);
}

double ScoreKernel::GainOfExcluding(const MatchPair* assigned, size_t count,
                                    size_t s, size_t t) const {
  return euclidean_ ? GainOfImpl<true>(assigned, count, s, t, true)
                    : GainOfImpl<false>(assigned, count, s, t, true);
}

template <bool kEuclidean>
double ScoreKernel::EvaluateSumImpl(
    const std::vector<MatchPair>& pairs) const {
  double sum = 0.0;
  if (structural_) {
    for (const MatchPair& p : pairs) {
      const double* a_row = a_flat_.data() + p.source * n_;
      const double* b_row = b_flat_.data() + p.target * m_;
      for (const MatchPair& q : pairs) {
        sum += TermOf<kEuclidean>(a_row[q.source], b_row[q.target], alpha_);
      }
    }
  } else {
    for (const MatchPair& p : pairs) {
      sum += TermOf<kEuclidean>(a_flat_[p.source * n_ + p.source],
                                b_flat_[p.target * m_ + p.target], alpha_);
    }
  }
  return sum;
}

double ScoreKernel::EvaluateSum(const std::vector<MatchPair>& pairs) const {
  for (const MatchPair& pair : pairs) {
    DEPMATCH_CHECK_LT(pair.source, n_);
    DEPMATCH_CHECK_LT(pair.target, m_);
  }
  return euclidean_ ? EvaluateSumImpl<true>(pairs)
                    : EvaluateSumImpl<false>(pairs);
}

double ScoreKernel::Evaluate(const std::vector<MatchPair>& pairs) const {
  return metric_.Finalize(EvaluateSum(pairs));
}

template <bool kEuclidean>
double ScoreKernel::SoftGradientImpl(const double* soft, size_t stride,
                                     size_t s, size_t t) const {
  // Compatibilities maximize: Euclidean terms (costs) are negated.
  double diag = TermOf<kEuclidean>(a_flat_[s * n_ + s],
                                   b_flat_[t * m_ + t], alpha_);
  double q = kEuclidean ? -diag : diag;
  if (!structural_) return q;
  // The t2 == t exclusion is handled by splitting each row into the two
  // contiguous ranges around t. Zero-weight cells (disallowed, or driven
  // to exactly 0 by Sinkhorn) are NOT skipped: 2.0 * 0.0 * c contributes
  // an exact zero, so including them leaves the accumulated value
  // bit-identical while keeping the inner loop branch-free.
  if (!pair_terms_.empty()) {
    const double* row = pair_terms_.data() + (s * m_ + t) * (n_ * m_);
    for (size_t s2 = 0; s2 < n_; ++s2) {
      if (s2 == s) continue;
      const double* soft_row = soft + s2 * stride;
      const double* term_row = row + s2 * m_;
      if constexpr (kEuclidean) {
        for (size_t t2 = 0; t2 < t; ++t2) {
          q += 2.0 * soft_row[t2] * -term_row[t2];
        }
        for (size_t t2 = t + 1; t2 < m_; ++t2) {
          q += 2.0 * soft_row[t2] * -term_row[t2];
        }
      } else {
        for (size_t t2 = 0; t2 < t; ++t2) {
          q += 2.0 * soft_row[t2] * term_row[t2];
        }
        for (size_t t2 = t + 1; t2 < m_; ++t2) {
          q += 2.0 * soft_row[t2] * term_row[t2];
        }
      }
    }
    return q;
  }
  const double* a_row = a_flat_.data() + s * n_;
  const double* b_row = b_flat_.data() + t * m_;
  for (size_t s2 = 0; s2 < n_; ++s2) {
    if (s2 == s) continue;
    const double* soft_row = soft + s2 * stride;
    double av = a_row[s2];
    for (size_t t2 = 0; t2 < m_; ++t2) {
      if (t2 == t) continue;
      double term = TermOf<kEuclidean>(av, b_row[t2], alpha_);
      double c = kEuclidean ? -term : term;
      q += 2.0 * soft_row[t2] * c;
    }
  }
  return q;
}

double ScoreKernel::SoftGradient(const double* soft, size_t stride,
                                 size_t s, size_t t) const {
  return euclidean_ ? SoftGradientImpl<true>(soft, stride, s, t)
                    : SoftGradientImpl<false>(soft, stride, s, t);
}

ScoreState::ScoreState(const ScoreKernel& kernel)
    : kernel_(kernel),
      target_of_(kernel.source_size(), kUnassigned),
      source_of_(kernel.target_size(), kUnassigned) {
  assigned_.reserve(kernel.source_size());
}

void ScoreState::Reset() {
  std::fill(target_of_.begin(), target_of_.end(), kUnassigned);
  std::fill(source_of_.begin(), source_of_.end(), kUnassigned);
  assigned_.clear();
  sum_ = 0.0;
}

double ScoreState::GainOf(size_t s, size_t t) const {
  return kernel_.GainOfExcluding(assigned_.data(), assigned_.size(), s, t);
}

void ScoreState::Assign(size_t s, size_t t) {
  sum_ += GainOf(s, t);
  target_of_[s] = t;
  source_of_[t] = s;
  // Insert keeping ascending source order; capacity was reserved, so this
  // never allocates.
  size_t i = assigned_.size();
  assigned_.push_back({s, t});
  while (i > 0 && assigned_[i - 1].source > s) {
    assigned_[i] = assigned_[i - 1];
    --i;
  }
  assigned_[i] = {s, t};
}

void ScoreState::Unassign(size_t s) {
  size_t t = target_of_[s];
  target_of_[s] = kUnassigned;
  source_of_[t] = kUnassigned;
  auto it = std::lower_bound(
      assigned_.begin(), assigned_.end(), s,
      [](const MatchPair& p, size_t v) { return p.source < v; });
  assigned_.erase(it);
  // Contribution is measured against the assignment without s.
  sum_ -= GainOf(s, t);
}

void ScoreState::AppendPairs(std::vector<MatchPair>* out) const {
  out->assign(assigned_.begin(), assigned_.end());
}

}  // namespace depmatch
