// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Interpreted baseline matchers — the two classical approaches the paper
// contrasts against (Section 1):
//
//   * Schema-based: match attributes whose *names* are similar
//     (normalized Levenshtein similarity).
//   * Instance-based: match attributes whose *value sets* overlap
//     (Jaccard similarity of column dictionaries).
//
// Both reduce to a linear assignment problem solved exactly with the
// Hungarian solver. They work well when names/values are meaningful and
// collapse to noise on opaque data — which is precisely the regime the
// un-interpreted matcher targets. DepMatch ships them (a) as honest
// baselines for the comparison bench and (b) because a production
// matching suite combines all three signals (see HybridMatch).

#ifndef DEPMATCH_MATCH_INTERPRETED_MATCHER_H_
#define DEPMATCH_MATCH_INTERPRETED_MATCHER_H_

#include <string_view>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/match/matching.h"
#include "depmatch/table/table.h"

namespace depmatch {

// Normalized Levenshtein similarity in [0, 1]; 1 = identical,
// case-insensitive. Two empty strings are fully similar.
double NameSimilarity(std::string_view a, std::string_view b);

// Jaccard similarity of the distinct non-null value sets of two columns,
// in [0, 1]. Two empty (all-null) columns have similarity 0.
double ValueOverlapSimilarity(const Column& a, const Column& b);

struct InterpretedMatchOptions {
  // Cardinality of the produced mapping. kPartial drops pairs whose
  // similarity is below min_similarity.
  Cardinality cardinality = Cardinality::kOneToOne;
  // kPartial only: similarity threshold below which a pair is not worth
  // proposing.
  double min_similarity = 0.5;
};

// Matches attributes of `source` to `target` by name similarity.
// result.metric_value is the total similarity of the chosen pairs.
Result<MatchResult> NameBasedMatch(const Table& source, const Table& target,
                                   const InterpretedMatchOptions& options);

// Matches attributes by value-set overlap.
Result<MatchResult> ValueOverlapMatch(
    const Table& source, const Table& target,
    const InterpretedMatchOptions& options);

// Hybrid: combines the un-interpreted structural score with a name-
// similarity prior, the composition the paper suggests for real
// deployments ("can complement existing techniques"). The dependency
// graphs are built internally; `name_weight` in [0, 1] balances the two
// signals (0 = pure structure, 1 = pure names).
struct HybridMatchOptions {
  MatchOptions match;        // structural side (metric, cardinality, ...)
  double name_weight = 0.3;  // weight of the name-similarity prior
};
Result<MatchResult> HybridMatch(const Table& source, const Table& target,
                                const HybridMatchOptions& options);

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_INTERPRETED_MATCHER_H_
