// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// MatchGraphs: the GraphMatch() entry point (step 2 of the paper's
// algorithm). Dispatches to the configured search algorithm and, for the
// exact cardinalities, automatically widens the entropy candidate filter
// when it admits no complete assignment.

#ifndef DEPMATCH_MATCH_MATCHER_H_
#define DEPMATCH_MATCH_MATCHER_H_

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"

namespace depmatch {

// Finds the node mapping from `source` into `target` optimizing
// options.metric under options.cardinality.
//
// If options.candidates_per_attribute > 0 and the filtered space contains
// no complete assignment for one-to-one/onto (NotFoundError from the
// search), the filter width is doubled and the search retried, up to
// unfiltered.
Result<MatchResult> MatchGraphs(const DependencyGraph& source,
                                const DependencyGraph& target,
                                const MatchOptions& options);

// Scores an explicit mapping under the configured metric without
// searching (used to compare the metric values of related vs unrelated
// schema pairs, Figure 8).
Result<double> ScoreMapping(const DependencyGraph& source,
                            const DependencyGraph& target,
                            const std::vector<MatchPair>& pairs,
                            MetricKind metric, double alpha = 3.0);

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_MATCHER_H_
