// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared types for the graph-matching stage (step 2 of the paper):
// cardinality constraints (Section 2.3), metric kinds (Definitions
// 2.6-2.9), match results, and matcher options.

#ifndef DEPMATCH_MATCH_MATCHING_H_
#define DEPMATCH_MATCH_MATCHING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace depmatch {

// Cardinality constraints between source schema A and target schema B
// (Section 2.3 of the paper, UML-style):
//   kOneToOne  [1,1]-[1,1]: |A| == |B|, every attribute matched both ways.
//   kOnto      [0,1]-[1,1]: every A attribute matched; B may have extras.
//   kPartial   [0,1]-[0,1]: attributes on both sides may stay unmatched.
enum class Cardinality { kOneToOne, kOnto, kPartial };

std::string_view CardinalityToString(Cardinality cardinality);

// The four distance metrics evaluated in the paper.
//   kMutualInfoEuclidean  DMU (Def 2.6)  structural, minimized, monotonic
//   kMutualInfoNormal     DMN (Def 2.7)  structural, maximized
//   kEntropyEuclidean     DEU (Def 2.8)  element-wise, minimized, monotonic
//   kEntropyNormal        DEN (Def 2.9)  element-wise, maximized
enum class MetricKind {
  kMutualInfoEuclidean,
  kMutualInfoNormal,
  kEntropyEuclidean,
  kEntropyNormal,
};

std::string_view MetricKindToString(MetricKind kind);

// Search algorithm used by MatchGraphs.
enum class MatchAlgorithm {
  // The paper's method: exhaustive search with entropy-based candidate
  // filtering, implemented as branch-and-bound (exact over the filtered
  // candidate space).
  kExhaustive,
  // One-pass greedy best-incremental-gain baseline.
  kGreedy,
  // Graduated assignment (Gold & Rangarajan 1996), the approximate graph
  // matcher the paper points to for scalability.
  kGraduatedAssignment,
  // Exact polynomial-time assignment for the entropy-only metrics
  // (InvalidArgument for MI metrics, whose objective is quadratic).
  kHungarian,
  // Simulated annealing over the full objective; approximate, scales to
  // wide schemas.
  kSimulatedAnnealing,
};

std::string_view MatchAlgorithmToString(MatchAlgorithm algorithm);

// One proposed correspondence: source node -> target node.
struct MatchPair {
  size_t source = 0;
  size_t target = 0;

  friend bool operator==(const MatchPair& a, const MatchPair& b) {
    return a.source == b.source && a.target == b.target;
  }
  friend bool operator<(const MatchPair& a, const MatchPair& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.target < b.target;
  }
};

// Output of a matcher.
struct MatchResult {
  // Proposed pairs, sorted by source index. Sources absent from the list
  // are unmatched (possible only under kPartial).
  std::vector<MatchPair> pairs;
  // Value of the optimized metric for `pairs` (Euclidean metrics report
  // the square root, as in Definition 2.6).
  double metric_value = 0.0;
  MetricKind metric = MetricKind::kMutualInfoEuclidean;
  // Search-effort accounting (exhaustive/greedy matchers).
  uint64_t nodes_explored = 0;
  // True if the exhaustive search hit its node budget; the result is then
  // the best mapping found so far rather than a certified optimum.
  bool budget_exhausted = false;

  // Target of `source`, or npos.
  static constexpr size_t kUnmatched = static_cast<size_t>(-1);
  size_t TargetOf(size_t source) const;
};

struct MatchOptions {
  Cardinality cardinality = Cardinality::kOneToOne;
  MetricKind metric = MetricKind::kMutualInfoEuclidean;
  MatchAlgorithm algorithm = MatchAlgorithm::kExhaustive;
  // Control parameter of the normal metrics (the paper uses 3.0 for
  // one-to-one/onto and {1, 4, 7} for partial).
  double alpha = 3.0;
  // Entropy-based candidate filter: each source attribute considers only
  // the `candidates_per_attribute` target attributes with closest entropy.
  // 0 disables filtering. The paper's testbed uses 3.
  size_t candidates_per_attribute = 3;
  // Branch-and-bound node budget; exceeded searches return best-so-far
  // with budget_exhausted set.
  uint64_t max_search_nodes = 200'000'000;
  // Worker threads for the parallel search backends: annealing restart
  // portfolios, graduated-assignment row updates, and exhaustive
  // root-level branches. 1 = serial. Results are bit-identical at any
  // thread count (for the exhaustive matcher: as long as the node budget
  // is not exhausted).
  size_t num_threads = 1;
};

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_MATCHING_H_
