// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Greedy matcher: repeatedly commits the (source, target) pair with the
// best incremental metric gain given the pairs chosen so far. O(n^2 * m)
// and not exact — used as the cheap baseline in the search ablation.

#ifndef DEPMATCH_MATCH_GREEDY_MATCHER_H_
#define DEPMATCH_MATCH_GREEDY_MATCHER_H_

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"

namespace depmatch {

// Same contract as ExhaustiveMatch but computes a greedy approximation.
// Under kPartial it stops as soon as no remaining pair improves the
// objective.
Result<MatchResult> GreedyMatch(const DependencyGraph& source,
                                const DependencyGraph& target,
                                const MatchOptions& options);

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_GREEDY_MATCHER_H_
