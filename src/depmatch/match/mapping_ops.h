// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Mapping algebra — the model-management operators the paper situates
// itself in (Bernstein et al.'s vision paper: Match, Compose, Merge...).
// MatchGraphs/MatchTables realize the Match operator; this module adds
// the operators that combine match results:
//
//   Invert     A->B  becomes  B->A
//   Compose    A->B  with  B->C  gives  A->C
//   Intersect  pairs proposed by every input mapping
//   Consensus  run several matcher configurations and keep the pairs at
//              least `min_votes` of them agree on — a cheap, effective
//              way to trade recall for precision without a new metric.

#ifndef DEPMATCH_MATCH_MAPPING_OPS_H_
#define DEPMATCH_MATCH_MAPPING_OPS_H_

#include <cstddef>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"

namespace depmatch {

// Swaps the roles of source and target. Always valid: mappings are
// injective in both directions.
MatchResult InvertMapping(const MatchResult& mapping);

// Composes a -> b with b -> c into a -> c. Sources of `ab` whose target
// is unmatched in `bc` drop out (composition of partial mappings).
MatchResult ComposeMappings(const MatchResult& ab, const MatchResult& bc);

// Pairs present in every input mapping. Empty input list gives an empty
// result.
MatchResult IntersectMappings(const std::vector<MatchResult>& mappings);

// Pairs that appear in at least `min_votes` of the input mappings.
// Precondition: min_votes >= 1.
MatchResult VoteMappings(const std::vector<MatchResult>& mappings,
                         size_t min_votes);

// Runs MatchGraphs once per configuration and keeps pairs proposed by at
// least `min_votes` of the successful runs. Configurations whose match
// fails (e.g. infeasible) are skipped; if none succeed, the first error
// is returned.
Result<MatchResult> ConsensusMatch(const DependencyGraph& source,
                                   const DependencyGraph& target,
                                   const std::vector<MatchOptions>& configs,
                                   size_t min_votes);

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_MAPPING_OPS_H_
