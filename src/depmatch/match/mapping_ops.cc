#include "depmatch/match/mapping_ops.h"

#include <algorithm>
#include <map>
#include <utility>

#include "depmatch/match/matcher.h"

namespace depmatch {

MatchResult InvertMapping(const MatchResult& mapping) {
  MatchResult inverted;
  inverted.metric = mapping.metric;
  inverted.metric_value = mapping.metric_value;
  for (const MatchPair& pair : mapping.pairs) {
    inverted.pairs.push_back({pair.target, pair.source});
  }
  std::sort(inverted.pairs.begin(), inverted.pairs.end());
  return inverted;
}

MatchResult ComposeMappings(const MatchResult& ab, const MatchResult& bc) {
  MatchResult composed;
  for (const MatchPair& first : ab.pairs) {
    size_t end = bc.TargetOf(first.target);
    if (end == MatchResult::kUnmatched) continue;
    composed.pairs.push_back({first.source, end});
  }
  std::sort(composed.pairs.begin(), composed.pairs.end());
  return composed;
}

MatchResult IntersectMappings(const std::vector<MatchResult>& mappings) {
  if (mappings.empty()) return MatchResult{};
  return VoteMappings(mappings, mappings.size());
}

MatchResult VoteMappings(const std::vector<MatchResult>& mappings,
                         size_t min_votes) {
  if (min_votes == 0) min_votes = 1;
  std::map<MatchPair, size_t> votes;
  for (const MatchResult& mapping : mappings) {
    for (const MatchPair& pair : mapping.pairs) {
      ++votes[pair];
    }
  }
  MatchResult result;
  // A source (or target) may reach min_votes with several partners when
  // the inputs disagree; keep only the most-voted partner per endpoint
  // (ties: smallest index, for determinism) so the output stays a valid
  // injective mapping.
  std::map<size_t, std::pair<size_t, size_t>> best_for_source;  // s -> (votes, t)
  for (const auto& [pair, count] : votes) {
    if (count < min_votes) continue;
    auto it = best_for_source.find(pair.source);
    if (it == best_for_source.end() || count > it->second.first) {
      best_for_source[pair.source] = {count, pair.target};
    }
  }
  std::map<size_t, std::pair<size_t, size_t>> best_for_target;  // t -> (votes, s)
  for (const auto& [source, entry] : best_for_source) {
    auto it = best_for_target.find(entry.second);
    if (it == best_for_target.end() || entry.first > it->second.first) {
      best_for_target[entry.second] = {entry.first, source};
    }
  }
  for (const auto& [target, entry] : best_for_target) {
    result.pairs.push_back({entry.second, target});
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  return result;
}

Result<MatchResult> ConsensusMatch(const DependencyGraph& source,
                                   const DependencyGraph& target,
                                   const std::vector<MatchOptions>& configs,
                                   size_t min_votes) {
  if (configs.empty()) {
    return InvalidArgumentError("consensus needs at least one config");
  }
  std::vector<MatchResult> results;
  Status first_error = OkStatus();
  uint64_t nodes = 0;
  for (const MatchOptions& config : configs) {
    Result<MatchResult> result = MatchGraphs(source, target, config);
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    nodes += result->nodes_explored;
    results.push_back(std::move(result).value());
  }
  if (results.empty()) return first_error;
  MatchResult consensus = VoteMappings(results, min_votes);
  consensus.nodes_explored = nodes;
  return consensus;
}

}  // namespace depmatch
