#include "depmatch/match/candidate_ranking.h"

#include <algorithm>
#include <cmath>

#include "depmatch/common/string_util.h"
#include "depmatch/match/graph_signature.h"

namespace depmatch {
namespace {

std::vector<double> SortedOffDiagonal(const DependencyGraph& graph,
                                      size_t node) {
  std::vector<double> profile;
  profile.reserve(graph.size() > 0 ? graph.size() - 1 : 0);
  for (size_t j = 0; j < graph.size(); ++j) {
    if (j == node) continue;
    profile.push_back(graph.mi(node, j));
  }
  std::sort(profile.rbegin(), profile.rend());
  return profile;
}

}  // namespace

double MiProfileSimilarity(const DependencyGraph& source, size_t s,
                           const DependencyGraph& target, size_t t) {
  std::vector<double> a = SortedOffDiagonal(source, s);
  std::vector<double> b = SortedOffDiagonal(target, t);
  size_t length = std::max(a.size(), b.size());
  a.resize(length, 0.0);
  b.resize(length, 0.0);
  double difference = 0.0;
  double mass = 0.0;
  for (size_t i = 0; i < length; ++i) {
    difference += std::fabs(a[i] - b[i]);
    mass += a[i] + b[i];
  }
  if (mass <= 0.0) return 1.0;
  return 1.0 - difference / mass;
}

Result<std::vector<std::vector<RankedCandidate>>> RankCandidates(
    const DependencyGraph& source, const DependencyGraph& target,
    const CandidateRankingOptions& options) {
  if (options.profile_weight < 0.0 || options.profile_weight > 1.0) {
    return InvalidArgumentError("profile_weight must be in [0, 1]");
  }
  // One-time per-graph signature build (O(n^2 log n) each) replaces the
  // per-pair profile extraction + sort the O(n_s * n_t) loop below used
  // to pay; the similarity values are bit-identical.
  GraphSignature source_signature(source);
  GraphSignature target_signature(target);
  std::vector<std::vector<RankedCandidate>> ranking(source.size());
  for (size_t s = 0; s < source.size(); ++s) {
    std::vector<RankedCandidate>& candidates = ranking[s];
    candidates.reserve(target.size());
    double hs = source.entropy(s);
    for (size_t t = 0; t < target.size(); ++t) {
      RankedCandidate candidate;
      candidate.target = t;
      double ht = target.entropy(t);
      double sum = hs + ht;
      candidate.entropy_score =
          sum <= 0.0 ? 1.0 : 1.0 - std::fabs(hs - ht) / sum;
      candidate.profile_score =
          MiProfileSimilarity(source_signature, s, target_signature, t);
      candidate.score =
          options.profile_weight * candidate.profile_score +
          (1.0 - options.profile_weight) * candidate.entropy_score;
      candidates.push_back(candidate);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const RankedCandidate& a, const RankedCandidate& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.target < b.target;
              });
    if (options.top_k > 0 && candidates.size() > options.top_k) {
      candidates.resize(options.top_k);
    }
  }
  return ranking;
}

}  // namespace depmatch
