// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Entropy-based candidate filtering (the paper's search-space heuristic):
// for each source attribute, keep only the p target attributes whose
// entropies are closest to the source attribute's entropy. The paper's
// testbed uses p = 3.

#ifndef DEPMATCH_MATCH_CANDIDATE_FILTER_H_
#define DEPMATCH_MATCH_CANDIDATE_FILTER_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "depmatch/graph/dependency_graph.h"

namespace depmatch {

// candidates[s] = target node indices source s may map to, ordered by
// increasing |H_a(s) - H_b(t)| (ties broken by target index, so the output
// is deterministic). `per_source` == 0 keeps all targets.
std::vector<std::vector<size_t>> ComputeEntropyCandidates(
    const DependencyGraph& source, const DependencyGraph& target,
    size_t per_source);

// Kuhn's augmenting-path bipartite matching over the candidate lists:
// returns a complete injective source -> target assignment within the
// filtered space, or nullopt when the filter violates Hall's condition.
// Used by the exact matchers to detect infeasibility in O(n * m) and to
// seed searches with a feasible incumbent. `num_targets` is the target
// graph's size.
std::optional<std::vector<size_t>> FindFeasibleAssignment(
    const std::vector<std::vector<size_t>>& candidates, size_t num_targets);

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_CANDIDATE_FILTER_H_
