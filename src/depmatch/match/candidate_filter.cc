#include "depmatch/match/candidate_filter.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace depmatch {

std::vector<std::vector<size_t>> ComputeEntropyCandidates(
    const DependencyGraph& source, const DependencyGraph& target,
    size_t per_source) {
  size_t n = source.size();
  size_t m = target.size();
  std::vector<std::vector<size_t>> candidates(n);
  std::vector<std::pair<double, size_t>> ranked(m);
  for (size_t s = 0; s < n; ++s) {
    double hs = source.entropy(s);
    for (size_t t = 0; t < m; ++t) {
      ranked[t] = {std::fabs(hs - target.entropy(t)), t};
    }
    std::sort(ranked.begin(), ranked.end());
    size_t keep = (per_source == 0) ? m : std::min(per_source, m);
    candidates[s].reserve(keep);
    for (size_t k = 0; k < keep; ++k) {
      candidates[s].push_back(ranked[k].second);
    }
  }
  return candidates;
}

std::optional<std::vector<size_t>> FindFeasibleAssignment(
    const std::vector<std::vector<size_t>>& candidates,
    size_t num_targets) {
  size_t n = candidates.size();
  std::vector<int> target_owner(num_targets, -1);
  std::vector<char> visited(num_targets, 0);

  // Recursion depth is bounded by n; schema widths are small.
  std::function<bool(size_t)> augment = [&](size_t s) -> bool {
    for (size_t t : candidates[s]) {
      if (visited[t]) continue;
      visited[t] = 1;
      if (target_owner[t] < 0 ||
          augment(static_cast<size_t>(target_owner[t]))) {
        target_owner[t] = static_cast<int>(s);
        return true;
      }
    }
    return false;
  };

  for (size_t s = 0; s < n; ++s) {
    std::fill(visited.begin(), visited.end(), 0);
    if (!augment(s)) return std::nullopt;
  }
  std::vector<size_t> assignment(n, 0);
  for (size_t t = 0; t < num_targets; ++t) {
    if (target_owner[t] >= 0) {
      assignment[static_cast<size_t>(target_owner[t])] = t;
    }
  }
  return assignment;
}

}  // namespace depmatch
