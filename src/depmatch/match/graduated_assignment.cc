#include "depmatch/match/graduated_assignment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/metric.h"

namespace depmatch {
namespace {

// Pair compatibility: a quantity to *maximize*. Normal-metric terms are
// already benefits; Euclidean terms are costs and get negated.
double Compatibility(const Metric& metric, double a, double b) {
  double term = metric.Term(a, b);
  return metric.maximize() ? term : -term;
}

// Rounds a soft assignment to a hard injective mapping by repeatedly
// committing the largest remaining cell. `allow_unmatched` permits leaving
// a source unmatched when its slack weight beats all remaining cells.
std::vector<MatchPair> Round(const std::vector<std::vector<double>>& soft,
                             size_t n, size_t m, bool allow_unmatched) {
  std::vector<char> src_done(n, 0);
  std::vector<char> tgt_used(m, 0);
  std::vector<MatchPair> pairs;
  size_t remaining = n;
  while (remaining > 0) {
    double best = -std::numeric_limits<double>::infinity();
    size_t bs = 0, bt = 0;
    bool found = false;
    for (size_t s = 0; s < n; ++s) {
      if (src_done[s]) continue;
      for (size_t t = 0; t < m; ++t) {
        if (tgt_used[t]) continue;
        if (soft[s][t] > best) {
          best = soft[s][t];
          bs = s;
          bt = t;
          found = true;
        }
      }
    }
    if (!found) break;  // no free targets left
    if (allow_unmatched && soft[bs][m] >= best) {
      // Slack wins: leave bs unmatched.
      src_done[bs] = 1;
      --remaining;
      continue;
    }
    src_done[bs] = 1;
    tgt_used[bt] = 1;
    pairs.push_back({bs, bt});
    --remaining;
  }
  return pairs;
}

}  // namespace

Result<MatchResult> GraduatedAssignmentMatch(
    const DependencyGraph& source, const DependencyGraph& target,
    const MatchOptions& options, const GraduatedAssignmentParams& params) {
  size_t n = source.size();
  size_t m = target.size();
  if (options.cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (options.cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }
  Metric metric(options.metric, options.alpha);
  MatchResult result;
  result.metric = options.metric;
  if (n == 0) {
    result.metric_value = metric.Finalize(0.0);
    return result;
  }

  std::vector<std::vector<size_t>> candidate_lists = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);
  // allowed[s][t]: the filter admits s -> t.
  std::vector<std::vector<char>> allowed(n, std::vector<char>(m, 0));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t : candidate_lists[s]) allowed[s][t] = 1;
  }

  // Soft assignment with one slack row (index n) and slack column (m).
  std::vector<std::vector<double>> soft(n + 1,
                                        std::vector<double>(m + 1, 0.0));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < m; ++t) {
      if (!allowed[s][t]) continue;
      // Deterministic symmetry-breaking perturbation.
      soft[s][t] = 1.0 + 1e-3 * static_cast<double>((s * 31 + t * 17) % 7);
    }
    soft[s][m] = 1.0;
  }
  for (size_t t = 0; t <= m; ++t) soft[n][t] = 1.0;

  std::vector<std::vector<double>> gradient(n, std::vector<double>(m, 0.0));

  for (double beta = params.beta_initial; beta <= params.beta_final;
       beta *= params.beta_rate) {
    for (int it = 0; it < params.iterations_per_beta; ++it) {
      // Q[s][t] = dE/dM[s][t]: node term + sum of pair interactions with
      // the current soft assignment.
      for (size_t s = 0; s < n; ++s) {
        for (size_t t = 0; t < m; ++t) {
          if (!allowed[s][t]) continue;
          double q = Compatibility(metric, source.mi(s, s), target.mi(t, t));
          if (metric.structural()) {
            for (size_t s2 = 0; s2 < n; ++s2) {
              if (s2 == s) continue;
              for (size_t t2 = 0; t2 < m; ++t2) {
                if (t2 == t || !allowed[s2][t2]) continue;
                if (soft[s2][t2] <= 0.0) continue;
                q += 2.0 * soft[s2][t2] *
                     Compatibility(metric, source.mi(s, s2),
                                   target.mi(t, t2));
              }
            }
          }
          gradient[s][t] = q;
        }
      }
      // Softmax re-estimation.
      for (size_t s = 0; s < n; ++s) {
        for (size_t t = 0; t < m; ++t) {
          if (!allowed[s][t]) continue;
          // Clamp the exponent to keep exp() finite.
          double e = std::min(beta * gradient[s][t], 500.0);
          soft[s][t] = std::exp(e);
        }
        soft[s][m] = 1.0;  // slack stays at neutral weight
      }
      for (size_t t = 0; t <= m; ++t) soft[n][t] = 1.0;
      // Sinkhorn normalization (slack row/column participate but are not
      // required to sum to one across the other dimension).
      for (int sk = 0; sk < params.sinkhorn_iterations; ++sk) {
        // Rows (real sources only).
        for (size_t s = 0; s < n; ++s) {
          double row = soft[s][m];
          for (size_t t = 0; t < m; ++t) row += soft[s][t];
          if (row <= 0.0) continue;
          for (size_t t = 0; t <= m; ++t) soft[s][t] /= row;
        }
        // Columns (real targets only).
        for (size_t t = 0; t < m; ++t) {
          double col = soft[n][t];
          for (size_t s = 0; s < n; ++s) col += soft[s][t];
          if (col <= 0.0) continue;
          for (size_t s = 0; s <= n; ++s) soft[s][t] /= col;
        }
      }
    }
  }

  bool allow_unmatched = options.cardinality == Cardinality::kPartial;
  result.pairs = Round(soft, n, m, allow_unmatched);
  std::sort(result.pairs.begin(), result.pairs.end());
  if ((options.cardinality != Cardinality::kPartial) &&
      result.pairs.size() != n) {
    return NotFoundError(
        "graduated assignment could not assign every source attribute; "
        "widen candidates_per_attribute");
  }
  result.metric_value = metric.Evaluate(source, target, result.pairs);
  return result;
}

}  // namespace depmatch
