// depmatch-lint: bit-identical-file
// Results are bit-identical at any thread count: every floating-point
// sum in this file accumulates in a fixed, thread-independent order.
// Do not introduce constructs that reorder double accumulation
// (std::reduce, atomic floating adds, OpenMP reductions); the
// depmatch_lint bit-identical rule and the tsan_stress tests enforce
// and exercise this contract.
#include "depmatch/match/graduated_assignment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/common/thread_pool.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/metric.h"
#include "depmatch/match/score_kernel.h"

namespace depmatch {
namespace {

// Rounds a soft assignment to a hard injective mapping by repeatedly
// committing the largest remaining cell. `soft` is flat (n+1) x (m+1)
// row-major (slack row n, slack column m). `allow_unmatched` permits
// leaving a source unmatched when its slack weight beats all remaining
// cells.
std::vector<MatchPair> Round(const std::vector<double>& soft, size_t n,
                             size_t m, bool allow_unmatched) {
  size_t stride = m + 1;
  std::vector<char> src_done(n, 0);
  std::vector<char> tgt_used(m, 0);
  std::vector<MatchPair> pairs;
  size_t remaining = n;
  while (remaining > 0) {
    double best = -std::numeric_limits<double>::infinity();
    size_t bs = 0, bt = 0;
    bool found = false;
    for (size_t s = 0; s < n; ++s) {
      if (src_done[s]) continue;
      const double* row = soft.data() + s * stride;
      for (size_t t = 0; t < m; ++t) {
        if (tgt_used[t]) continue;
        if (row[t] > best) {
          best = row[t];
          bs = s;
          bt = t;
          found = true;
        }
      }
    }
    if (!found) break;  // no free targets left
    if (allow_unmatched && soft[bs * stride + m] >= best) {
      // Slack wins: leave bs unmatched.
      src_done[bs] = 1;
      --remaining;
      continue;
    }
    src_done[bs] = 1;
    tgt_used[bt] = 1;
    pairs.push_back({bs, bt});
    --remaining;
  }
  return pairs;
}

}  // namespace

Result<MatchResult> GraduatedAssignmentMatch(
    const DependencyGraph& source, const DependencyGraph& target,
    const MatchOptions& options, const GraduatedAssignmentParams& params) {
  size_t n = source.size();
  size_t m = target.size();
  if (options.cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (options.cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }
  Metric metric(options.metric, options.alpha);
  MatchResult result;
  result.metric = options.metric;
  if (n == 0) {
    result.metric_value = metric.Finalize(0.0);
    return result;
  }

  std::vector<std::vector<size_t>> candidate_lists = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);
  // allowed[s * m + t]: the filter admits s -> t.
  std::vector<char> allowed(n * m, 0);
  for (size_t s = 0; s < n; ++s) {
    for (size_t t : candidate_lists[s]) allowed[s * m + t] = 1;
  }

  ScoreKernel kernel(source, target, metric);

  // Soft assignment, flat (n+1) x (m+1) with one slack row (index n) and
  // slack column (index m). Disallowed cells stay exactly 0 throughout,
  // which is what lets the gradient kernel skip them by weight alone.
  size_t stride = m + 1;
  std::vector<double> soft((n + 1) * stride, 0.0);
  for (size_t s = 0; s < n; ++s) {
    double* row = soft.data() + s * stride;
    for (size_t t = 0; t < m; ++t) {
      if (!allowed[s * m + t]) continue;
      // Deterministic symmetry-breaking perturbation.
      row[t] = 1.0 + 1e-3 * static_cast<double>((s * 31 + t * 17) % 7);
    }
    row[m] = 1.0;
  }
  for (size_t t = 0; t <= m; ++t) soft[n * stride + t] = 1.0;

  std::vector<double> gradient(n * m, 0.0);

  for (double beta = params.beta_initial; beta <= params.beta_final;
       beta *= params.beta_rate) {
    for (int it = 0; it < params.iterations_per_beta; ++it) {
      // Q[s][t] = dE/dM[s][t]: node term + sum of pair interactions with
      // the current soft assignment. Rows are independent (each worker
      // writes a disjoint gradient row and only reads `soft`), so the
      // values — and everything downstream — are bit-identical at any
      // thread count.
      ThreadPool::ParallelForWithWorker(
          options.num_threads, n, [&](size_t /*worker*/, size_t s) {
            double* grad_row = gradient.data() + s * m;
            const char* allowed_row = allowed.data() + s * m;
            for (size_t t = 0; t < m; ++t) {
              if (!allowed_row[t]) continue;
              grad_row[t] = kernel.SoftGradient(soft.data(), stride, s, t);
            }
          });
      // Softmax re-estimation.
      for (size_t s = 0; s < n; ++s) {
        double* row = soft.data() + s * stride;
        for (size_t t = 0; t < m; ++t) {
          if (!allowed[s * m + t]) continue;
          // Clamp the exponent to keep exp() finite.
          double e = std::min(beta * gradient[s * m + t], 500.0);
          row[t] = std::exp(e);
        }
        row[m] = 1.0;  // slack stays at neutral weight
      }
      for (size_t t = 0; t <= m; ++t) soft[n * stride + t] = 1.0;
      // Sinkhorn normalization (slack row/column participate but are not
      // required to sum to one across the other dimension).
      for (int sk = 0; sk < params.sinkhorn_iterations; ++sk) {
        // Rows (real sources only).
        for (size_t s = 0; s < n; ++s) {
          double* srow = soft.data() + s * stride;
          double row = srow[m];
          for (size_t t = 0; t < m; ++t) row += srow[t];
          if (row <= 0.0) continue;
          for (size_t t = 0; t <= m; ++t) srow[t] /= row;
        }
        // Columns (real targets only).
        for (size_t t = 0; t < m; ++t) {
          double col = soft[n * stride + t];
          for (size_t s = 0; s < n; ++s) col += soft[s * stride + t];
          if (col <= 0.0) continue;
          for (size_t s = 0; s <= n; ++s) soft[s * stride + t] /= col;
        }
      }
    }
  }

  bool allow_unmatched = options.cardinality == Cardinality::kPartial;
  result.pairs = Round(soft, n, m, allow_unmatched);
  std::sort(result.pairs.begin(), result.pairs.end());
  if ((options.cardinality != Cardinality::kPartial) &&
      result.pairs.size() != n) {
    return NotFoundError(
        "graduated assignment could not assign every source attribute; "
        "widen candidates_per_attribute");
  }
  result.metric_value = metric.Evaluate(source, target, result.pairs);
  return result;
}

}  // namespace depmatch
