// depmatch-lint: bit-identical-file
// Signature construction and comparison feed bit-identical contracts:
// the profile-similarity sums below must accumulate in the same fixed
// index order as the historical MiProfileSimilarity, and the catalog
// prefilter derives admissible bounds from these arrays. Do not
// introduce constructs that reorder double accumulation (std::reduce,
// atomic floating adds, OpenMP reductions).
#include "depmatch/match/graph_signature.h"

#include <algorithm>
#include <cmath>

namespace depmatch {

GraphSignature::GraphSignature(const DependencyGraph& graph) : n_(graph.size()) {
  entropies_.reserve(n_);
  for (size_t i = 0; i < n_; ++i) entropies_.push_back(graph.entropy(i));
  size_t length = profile_length();
  desc_.resize(n_ * length);
  asc_.resize(n_ * length);
  for (size_t i = 0; i < n_; ++i) {
    double* row = desc_.data() + i * length;
    size_t filled = 0;
    for (size_t j = 0; j < n_; ++j) {
      if (j == i) continue;
      row[filled++] = graph.mi(i, j);
    }
    // Descending, exactly as SortedOffDiagonal in candidate_ranking.cc
    // (sort on reverse iterators), so equal-value orderings match too.
    std::sort(std::make_reverse_iterator(row + length),
              std::make_reverse_iterator(row));
    double* ascending = asc_.data() + i * length;
    std::reverse_copy(row, row + length, ascending);
  }
}

GraphSignature GraphSignature::FromParts(std::vector<double> entropies,
                                         std::vector<double> desc) {
  GraphSignature signature;
  signature.n_ = entropies.size();
  signature.entropies_ = std::move(entropies);
  signature.desc_ = std::move(desc);
  size_t length = signature.profile_length();
  signature.asc_.resize(signature.n_ * length);
  for (size_t i = 0; i < signature.n_; ++i) {
    // The constructor derives each ascending row by reverse-copying the
    // descending one, so reversing here reproduces it bit-for-bit —
    // including the ordering of equal values.
    const double* row = signature.desc_.data() + i * length;
    std::reverse_copy(row, row + length,
                      signature.asc_.data() + i * length);
  }
  return signature;
}

double MiProfileSimilarity(const GraphSignature& a, size_t s,
                           const GraphSignature& b, size_t t) {
  size_t la = a.profile_length();
  size_t lb = b.profile_length();
  const double* pa = a.ProfileDesc(s);
  const double* pb = b.ProfileDesc(t);
  size_t length = std::max(la, lb);
  double difference = 0.0;
  double mass = 0.0;
  for (size_t i = 0; i < length; ++i) {
    double x = i < la ? pa[i] : 0.0;
    double y = i < lb ? pb[i] : 0.0;
    difference += std::fabs(x - y);
    mass += x + y;
  }
  if (mass <= 0.0) return 1.0;
  return 1.0 - difference / mass;
}

}  // namespace depmatch
