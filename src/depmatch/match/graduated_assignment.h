// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Graduated assignment graph matching (Gold & Rangarajan, IEEE TPAMI 1996),
// the approximate matcher the paper cites as the natural replacement for
// its exhaustive search on large schemas.
//
// The algorithm maximizes the quadratic assignment objective
//   E(M) = sum_{s,t} sum_{s',t'} M[s][t] * M[s'][t'] * C(s,t,s',t')
// over doubly-stochastic soft-assignment matrices M by deterministic
// annealing (softmax with rising beta) interleaved with Sinkhorn
// row/column normalization, then rounds the converged soft assignment to a
// hard injective mapping.
//
// Pair compatibilities C come from the configured metric: normal-metric
// terms directly (they are maximized), Euclidean terms negated. A slack
// row/column absorbs unmatched nodes, which is how onto and partial
// cardinalities are expressed.

#ifndef DEPMATCH_MATCH_GRADUATED_ASSIGNMENT_H_
#define DEPMATCH_MATCH_GRADUATED_ASSIGNMENT_H_

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"

namespace depmatch {

struct GraduatedAssignmentParams {
  double beta_initial = 0.5;
  double beta_final = 200.0;
  double beta_rate = 1.5;
  // Relaxation sweeps per temperature.
  int iterations_per_beta = 4;
  // Sinkhorn normalization sweeps per relaxation step.
  int sinkhorn_iterations = 30;
};

// Same contract as ExhaustiveMatch, computed approximately. The
// candidate filter restricts which cells of M may become nonzero.
// Deterministic for fixed inputs.
Result<MatchResult> GraduatedAssignmentMatch(
    const DependencyGraph& source, const DependencyGraph& target,
    const MatchOptions& options,
    const GraduatedAssignmentParams& params = {});

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_GRADUATED_ASSIGNMENT_H_
