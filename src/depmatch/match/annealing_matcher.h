// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Simulated-annealing matcher: a second approximate search (besides
// graduated assignment) that handles the full quadratic objective of the
// structural metrics. Useful when schemas are too wide for the exhaustive
// branch-and-bound and graduated assignment's continuous relaxation
// struggles (e.g. many near-tied compatibilities).
//
// Moves:
//   * reassign: map a source to a currently free target
//   * swap:     exchange the targets of two matched sources
//   * drop:     unmatch a source               (kPartial only)
// Acceptance follows Metropolis with a geometric cooling schedule. The
// matcher is deterministic for a fixed options.seed.

#ifndef DEPMATCH_MATCH_ANNEALING_MATCHER_H_
#define DEPMATCH_MATCH_ANNEALING_MATCHER_H_

#include <cstdint>

#include "depmatch/common/status.h"
#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"

namespace depmatch {

struct AnnealingParams {
  double initial_temperature = 2.0;
  double final_temperature = 1e-3;
  double cooling_rate = 0.95;
  // Proposed moves per temperature step, as a multiple of source size.
  size_t moves_per_node = 40;
  uint64_t seed = 9;
  // Independent annealing runs seeded seed, seed+1, ..., run across
  // options.num_threads workers. The winner is chosen by (score, seed):
  // strictly better score first, earlier seed on ties — so the result is
  // bit-identical at any thread count. Restart 0 reproduces the
  // single-restart trajectory exactly.
  size_t num_restarts = 1;
};

// Same contract as ExhaustiveMatch, computed by simulated annealing.
// Starts from the greedy solution and never returns something worse than
// its starting point.
Result<MatchResult> AnnealingMatch(const DependencyGraph& source,
                                   const DependencyGraph& target,
                                   const MatchOptions& options,
                                   const AnnealingParams& params = {});

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_ANNEALING_MATCHER_H_
