#include "depmatch/match/interpreted_matcher.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/match/hungarian_matcher.h"

namespace depmatch {
namespace {

// Solves the maximization assignment over a similarity matrix, honoring
// the cardinality constraint. For kPartial, each source gets a private
// dummy column worth `threshold`, so pairs are proposed only when their
// similarity strictly exceeds it.
Result<MatchResult> AssignBySimilarity(
    const std::vector<std::vector<double>>& similarity, size_t m,
    Cardinality cardinality, double threshold) {
  size_t n = similarity.size();
  MatchResult result;
  if (n == 0) return result;
  if (cardinality == Cardinality::kOneToOne && n != m) {
    return InvalidArgumentError(
        StrFormat("one-to-one mapping requires equal sizes (%zu vs %zu)", n,
                  m));
  }
  if (cardinality == Cardinality::kOnto && n > m) {
    return InvalidArgumentError(StrFormat(
        "onto mapping requires source size <= target size (%zu vs %zu)", n,
        m));
  }
  bool partial = cardinality == Cardinality::kPartial;
  size_t columns = partial ? m + n : m;
  std::vector<std::vector<double>> cost(
      n, std::vector<double>(columns, kUnusableCost));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < m; ++t) {
      cost[s][t] = -similarity[s][t];
    }
    if (partial) cost[s][m + s] = -threshold;
  }
  Result<std::vector<size_t>> assignment = SolveAssignment(cost);
  if (!assignment.ok()) return assignment.status();
  double total = 0.0;
  for (size_t s = 0; s < n; ++s) {
    size_t t = (*assignment)[s];
    if (t >= m) continue;  // below threshold: unmatched
    result.pairs.push_back({s, t});
    total += similarity[s][t];
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = total;
  return result;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// Similarity of two MI row profiles compared order-invariantly (sorted
// descending), so the score does not depend on node numbering — it stays
// un-interpreted and usable before any mapping is known.
double ProfileSimilarity(std::vector<double> a, std::vector<double> b) {
  std::sort(a.rbegin(), a.rend());
  std::sort(b.rbegin(), b.rend());
  size_t len = std::max(a.size(), b.size());
  a.resize(len, 0.0);
  b.resize(len, 0.0);
  double diff = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < len; ++i) {
    diff += std::abs(a[i] - b[i]);
    total += a[i] + b[i];
  }
  if (total <= 0.0) return 1.0;  // two all-zero profiles match perfectly
  return 1.0 - diff / total;
}

}  // namespace

double NameSimilarity(std::string_view a, std::string_view b) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (la.empty() && lb.empty()) return 1.0;
  // Levenshtein distance, two-row dynamic program.
  size_t n = la.size();
  size_t m = lb.size();
  std::vector<size_t> previous(m + 1);
  std::vector<size_t> current(m + 1);
  for (size_t j = 0; j <= m; ++j) previous[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    current[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t substitution = previous[j - 1] + (la[i - 1] != lb[j - 1]);
      current[j] =
          std::min({previous[j] + 1, current[j - 1] + 1, substitution});
    }
    std::swap(previous, current);
  }
  double distance = static_cast<double>(previous[m]);
  double longest = static_cast<double>(std::max(n, m));
  return 1.0 - distance / longest;
}

double ValueOverlapSimilarity(const Column& a, const Column& b) {
  if (a.distinct_count() == 0 || b.distinct_count() == 0) return 0.0;
  const Column& small = a.distinct_count() <= b.distinct_count() ? a : b;
  const Column& large = a.distinct_count() <= b.distinct_count() ? b : a;
  size_t shared = 0;
  for (const Value& v : small.dictionary()) {
    if (large.LookupCode(v) != Column::kNullCode) ++shared;
  }
  size_t united = a.distinct_count() + b.distinct_count() - shared;
  return static_cast<double>(shared) / static_cast<double>(united);
}

Result<MatchResult> NameBasedMatch(const Table& source, const Table& target,
                                   const InterpretedMatchOptions& options) {
  size_t n = source.num_attributes();
  size_t m = target.num_attributes();
  std::vector<std::vector<double>> similarity(n, std::vector<double>(m));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < m; ++t) {
      similarity[s][t] = NameSimilarity(source.schema().attribute(s).name,
                                        target.schema().attribute(t).name);
    }
  }
  return AssignBySimilarity(similarity, m, options.cardinality,
                            options.min_similarity);
}

Result<MatchResult> ValueOverlapMatch(
    const Table& source, const Table& target,
    const InterpretedMatchOptions& options) {
  size_t n = source.num_attributes();
  size_t m = target.num_attributes();
  std::vector<std::vector<double>> similarity(n, std::vector<double>(m));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < m; ++t) {
      similarity[s][t] =
          ValueOverlapSimilarity(source.column(s), target.column(t));
    }
  }
  return AssignBySimilarity(similarity, m, options.cardinality,
                            options.min_similarity);
}

Result<MatchResult> HybridMatch(const Table& source, const Table& target,
                                const HybridMatchOptions& options) {
  if (options.name_weight < 0.0 || options.name_weight > 1.0) {
    return InvalidArgumentError("name_weight must be in [0, 1]");
  }
  Result<DependencyGraph> source_graph = BuildDependencyGraph(source);
  if (!source_graph.ok()) return source_graph.status();
  Result<DependencyGraph> target_graph = BuildDependencyGraph(target);
  if (!target_graph.ok()) return target_graph.status();

  size_t n = source_graph->size();
  size_t m = target_graph->size();
  std::vector<std::vector<double>> similarity(n, std::vector<double>(m));
  for (size_t s = 0; s < n; ++s) {
    std::vector<double> profile_s;
    for (size_t j = 0; j < n; ++j) profile_s.push_back(source_graph->mi(s, j));
    for (size_t t = 0; t < m; ++t) {
      std::vector<double> profile_t;
      for (size_t j = 0; j < m; ++j) {
        profile_t.push_back(target_graph->mi(t, j));
      }
      double structure = ProfileSimilarity(profile_s, profile_t);
      double name = NameSimilarity(source_graph->name(s),
                                   target_graph->name(t));
      similarity[s][t] = options.name_weight * name +
                         (1.0 - options.name_weight) * structure;
    }
  }
  // Threshold for partial: a combined similarity below 0.5 is noise.
  return AssignBySimilarity(similarity, m, options.match.cardinality, 0.5);
}

}  // namespace depmatch
