#include "depmatch/match/matcher.h"

#include <algorithm>
#include <unordered_set>

#include "depmatch/common/string_util.h"
#include "depmatch/match/exhaustive_matcher.h"
#include "depmatch/match/annealing_matcher.h"
#include "depmatch/match/graduated_assignment.h"
#include "depmatch/match/greedy_matcher.h"
#include "depmatch/match/hungarian_matcher.h"
#include "depmatch/match/metric.h"

namespace depmatch {
namespace {

Result<MatchResult> Dispatch(const DependencyGraph& source,
                             const DependencyGraph& target,
                             const MatchOptions& options) {
  switch (options.algorithm) {
    case MatchAlgorithm::kExhaustive:
      return ExhaustiveMatch(source, target, options);
    case MatchAlgorithm::kGreedy:
      return GreedyMatch(source, target, options);
    case MatchAlgorithm::kGraduatedAssignment:
      return GraduatedAssignmentMatch(source, target, options);
    case MatchAlgorithm::kHungarian:
      return HungarianMatch(source, target, options);
    case MatchAlgorithm::kSimulatedAnnealing:
      return AnnealingMatch(source, target, options);
  }
  return InternalError("unknown match algorithm");
}

}  // namespace

Result<MatchResult> MatchGraphs(const DependencyGraph& source,
                                const DependencyGraph& target,
                                const MatchOptions& options) {
  MatchOptions opts = options;
  while (true) {
    Result<MatchResult> result = Dispatch(source, target, opts);
    if (result.ok() ||
        result.status().code() != StatusCode::kNotFound ||
        opts.cardinality == Cardinality::kPartial ||
        opts.candidates_per_attribute == 0) {
      return result;
    }
    // The filter admitted no complete assignment: widen and retry.
    size_t widened = opts.candidates_per_attribute * 2;
    opts.candidates_per_attribute =
        (widened >= target.size()) ? 0 : widened;
  }
}

Result<double> ScoreMapping(const DependencyGraph& source,
                            const DependencyGraph& target,
                            const std::vector<MatchPair>& pairs,
                            MetricKind metric, double alpha) {
  std::unordered_set<size_t> sources;
  std::unordered_set<size_t> targets;
  for (const MatchPair& pair : pairs) {
    if (pair.source >= source.size()) {
      return OutOfRangeError(
          StrFormat("source index %zu out of range", pair.source));
    }
    if (pair.target >= target.size()) {
      return OutOfRangeError(
          StrFormat("target index %zu out of range", pair.target));
    }
    if (!sources.insert(pair.source).second) {
      return InvalidArgumentError(
          StrFormat("source %zu mapped twice", pair.source));
    }
    if (!targets.insert(pair.target).second) {
      return InvalidArgumentError(
          StrFormat("target %zu mapped twice", pair.target));
    }
  }
  Metric m(metric, alpha);
  return m.Evaluate(source, target, pairs);
}

}  // namespace depmatch
