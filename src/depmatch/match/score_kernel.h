// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// ScoreKernel: the shared match-kernel layer behind every search backend
// (exhaustive, greedy, annealing, graduated assignment).
//
// The kernel copies both dependency graphs' MI matrices into flat
// contiguous row-major buffers and hoists the metric kind out of every
// inner loop (the per-term switch in Metric::Term is resolved once per
// kernel call, not once per term). For the structural (MI) metrics it can
// additionally precompute the pair-term table
//
//   pair_terms[(s*m + t) * (n*m) + (s2*m + t2)] = Term(a.mi(s,s2),
//                                                      b.mi(t,t2))
//
// so the hot loops of annealing and graduated assignment replace a
// fabs+divide per term with one load. The table is built only when
// (n*m)^2 fits the entry budget; the fallback computes terms on the fly
// from the flat rows. Both paths produce bit-identical doubles (the table
// stores exactly the doubles Term() returns), so the budget is a pure
// performance knob: changing it can never change a matching result.
//
// All sums are accumulated in exactly the same term order as the seed
// implementation (Metric::IncrementalGain / Metric::EvaluateSum), so
// every kernel result is bit-identical to the historical path —
// bench_match_search asserts this against faithful seed replicas.

#ifndef DEPMATCH_MATCH_SCORE_KERNEL_H_
#define DEPMATCH_MATCH_SCORE_KERNEL_H_

#include <cstddef>
#include <vector>

#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"
#include "depmatch/match/metric.h"

namespace depmatch {

// Default budget for the precomputed pair-term table, in table entries
// ((n*m)^2 doubles). 2^23 entries = 64 MiB, shared read-only across
// workers; covers schema pairs up to n*m <= 2896 (e.g. 50x50).
inline constexpr size_t kDefaultPairTermBudget = size_t{1} << 23;

class ScoreKernel {
 public:
  // `pair_term_budget` caps the precomputed table (0 disables it; the
  // element-wise metrics never build one).
  ScoreKernel(const DependencyGraph& a, const DependencyGraph& b,
              const Metric& metric,
              size_t pair_term_budget = kDefaultPairTermBudget);

  size_t source_size() const { return n_; }
  size_t target_size() const { return m_; }
  const Metric& metric() const { return metric_; }
  bool maximize() const { return maximize_; }
  bool structural() const { return structural_; }
  bool has_pair_term_table() const { return !pair_terms_.empty(); }

  // == metric().Term(x, y), with the kind resolved here instead of per
  // call site in a loop.
  double Term(double x, double y) const;

  // Term(a.mi(s, s2), b.mi(t, t2)), served from the table when present.
  double PairTerm(size_t s, size_t t, size_t s2, size_t t2) const;

  // Incremental contribution of appending (s -> t) to the partial
  // assignment `assigned` (which must not contain s or t). Iterates
  // `assigned` in the given order; bit-identical to
  // Metric::IncrementalGain over the same sequence. Allocation-free,
  // O(count).
  double GainOf(const MatchPair* assigned, size_t count, size_t s,
                size_t t) const;

  // Like GainOf, but skips entries whose source equals `s` (the
  // contribution of s -> t measured against the assignment minus s).
  double GainOfExcluding(const MatchPair* assigned, size_t count, size_t s,
                         size_t t) const;

  // == Metric::EvaluateSum / Metric::Evaluate (bit-identical).
  double EvaluateSum(const std::vector<MatchPair>& pairs) const;
  double Evaluate(const std::vector<MatchPair>& pairs) const;

  // Graduated-assignment gradient entry Q[s][t]: the node compatibility
  // of (s, t) plus, for structural metrics, twice the soft-weighted pair
  // compatibilities against `soft`, a row-major matrix with `stride`
  // doubles per row (cells with soft <= 0 are skipped, which is exactly
  // the seed's allowed-cell mask: disallowed cells stay at 0).
  // Compatibilities are maximize-oriented (Euclidean terms negated).
  double SoftGradient(const double* soft, size_t stride, size_t s,
                      size_t t) const;

 private:
  template <bool kEuclidean>
  double GainOfImpl(const MatchPair* assigned, size_t count, size_t s,
                    size_t t, bool exclude_s) const;
  template <bool kEuclidean>
  double EvaluateSumImpl(const std::vector<MatchPair>& pairs) const;
  template <bool kEuclidean>
  double SoftGradientImpl(const double* soft, size_t stride, size_t s,
                          size_t t) const;

  size_t n_ = 0;
  size_t m_ = 0;
  Metric metric_;
  bool maximize_ = false;
  bool structural_ = false;
  bool euclidean_ = false;
  double alpha_ = 0.0;
  std::vector<double> a_flat_;      // n x n, row-major
  std::vector<double> b_flat_;      // m x m, row-major
  std::vector<double> pair_terms_;  // (n*m) x (n*m) or empty
};

// Mutable assignment state over a ScoreKernel with allocation-free
// O(assigned) delta updates: Assign/Unassign maintain the running
// objective sum incrementally. Assigned pairs are kept sorted by source,
// so delta sums accumulate in ascending source order — the same order the
// seed annealing State used, making trajectories bit-identical.
class ScoreState {
 public:
  static constexpr size_t kUnassigned = static_cast<size_t>(-1);

  explicit ScoreState(const ScoreKernel& kernel);

  // Back to the empty assignment (no deallocation).
  void Reset();

  size_t target_of(size_t s) const { return target_of_[s]; }
  // Source currently mapped to t, or kUnassigned. O(1): the inverse map
  // is maintained, not scanned.
  size_t source_of(size_t t) const { return source_of_[t]; }
  bool target_used(size_t t) const {
    return source_of_[t] != kUnassigned;
  }
  size_t assigned_count() const { return assigned_.size(); }
  double sum() const { return sum_; }

  // Contribution of assigning s -> t given the current assignment minus
  // s. Allocation-free.
  double GainOf(size_t s, size_t t) const;

  // Preconditions: s unassigned and t free (Assign); s assigned
  // (Unassign).
  void Assign(size_t s, size_t t);
  void Unassign(size_t s);

  // Replaces *out with the current pairs, sorted by source. Reuses the
  // vector's capacity.
  void AppendPairs(std::vector<MatchPair>* out) const;

 private:
  const ScoreKernel& kernel_;
  std::vector<size_t> target_of_;    // size n
  std::vector<size_t> source_of_;    // size m
  std::vector<MatchPair> assigned_;  // sorted by source; capacity n
  double sum_ = 0.0;
};

}  // namespace depmatch

#endif  // DEPMATCH_MATCH_SCORE_KERNEL_H_
