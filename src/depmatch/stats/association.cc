#include "depmatch/stats/association.h"

#include <algorithm>
#include <cmath>

#include "depmatch/stats/joint_kernel.h"
#include "depmatch/stats/joint_sketch.h"

namespace depmatch {
namespace {

// Marginal slot vectors and supports for a counted pair, from the kernel's
// per-pair marginals when present, otherwise from the column marginals.
struct PairMarginals {
  std::vector<uint64_t> x_slots;
  std::vector<uint64_t> y_slots;
  size_t support_x = 0;
  size_t support_y = 0;
};

PairMarginals MarginalsFor(const JointCounts& joint, const Column& x,
                           const Column& y, NullPolicy policy) {
  PairMarginals m;
  if (joint.has_marginals) {
    m.x_slots = joint.x_marginals;
    m.y_slots = joint.y_marginals;
  } else {
    m.x_slots = ComputeColumnMarginal(x, policy).slots;
    m.y_slots = ComputeColumnMarginal(y, policy).slots;
  }
  m.support_x = SupportFromSlots(m.x_slots);
  m.support_y = SupportFromSlots(m.y_slots);
  return m;
}

}  // namespace

double ChiSquareStatistic(const Column& x, const Column& y,
                          const StatsOptions& options) {
  // chi^2 = N * (sum over observed cells of o^2 / (row * col) - 1).
  // Summing only observed cells is exact: unobserved cells contribute
  // (0 - e)^2 / e = e, and the sum of all expected values is N, so
  //   chi^2 = sum_observed (o - e)^2 / e + (N - sum_observed e)
  //         = sum_observed (o^2/e - 2o + e) + N - sum_observed e
  //         = sum_observed o^2/e - 2N + N = sum_observed o^2/e - N.
  // The fold itself lives in ChiSquareFromCounts (joint_kernel.h).
  if (UseSketch(x, y, options)) {
    JointSketchKernel kernel;
    return kernel.Estimate(x, y, options).chi_square;
  }
  JointCountKernel kernel;
  const JointCounts& joint = kernel.Count(x, y, options);
  if (joint.total == 0) return 0.0;
  PairMarginals m = MarginalsFor(joint, x, y, options.null_policy);
  return ChiSquareFromCounts(joint, m.x_slots, m.y_slots);
}

double CramersV(const Column& x, const Column& y,
                const StatsOptions& options) {
  if (UseSketch(x, y, options)) {
    JointSketchKernel kernel;
    const SketchedJoint& sketched = kernel.Estimate(x, y, options);
    if (sketched.total == 0) return 0.0;
    NullPolicy policy = options.null_policy;
    size_t support_x =
        sketched.has_marginals
            ? SupportFromSlots(sketched.x_marginals)
            : ComputeColumnMarginal(x, policy).support;
    size_t support_y =
        sketched.has_marginals
            ? SupportFromSlots(sketched.y_marginals)
            : ComputeColumnMarginal(y, policy).support;
    if (support_x < 2 || support_y < 2) return 0.0;
    double denom = static_cast<double>(sketched.total) *
                   static_cast<double>(std::min(support_x, support_y) - 1);
    return std::min(std::sqrt(sketched.chi_square / denom), 1.0);
  }
  // One counting pass serves both the chi-square fold and the level
  // counts.
  JointCountKernel kernel;
  const JointCounts& joint = kernel.Count(x, y, options);
  if (joint.total == 0) return 0.0;
  PairMarginals m = MarginalsFor(joint, x, y, options.null_policy);
  if (m.support_x < 2 || m.support_y < 2) return 0.0;
  double chi2 = ChiSquareFromCounts(joint, m.x_slots, m.y_slots);
  double denom = static_cast<double>(joint.total) *
                 static_cast<double>(std::min(m.support_x, m.support_y) - 1);
  double v = std::sqrt(chi2 / denom);
  return std::min(v, 1.0);
}

}  // namespace depmatch
