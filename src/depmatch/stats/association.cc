#include "depmatch/stats/association.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace depmatch {

double ChiSquareStatistic(const Column& x, const Column& y,
                          const StatsOptions& options) {
  JointHistogram joint =
      JointHistogram::FromColumns(x, y, options.null_policy);
  uint64_t total = joint.total();
  if (total == 0) return 0.0;
  double n = static_cast<double>(total);

  // chi^2 = N * (sum over observed cells of o^2 / (row * col) - 1).
  // Summing only observed cells is exact: unobserved cells contribute
  // (0 - e)^2 / e = e, and the sum of all expected values is N, so
  //   chi^2 = sum_observed (o - e)^2 / e + (N - sum_observed e)
  //         = sum_observed (o^2/e - 2o + e) + N - sum_observed e
  //         = sum_observed o^2/e - 2N + N = sum_observed o^2/e - N.
  double sum = 0.0;
  for (const auto& [key, count] : joint.cells()) {
    int32_t x_code = static_cast<int32_t>(
        static_cast<uint32_t>(key >> 32)) - 1;
    int32_t y_code = static_cast<int32_t>(
        static_cast<uint32_t>(key & 0xffffffffULL)) - 1;
    double row = static_cast<double>(joint.x_counts().at(x_code));
    double col = static_cast<double>(joint.y_counts().at(y_code));
    double observed = static_cast<double>(count);
    double expected = row * col / n;
    sum += observed * observed / expected;
  }
  double chi2 = sum - n;
  return chi2 < 0.0 ? 0.0 : chi2;
}

double CramersV(const Column& x, const Column& y,
                const StatsOptions& options) {
  JointHistogram joint =
      JointHistogram::FromColumns(x, y, options.null_policy);
  uint64_t total = joint.total();
  if (total == 0) return 0.0;
  size_t levels_x = joint.x_counts().size();
  size_t levels_y = joint.y_counts().size();
  if (levels_x < 2 || levels_y < 2) return 0.0;
  double chi2 = ChiSquareStatistic(x, y, options);
  double denom = static_cast<double>(total) *
                 static_cast<double>(std::min(levels_x, levels_y) - 1);
  double v = std::sqrt(chi2 / denom);
  return std::min(v, 1.0);
}

}  // namespace depmatch
