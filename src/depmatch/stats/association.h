// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Alternative un-interpreted dependency measures.
//
// The paper's conclusion lists "evaluate other dependency models using
// different un-interpreted methods" as future work. Any statistic that is
// a function of the joint value distribution alone qualifies; this module
// provides the two classical candidates next to mutual information:
//
//   * Cramér's V — chi-square association normalized to [0, 1]:
//       V = sqrt( (chi^2 / N) / min(|X|-1, |Y|-1) )
//   * Normalized mutual information (from stats/entropy.h)
//
// Both can drive the dependency graph via DependencyMeasure (see
// graph/graph_builder.h); bench_ablation_measures compares matching
// accuracy across measures.

#ifndef DEPMATCH_STATS_ASSOCIATION_H_
#define DEPMATCH_STATS_ASSOCIATION_H_

#include "depmatch/stats/entropy.h"
#include "depmatch/stats/histogram.h"
#include "depmatch/table/column.h"

namespace depmatch {

// Pearson's chi-square statistic of the joint distribution of (x, y).
// 0 for independent columns; grows with association and sample size.
// Precondition: x.size() == y.size().
double ChiSquareStatistic(const Column& x, const Column& y,
                          const StatsOptions& options = {});

// Cramér's V in [0, 1]; 0 = independent, 1 = perfect association.
// Columns with fewer than two distinct observed symbols yield 0.
// Precondition: x.size() == y.size().
double CramersV(const Column& x, const Column& y,
                const StatsOptions& options = {});

}  // namespace depmatch

#endif  // DEPMATCH_STATS_ASSOCIATION_H_
