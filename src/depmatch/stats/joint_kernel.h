// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Pairwise joint-count kernels: the hot path of Table2DepGraph.
//
// Every pairwise statistic (MI, NMI, chi-square / Cramér's V) is a fold
// over the joint count table of two dictionary-encoded columns. This module
// provides two interchangeable counting kernels plus the deterministic
// folds:
//
//   * Dense: a flat (distinct_x + 1) x (distinct_y + 1) count matrix, one
//     array increment per row. Chosen when the matrix fits the configured
//     cell budget (StatsOptions::dense_cell_budget). The scratch matrix is
//     kept all-zero between calls and only the touched cells are reset, so
//     per-pair cost is O(rows + k log k) for k distinct pairs, with no
//     per-pair allocation after warm-up.
//   * Sparse: the classic hash-map of packed code pairs, used as fallback
//     for high-cardinality pairs whose product exceeds the budget.
//
// Both kernels emit cells in row-major (x_code, y_code) order with the
// null slot first, so every downstream floating-point fold visits cells in
// the same order regardless of which kernel ran: the two paths are
// bit-identical, which the equivalence tests assert with exact equality.
//
// A JointCountKernel instance owns reusable scratch and is meant to live
// per worker thread (the graph builder allocates O(threads) kernels, not
// O(pairs) hash maps).

#ifndef DEPMATCH_STATS_JOINT_KERNEL_H_
#define DEPMATCH_STATS_JOINT_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "depmatch/stats/histogram.h"
#include "depmatch/table/column.h"

namespace depmatch {

// Marginal distribution of one column in "slot" form: slots[code + 1] is
// the count of dictionary code `code`, slots[0] the null count (0 under
// kDropNulls). Computed once per column and reused across all pairs by the
// graph builder (the marginal cache).
struct ColumnMarginal {
  std::vector<uint64_t> slots;
  uint64_t total = 0;
  // Number of distinct observed symbols (non-zero slots).
  size_t support = 0;
  // H(X) in bits, folded in slot order (codes first, then null) — the same
  // order as EntropyOf, so the two are bit-identical.
  double entropy = 0.0;
};

ColumnMarginal ComputeColumnMarginal(const Column& column, NullPolicy policy);

// A borrowed slot-encoded column: slots[r] = dictionary code + 1, slot 0 =
// null — the storage form of table/encoded_column.h (EncodedColumn slot
// arrays and SelectionCodes), consumed by the kernels directly so cached
// encodings never round-trip through a Column. The storage is owned
// elsewhere and must outlive the kernel call.
struct CodeView {
  const uint32_t* slots = nullptr;
  size_t size = 0;
  // Marginal slot-array length: distinct + 1 (slot 0 = null).
  uint32_t num_slots = 1;
  uint64_t null_count = 0;
};

// Slot-order marginal over a borrowed encoding; bit-identical to the
// Column overload on the equivalent column.
ColumnMarginal ComputeColumnMarginal(const CodeView& codes, NullPolicy policy);

// Result of one pairwise counting pass. Cells are the non-zero entries of
// the joint count table, stored as parallel arrays in row-major
// (x_slot, y_slot) order where slot = code + 1 and slot 0 is null.
struct JointCounts {
  uint64_t total = 0;
  std::vector<uint32_t> cell_x_slots;
  std::vector<uint32_t> cell_y_slots;
  std::vector<uint64_t> cell_counts;
  // Per-pair marginals over the retained rows. Filled only when the
  // retained-row set is pair-dependent (kDropNulls with nulls present);
  // otherwise the pair-invariant ColumnMarginal of each column applies and
  // `has_marginals` is false.
  bool has_marginals = false;
  std::vector<uint64_t> x_marginals;
  std::vector<uint64_t> y_marginals;
  // Which kernel produced this result (observability / tests).
  bool used_dense = false;

  size_t num_cells() const { return cell_counts.size(); }
};

// Reusable two-column counting kernel. Not thread-safe; use one instance
// per worker. Count() returns a reference to internal storage that remains
// valid until the next Count() call.
class JointCountKernel {
 public:
  // True when the dense kernel will be used for (x, y) under `options`.
  // The crossover uses the measured dictionary sizes against the effective
  // cell budget: dense_cell_budget, raised (when auto_dense_budget is on)
  // to min(rows * kDenseAutoCellsPerRow, kDenseAutoMaxCells). Budget 0
  // always forces the sparse path.
  static bool UseDense(const Column& x, const Column& y,
                       const StatsOptions& options);
  static bool UseDense(const CodeView& x, const CodeView& y,
                       const StatsOptions& options);

  // Counts pair frequencies of (x, y) under options.null_policy.
  // Precondition: x.size() == y.size().
  const JointCounts& Count(const Column& x, const Column& y,
                           const StatsOptions& options);
  // Same over borrowed slot encodings; bit-identical to the Column
  // overload on equivalent data. Precondition: x.size == y.size.
  const JointCounts& Count(const CodeView& x, const CodeView& y,
                           const StatsOptions& options);

 private:
  // Counting loops are generic over the per-row slot source (a callable
  // r -> slot) so the Column and CodeView entry points share one body and
  // therefore one accumulation order.
  template <typename SlotOfX, typename SlotOfY>
  void CountDense(SlotOfX x_slot, SlotOfY y_slot, size_t rows, size_t dx1,
                  size_t dy1, NullPolicy policy);
  template <typename SlotOfX, typename SlotOfY>
  void CountSparse(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                   NullPolicy policy);
  void FillMarginals(size_t x_slots, size_t y_slots);

  JointCounts counts_;
  // Dense scratch; invariant: all-zero between Count() calls.
  std::vector<uint64_t> dense_;
  // Flat indices of non-zero dense cells for the current pair.
  std::vector<uint64_t> touched_;
  // Sparse scratch, cleared (capacity kept) between pairs.
  std::unordered_map<uint64_t, uint64_t> sparse_;
  std::vector<uint64_t> sparse_keys_;
};

// Deterministic folds over a counting result. All entropies are in bits
// and use the numerically stable form H = log2(N) - (1/N) sum c*log2(c).
double JointEntropyFromCells(const JointCounts& counts);
double EntropyFromSlots(const std::vector<uint64_t>& slots, uint64_t total);
size_t SupportFromSlots(const std::vector<uint64_t>& slots);

// Pearson chi-square from one counting pass plus the two marginal slot
// vectors (cached or pair-computed; they must cover the retained rows of
// `counts`). Returns 0 for an empty pair.
double ChiSquareFromCounts(const JointCounts& counts,
                           const std::vector<uint64_t>& x_slots,
                           const std::vector<uint64_t>& y_slots);

}  // namespace depmatch

#endif  // DEPMATCH_STATS_JOINT_KERNEL_H_
