// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Pairwise joint-count kernels: the hot path of Table2DepGraph.
//
// Every pairwise statistic (MI, NMI, chi-square / Cramér's V) is a fold
// over the joint count table of two dictionary-encoded columns. This module
// provides two interchangeable counting kernels plus the deterministic
// folds:
//
//   * Dense: chosen when the (distinct_x + 1) x (distinct_y + 1) matrix
//     fits the effective cell budget (the authoritative crossover rule
//     lives in histogram.h). Three SIMD-friendly strategies, selected by
//     matrix shape under JointKernelDispatch::kAuto:
//       - lane-split: for matrices no bigger than the row count, the row
//         loop is unrolled over independent per-lane sub-histograms that
//         are merged (and re-zeroed) in one vectorizable pass per pair,
//         breaking the store-to-load dependency chains skewed data causes
//         in a single histogram;
//       - touched-scatter: mid-size matrices keep the classic one
//         increment per row into a flat matrix, compacting and resetting
//         only the touched cells;
//       - sort-based: matrices past the cache-friendly range are counted
//         by packing each row into a flat cell index, radix-sorting the
//         packed keys, and run-length encoding — pure streaming passes,
//         and the matrix itself is never allocated.
//   * Sparse: fallback for pairs whose product exceeds the budget. Under
//     kAuto this also runs the radix-sort strategy (on 64-bit packed
//     keys); kScalar keeps the classic hash map of packed code pairs.
//
// All kernels and strategies emit cells in row-major (x_code, y_code)
// order with the null slot first, so every downstream floating-point fold
// visits cells in the same order regardless of which path ran: counts are
// integers and the fold order is canonical, so every path is bit-identical
// to every other, which the equivalence tests assert with exact equality.
// JointKernelDispatch::kScalar pins the legacy single-lane loops as the
// reference implementation for those tests.
//
// A JointCountKernel instance owns reusable scratch and is meant to live
// per worker thread (the graph builder allocates O(threads) kernels, not
// O(pairs) hash maps).
//
// The opt-in approximate tier for over-budget pairs (StatsOptions::
// sketch_mode) lives in joint_sketch.h; this file is exact-only.

#ifndef DEPMATCH_STATS_JOINT_KERNEL_H_
#define DEPMATCH_STATS_JOINT_KERNEL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "depmatch/stats/histogram.h"
#include "depmatch/table/column.h"

namespace depmatch {

// Marginal distribution of one column in "slot" form: slots[code + 1] is
// the count of dictionary code `code`, slots[0] the null count (0 under
// kDropNulls). Computed once per column and reused across all pairs by the
// graph builder (the marginal cache).
struct ColumnMarginal {
  std::vector<uint64_t> slots;
  uint64_t total = 0;
  // Number of distinct observed symbols (non-zero slots).
  size_t support = 0;
  // H(X) in bits, folded in slot order (codes first, then null) — the same
  // order as EntropyOf, so the two are bit-identical.
  double entropy = 0.0;
};

ColumnMarginal ComputeColumnMarginal(const Column& column, NullPolicy policy);

// A borrowed slot-encoded column: slots[r] = dictionary code + 1, slot 0 =
// null — the storage form of table/encoded_column.h (EncodedColumn slot
// arrays and SelectionCodes), consumed by the kernels directly so cached
// encodings never round-trip through a Column. The storage is owned
// elsewhere and must outlive the kernel call.
struct CodeView {
  const uint32_t* slots = nullptr;
  size_t size = 0;
  // Marginal slot-array length: distinct + 1 (slot 0 = null).
  uint32_t num_slots = 1;
  uint64_t null_count = 0;
};

// Slot-order marginal over a borrowed encoding; bit-identical to the
// Column overload on the equivalent column.
ColumnMarginal ComputeColumnMarginal(const CodeView& codes, NullPolicy policy);

// Result of one pairwise counting pass. Cells are the non-zero entries of
// the joint count table, stored as parallel arrays in row-major
// (x_slot, y_slot) order where slot = code + 1 and slot 0 is null.
struct JointCounts {
  uint64_t total = 0;
  std::vector<uint32_t> cell_x_slots;
  std::vector<uint32_t> cell_y_slots;
  std::vector<uint64_t> cell_counts;
  // Per-pair marginals over the retained rows. Filled only when the
  // retained-row set is pair-dependent (kDropNulls with nulls present);
  // otherwise the pair-invariant ColumnMarginal of each column applies and
  // `has_marginals` is false.
  bool has_marginals = false;
  std::vector<uint64_t> x_marginals;
  std::vector<uint64_t> y_marginals;
  // Which kernel produced this result (observability / tests).
  bool used_dense = false;

  size_t num_cells() const { return cell_counts.size(); }
};

// Reusable two-column counting kernel. Not thread-safe; use one instance
// per worker. Count() returns a reference to internal storage that remains
// valid until the next Count() call.
class JointCountKernel {
 public:
  // True when the dense kernel will be used for (x, y) under `options`.
  // The crossover uses the measured dictionary sizes against the effective
  // cell budget: dense_cell_budget, raised (when auto_dense_budget is on)
  // to min(rows * kDenseAutoCellsPerRow, kDenseAutoMaxCells). Budget 0
  // always forces the sparse path.
  static bool UseDense(const Column& x, const Column& y,
                       const StatsOptions& options);
  static bool UseDense(const CodeView& x, const CodeView& y,
                       const StatsOptions& options);

  // Counts pair frequencies of (x, y) under options.null_policy.
  // Precondition: x.size() == y.size().
  const JointCounts& Count(const Column& x, const Column& y,
                           const StatsOptions& options);
  // Same over borrowed slot encodings; bit-identical to the Column
  // overload on equivalent data. Precondition: x.size == y.size.
  const JointCounts& Count(const CodeView& x, const CodeView& y,
                           const StatsOptions& options);

 private:
  // Counting loops are generic over the per-row slot source (a callable
  // r -> slot) so the Column and CodeView entry points share one body and
  // therefore one accumulation order. CountDense/CountSparse pick a
  // strategy (below) from the matrix shape and options.dispatch; every
  // strategy emits the same canonical cells.
  template <typename SlotOfX, typename SlotOfY>
  void CountDense(SlotOfX x_slot, SlotOfY y_slot, size_t rows, size_t dx1,
                  size_t dy1, const StatsOptions& options);
  template <typename SlotOfX, typename SlotOfY>
  void CountSparse(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                   const StatsOptions& options);

  // Dense strategies. Scan = branch-free increments + whole-matrix
  // compaction scan (cells <= rows); Lanes = the same shape with the row
  // loop split over independent sub-histograms merged once; Touched =
  // scatter with touched-cell tracking; Sorted = pack/radix-sort/RLE with
  // no matrix at all.
  template <typename SlotOfX, typename SlotOfY>
  void CountDenseScan(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                      size_t dy1, size_t cells, bool drop);
  template <typename SlotOfX, typename SlotOfY>
  void CountDenseLanes(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                       size_t dy1, size_t cells, bool drop);
  template <typename SlotOfX, typename SlotOfY>
  void CountDenseTouched(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                         size_t dy1, bool drop);
  template <typename SlotOfX, typename SlotOfY>
  void CountDenseSorted(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                        size_t dy1, bool drop);

  // Sparse strategies: the classic hash map (kScalar) and the radix sort
  // over 64-bit packed (x_slot << 32 | y_slot) keys (kAuto).
  template <typename SlotOfX, typename SlotOfY>
  void CountSparseHash(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                       bool drop);
  template <typename SlotOfX, typename SlotOfY>
  void CountSparsePacked(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                         bool drop);

  // Ascending radix sort of keys_ (LSD, byte digits, ping-pong via
  // keys_tmp_); sorts only the bytes covered by max_key.
  void RadixSortKeys(uint64_t max_key);

  void FillMarginals(size_t x_slots, size_t y_slots);

  JointCounts counts_;
  // Dense scratch; invariant: all-zero between Count() calls.
  std::vector<uint64_t> dense_;
  // Per-lane sub-histograms (kDenseLaneCount * cells uint32 counters);
  // same all-zero invariant.
  std::vector<uint32_t> lanes_;
  // Flat indices of non-zero dense cells for the current pair.
  std::vector<uint64_t> touched_;
  // Packed per-row keys for the sort-based strategies (and radix scratch).
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> keys_tmp_;
  // Sparse scratch, cleared (capacity kept) between pairs.
  std::unordered_map<uint64_t, uint64_t> sparse_;
  std::vector<uint64_t> sparse_keys_;
};

// Deterministic folds over a counting result. All entropies are in bits
// and use the numerically stable form H = log2(N) - (1/N) sum c*log2(c).
double JointEntropyFromCells(const JointCounts& counts);
double EntropyFromSlots(const std::vector<uint64_t>& slots, uint64_t total);
size_t SupportFromSlots(const std::vector<uint64_t>& slots);

// The primitives JointEntropyFromCells is built from, exposed so folds
// that stream cells straight out of retained count state
// (stats/count_state.h) reproduce its accumulation bit-for-bit without
// materializing a JointCounts copy. CellWeightTable memoizes the exact
// doubles std::log2 produces for c * log2(c) at small counts (which
// dominate real folds); CellWeight falls back to direct evaluation past
// the table, exactly as the internal fold does.
inline constexpr size_t kCellWeightTableSize = 4096;
const double* CellWeightTable();
inline double CellWeight(const double* table, uint64_t count) {
  if (count < kCellWeightTableSize) return table[count];
  double c = static_cast<double>(count);
  return c * std::log2(c);
}
// H = log2(N) - weighted / N, clamped at 0 (the stable form above).
double EntropyFromWeighted(double weighted, uint64_t total);

// Pearson chi-square from one counting pass plus the two marginal slot
// vectors (cached or pair-computed; they must cover the retained rows of
// `counts`). Returns 0 for an empty pair.
double ChiSquareFromCounts(const JointCounts& counts,
                           const std::vector<uint64_t>& x_slots,
                           const std::vector<uint64_t>& y_slots);

}  // namespace depmatch

#endif  // DEPMATCH_STATS_JOINT_KERNEL_H_
