#include "depmatch/stats/bootstrap.h"

#include <cmath>
#include <vector>

#include "depmatch/common/rng.h"

namespace depmatch {
namespace {

// Resampled copy of `column` at the given row indices.
Column ResampleColumn(const Column& column,
                      const std::vector<size_t>& rows) {
  Column out(column.type());
  for (size_t row : rows) {
    out.Append(column.GetValue(row));
  }
  return out;
}

double StandardDeviation(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

std::vector<size_t> DrawRows(Rng& rng, size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i] = static_cast<size_t>(rng.NextBounded(n));
  }
  return rows;
}

}  // namespace

Result<EstimateWithError> BootstrapEntropy(const Column& x,
                                           const BootstrapOptions& options) {
  if (options.resamples < 2) {
    return InvalidArgumentError("bootstrap needs at least 2 resamples");
  }
  EstimateWithError estimate;
  estimate.value = EntropyOf(x, options.stats);
  if (x.size() == 0) return estimate;

  Rng rng(options.seed);
  std::vector<double> resampled_values;
  resampled_values.reserve(options.resamples);
  for (size_t b = 0; b < options.resamples; ++b) {
    std::vector<size_t> rows = DrawRows(rng, x.size());
    Column resampled = ResampleColumn(x, rows);
    resampled_values.push_back(EntropyOf(resampled, options.stats));
  }
  estimate.standard_error = StandardDeviation(resampled_values);
  return estimate;
}

Result<EstimateWithError> BootstrapMutualInformation(
    const Column& x, const Column& y, const BootstrapOptions& options) {
  if (x.size() != y.size()) {
    return InvalidArgumentError("columns must have equal length");
  }
  if (options.resamples < 2) {
    return InvalidArgumentError("bootstrap needs at least 2 resamples");
  }
  EstimateWithError estimate;
  estimate.value = MutualInformation(x, y, options.stats);
  if (x.size() == 0) return estimate;

  Rng rng(options.seed);
  std::vector<double> resampled_values;
  resampled_values.reserve(options.resamples);
  for (size_t b = 0; b < options.resamples; ++b) {
    std::vector<size_t> rows = DrawRows(rng, x.size());
    Column rx = ResampleColumn(x, rows);
    Column ry = ResampleColumn(y, rows);
    resampled_values.push_back(MutualInformation(rx, ry, options.stats));
  }
  estimate.standard_error = StandardDeviation(resampled_values);
  return estimate;
}

}  // namespace depmatch
