// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Opt-in count-min sketch tier for over-budget column pairs.
//
// Pairs whose (distinct_x + 1) x (distinct_y + 1) matrix fails the dense
// crossover (histogram.h) normally take the exact sparse fallback. With
// StatsOptions::sketch_mode == SketchMode::kCountMin, exactly those pairs
// are instead *estimated* from a count-min sketch of the packed
// (x_slot, y_slot) stream, trading a bounded overcount for O(width*depth)
// memory and two streaming passes over the rows.
//
// Guarantee (Cormode & Muthukrishnan): with width w = ceil(e / epsilon)
// and depth d = ceil(ln(1 / delta)), every point estimate c_hat satisfies
//   c <= c_hat  and  Pr[c_hat > c + epsilon * N] <= delta
// where c is the true pair count and N the number of retained rows. The
// tests assert the deterministic half (c_hat >= c) exactly and the
// epsilon half empirically on adversarial fixtures.
//
// Estimates feed the same plug-in formulas as the exact kernel:
//   H_hat(X,Y) = log2(N) - (1/N) * sum_rows log2(c_hat(row))
//     (equal to sum_cells c * log2(c_hat), folded in row order), and
//   chi2_hat   = N * sum_rows c_hat(row) / (m_x * m_y) - N.
// Marginals stay exact (column histograms are never sketched), so MI_hat =
// H(X) + H(Y) - H_hat(X,Y), clamped to [0, min(H(X), H(Y))] by callers.
//
// Hash functions are fixed multiply-shift constants: estimates are fully
// deterministic, independent of thread count, and stable across runs —
// but NOT equal to the exact path, which is why the tier is opt-in and
// cached under sketch-specific fold tags (see graph_builder.cc).

#ifndef DEPMATCH_STATS_JOINT_SKETCH_H_
#define DEPMATCH_STATS_JOINT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "depmatch/stats/histogram.h"
#include "depmatch/stats/joint_kernel.h"
#include "depmatch/table/column.h"

namespace depmatch {

// Sketch shape derived from the (epsilon, delta) bounds in StatsOptions.
struct SketchParams {
  uint32_t width = 0;   // counters per hash row: ceil(e / epsilon), clamped
  uint32_t depth = 0;   // hash rows: ceil(ln(1 / delta)), clamped
  // The bounds the clamped shape actually delivers (epsilon_bound = e/w,
  // delta_bound = exp(-d)); reported in benches alongside measured error.
  double epsilon_bound = 0.0;
  double delta_bound = 0.0;

  static SketchParams FromBounds(double epsilon, double delta);
};

// Clamp range for the derived shape: at least 16 counters per row, at most
// 2^22 (32 MiB of uint64 counters per row at the extreme), depth 1..8.
inline constexpr uint32_t kSketchMinWidth = 16;
inline constexpr uint32_t kSketchMaxWidth = uint32_t{1} << 22;
inline constexpr uint32_t kSketchMaxDepth = 8;

// True when (x, y) would be estimated rather than counted exactly under
// `options`: the sketch tier is engaged iff it is opted into AND the pair
// fails the dense crossover. This predicate is the single gate callers
// must route through (the lint's sketch-gate rule enforces it).
bool UseSketch(const Column& x, const Column& y, const StatsOptions& options);
bool UseSketch(const CodeView& x, const CodeView& y,
               const StatsOptions& options);

// Result of one sketched estimation pass. Mirrors JointCounts' role for
// the folds the graph builder needs, without per-cell storage.
struct SketchedJoint {
  uint64_t total = 0;          // retained rows N
  double joint_entropy = 0.0;  // H_hat(X,Y), an under-estimate of H(X,Y)
  double chi_square = 0.0;     // chi2_hat, an over-estimate of chi^2
  // Exact per-pair marginals over the retained rows; filled only when the
  // retained-row set is pair-dependent (kDropNulls with nulls present),
  // exactly like JointCounts::has_marginals.
  bool has_marginals = false;
  std::vector<uint64_t> x_marginals;
  std::vector<uint64_t> y_marginals;
  // The shape and bounds this estimate was produced under.
  SketchParams params;
};

// Reusable sketching kernel; one instance per worker, like
// JointCountKernel. Estimate() returns a reference to internal storage
// valid until the next Estimate() call.
class JointSketchKernel {
 public:
  // Estimates the pair over borrowed slot encodings. x_slots/y_slots are
  // the pair-invariant marginal slot vectors of the two columns (used for
  // the chi-square fold when the retained-row set is pair-invariant;
  // under kDropNulls with nulls present the kernel builds and uses exact
  // per-pair marginals instead). Precondition: x.size == y.size.
  const SketchedJoint& Estimate(const CodeView& x, const CodeView& y,
                                const std::vector<uint64_t>& x_slots,
                                const std::vector<uint64_t>& y_slots,
                                const StatsOptions& options);
  // Column convenience overload: computes the marginal slot vectors
  // internally. Bit-identical to the CodeView overload on equivalent data.
  const SketchedJoint& Estimate(const Column& x, const Column& y,
                                const StatsOptions& options);

  // The underlying point-query machinery, exposed for the property tests:
  // Reset, stream keys with Add, then query. EstimateCount is the min
  // over depth rows of the Lemire-reduced multiply-shift buckets.
  void Reset(const SketchParams& params);
  void Add(uint64_t key);
  uint64_t EstimateCount(uint64_t key) const;

 private:
  template <typename SlotOfX, typename SlotOfY>
  void EstimateImpl(SlotOfX x_slot, SlotOfY y_slot, size_t rows,
                    size_t dx1, size_t dy1,
                    const std::vector<uint64_t>& x_slots,
                    const std::vector<uint64_t>& y_slots,
                    const StatsOptions& options);

  SketchedJoint result_;
  SketchParams params_;
  // depth_ rows of width_ uint64 counters, row-major; all-zero outside
  // Reset()..Estimate() (re-zeroed per pair, like the dense scratch).
  std::vector<uint64_t> table_;
  // Packed keys of the retained rows, kept between the two passes.
  std::vector<uint64_t> keys_;
};

}  // namespace depmatch

#endif  // DEPMATCH_STATS_JOINT_SKETCH_H_
