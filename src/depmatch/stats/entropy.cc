#include "depmatch/stats/entropy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace depmatch {
namespace {

inline uint64_t EntryCount(uint64_t count) { return count; }
template <typename K>
uint64_t EntryCount(const std::pair<const K, uint64_t>& entry) {
  return entry.second;
}

// H = log2(N) - (1/N) sum c*log2(c), over nonzero counts summing to N.
template <typename Counts>
double EntropyFromCountRange(const Counts& counts, uint64_t total) {
  if (total == 0) return 0.0;
  double weighted = 0.0;
  for (const auto& entry : counts) {
    uint64_t count = EntryCount(entry);
    if (count == 0) continue;
    double c = static_cast<double>(count);
    weighted += c * std::log2(c);
  }
  double n = static_cast<double>(total);
  double h = std::log2(n) - weighted / n;
  return h < 0.0 ? 0.0 : h;
}

}  // namespace

double EntropyFromCounts(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return EntropyFromCountRange(counts, total);
}

double EntropyOf(const Column& x, const StatsOptions& options) {
  Histogram h = Histogram::FromColumn(x, options.null_policy);
  uint64_t total = h.total();
  if (total == 0) return 0.0;
  double weighted = 0.0;
  for (uint64_t count : h.code_counts()) {
    if (count == 0) continue;
    double c = static_cast<double>(count);
    weighted += c * std::log2(c);
  }
  if (h.null_count() > 0) {
    double c = static_cast<double>(h.null_count());
    weighted += c * std::log2(c);
  }
  double n = static_cast<double>(total);
  double entropy = std::log2(n) - weighted / n;
  return entropy < 0.0 ? 0.0 : entropy;
}

double JointEntropy(const Column& x, const Column& y,
                    const StatsOptions& options) {
  JointHistogram joint =
      JointHistogram::FromColumns(x, y, options.null_policy);
  return EntropyFromCountRange(joint.cells(), joint.total());
}

double MutualInformation(const Column& x, const Column& y,
                         const StatsOptions& options) {
  JointHistogram joint =
      JointHistogram::FromColumns(x, y, options.null_policy);
  uint64_t total = joint.total();
  if (total == 0) return 0.0;
  double hx = EntropyFromCountRange(joint.x_counts(), total);
  double hy = EntropyFromCountRange(joint.y_counts(), total);
  double hxy = EntropyFromCountRange(joint.cells(), total);
  double mi = hx + hy - hxy;
  return mi < 0.0 ? 0.0 : mi;
}

double ConditionalEntropy(const Column& x, const Column& y,
                          const StatsOptions& options) {
  JointHistogram joint =
      JointHistogram::FromColumns(x, y, options.null_policy);
  uint64_t total = joint.total();
  if (total == 0) return 0.0;
  double hy = EntropyFromCountRange(joint.y_counts(), total);
  double hxy = EntropyFromCountRange(joint.cells(), total);
  double cond = hxy - hy;
  return cond < 0.0 ? 0.0 : cond;
}

double NormalizedMutualInformation(const Column& x, const Column& y,
                                   const StatsOptions& options) {
  JointHistogram joint =
      JointHistogram::FromColumns(x, y, options.null_policy);
  uint64_t total = joint.total();
  if (total == 0) return 0.0;
  double hx = EntropyFromCountRange(joint.x_counts(), total);
  double hy = EntropyFromCountRange(joint.y_counts(), total);
  double denom = std::max(hx, hy);
  if (denom <= 0.0) return 0.0;
  double hxy = EntropyFromCountRange(joint.cells(), total);
  double mi = hx + hy - hxy;
  if (mi < 0.0) mi = 0.0;
  double nmi = mi / denom;
  return std::min(nmi, 1.0);
}

}  // namespace depmatch
