#include "depmatch/stats/entropy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "depmatch/stats/joint_kernel.h"
#include "depmatch/stats/joint_sketch.h"

namespace depmatch {
namespace {

// Marginal entropies of a counted pair: from the kernel's per-pair
// marginals when the retained-row set is pair-dependent, otherwise from
// the pair-invariant column marginals.
std::pair<double, double> MarginalEntropies(const JointCounts& joint,
                                            const Column& x, const Column& y,
                                            NullPolicy policy) {
  if (joint.has_marginals) {
    return {EntropyFromSlots(joint.x_marginals, joint.total),
            EntropyFromSlots(joint.y_marginals, joint.total)};
  }
  return {ComputeColumnMarginal(x, policy).entropy,
          ComputeColumnMarginal(y, policy).entropy};
}

// Same, for a sketched pair (marginals stay exact either way).
std::pair<double, double> MarginalEntropies(const SketchedJoint& sketched,
                                            const Column& x, const Column& y,
                                            NullPolicy policy) {
  if (sketched.has_marginals) {
    return {EntropyFromSlots(sketched.x_marginals, sketched.total),
            EntropyFromSlots(sketched.y_marginals, sketched.total)};
  }
  return {ComputeColumnMarginal(x, policy).entropy,
          ComputeColumnMarginal(y, policy).entropy};
}

}  // namespace

double EntropyFromCounts(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  double weighted = 0.0;
  for (uint64_t count : counts) {
    if (count == 0) continue;
    total += count;
    double c = static_cast<double>(count);
    weighted += c * std::log2(c);
  }
  if (total == 0) return 0.0;
  double n = static_cast<double>(total);
  double h = std::log2(n) - weighted / n;
  return h < 0.0 ? 0.0 : h;
}

double EntropyOf(const Column& x, const StatsOptions& options) {
  return ComputeColumnMarginal(x, options.null_policy).entropy;
}

double JointEntropy(const Column& x, const Column& y,
                    const StatsOptions& options) {
  if (UseSketch(x, y, options)) {
    JointSketchKernel kernel;
    return kernel.Estimate(x, y, options).joint_entropy;
  }
  JointCountKernel kernel;
  return JointEntropyFromCells(kernel.Count(x, y, options));
}

double MutualInformation(const Column& x, const Column& y,
                         const StatsOptions& options) {
  if (UseSketch(x, y, options)) {
    JointSketchKernel kernel;
    const SketchedJoint& sketched = kernel.Estimate(x, y, options);
    if (sketched.total == 0) return 0.0;
    auto [hx, hy] = MarginalEntropies(sketched, x, y, options.null_policy);
    // The sketch under-estimates H(X,Y), so clamp MI_hat into the exact
    // quantity's feasible range [0, min(H(X), H(Y))].
    double mi = hx + hy - sketched.joint_entropy;
    if (mi < 0.0) mi = 0.0;
    return std::min(mi, std::min(hx, hy));
  }
  JointCountKernel kernel;
  const JointCounts& joint = kernel.Count(x, y, options);
  if (joint.total == 0) return 0.0;
  auto [hx, hy] = MarginalEntropies(joint, x, y, options.null_policy);
  double mi = hx + hy - JointEntropyFromCells(joint);
  return mi < 0.0 ? 0.0 : mi;
}

double ConditionalEntropy(const Column& x, const Column& y,
                          const StatsOptions& options) {
  if (UseSketch(x, y, options)) {
    JointSketchKernel kernel;
    const SketchedJoint& sketched = kernel.Estimate(x, y, options);
    if (sketched.total == 0) return 0.0;
    double hy =
        sketched.has_marginals
            ? EntropyFromSlots(sketched.y_marginals, sketched.total)
            : ComputeColumnMarginal(y, options.null_policy).entropy;
    double cond = sketched.joint_entropy - hy;
    return cond < 0.0 ? 0.0 : cond;
  }
  JointCountKernel kernel;
  const JointCounts& joint = kernel.Count(x, y, options);
  if (joint.total == 0) return 0.0;
  double hy = joint.has_marginals
                  ? EntropyFromSlots(joint.y_marginals, joint.total)
                  : ComputeColumnMarginal(y, options.null_policy).entropy;
  double cond = JointEntropyFromCells(joint) - hy;
  return cond < 0.0 ? 0.0 : cond;
}

double NormalizedMutualInformation(const Column& x, const Column& y,
                                   const StatsOptions& options) {
  if (UseSketch(x, y, options)) {
    JointSketchKernel kernel;
    const SketchedJoint& sketched = kernel.Estimate(x, y, options);
    if (sketched.total == 0) return 0.0;
    auto [hx, hy] = MarginalEntropies(sketched, x, y, options.null_policy);
    double denom = std::max(hx, hy);
    if (denom <= 0.0) return 0.0;
    double mi = hx + hy - sketched.joint_entropy;
    if (mi < 0.0) mi = 0.0;
    mi = std::min(mi, std::min(hx, hy));
    return std::min(mi / denom, 1.0);
  }
  JointCountKernel kernel;
  const JointCounts& joint = kernel.Count(x, y, options);
  if (joint.total == 0) return 0.0;
  auto [hx, hy] = MarginalEntropies(joint, x, y, options.null_policy);
  double denom = std::max(hx, hy);
  if (denom <= 0.0) return 0.0;
  double mi = hx + hy - JointEntropyFromCells(joint);
  if (mi < 0.0) mi = 0.0;
  return std::min(mi / denom, 1.0);
}

}  // namespace depmatch
