// depmatch-lint: bit-identical-file
// Results are bit-identical at any thread count: every floating-point
// sum in this file accumulates in a fixed, thread-independent order.
// Do not introduce constructs that reorder double accumulation
// (std::reduce, atomic floating adds, OpenMP reductions); the
// depmatch_lint bit-identical rule and the tsan_stress tests enforce
// and exercise this contract.
#include "depmatch/stats/joint_kernel.h"

#include <algorithm>
#include <cmath>

#include "depmatch/common/logging.h"

namespace depmatch {
namespace {

// Per-row slot sources the counting templates are instantiated over. Both
// yield slot = code + 1 with slot 0 = null, so the loop bodies — and thus
// the accumulation order — are identical for Column and CodeView inputs.
struct ColumnSlots {
  const int32_t* codes;
  uint32_t operator()(size_t r) const {
    return static_cast<uint32_t>(codes[r] + 1);
  }
};

struct SpanSlots {
  const uint32_t* slots;
  uint32_t operator()(size_t r) const { return slots[r]; }
};

// Strategy thresholds for JointKernelDispatch::kAuto.
//
// Lane count: compile-time, matched to the widest vector unit the build
// targets so the merge pass (a strided integer reduction) fills whole
// registers. The increments themselves stay scalar — independent lanes
// buy instruction-level parallelism on skewed data, not gather/scatter.
#if defined(__AVX512F__) || defined(__AVX2__)
inline constexpr size_t kDenseLaneCount = 8;
#else
inline constexpr size_t kDenseLaneCount = 4;
#endif
// Above this many cells the flat matrix stops fitting in L2 and scatter
// increments degrade to cache misses; the sort-based strategy (pure
// sequential passes, no matrix) takes over.
inline constexpr size_t kSortStrategyMinCells = size_t{1} << 17;

// The cell budget the dense/sparse crossover compares against; the
// authoritative statement of the rule (static budget, auto-raise shape
// allowance, budget-0 semantics, sketch interaction) is the crossover
// comment block in histogram.h.
size_t EffectiveDenseBudget(size_t rows, const StatsOptions& options) {
  size_t budget = options.dense_cell_budget;
  if (budget == 0 || !options.auto_dense_budget) return budget;
  size_t by_rows = rows >= kDenseAutoMaxCells / kDenseAutoCellsPerRow
                       ? kDenseAutoMaxCells
                       : rows * kDenseAutoCellsPerRow;
  return std::max(budget, by_rows);
}

bool UseDenseForShape(size_t dx1, size_t dy1, size_t rows,
                      const StatsOptions& options) {
  size_t budget = EffectiveDenseBudget(rows, options);
  if (budget == 0) return false;
  // Overflow-safe form of dx1 * dy1 <= budget.
  return dx1 <= budget / dy1;
}

}  // namespace

ColumnMarginal ComputeColumnMarginal(const Column& column,
                                     NullPolicy policy) {
  ColumnMarginal m;
  m.slots.assign(column.distinct_count() + 1, 0);
  for (int32_t code : column.codes()) {
    if (code == Column::kNullCode && policy == NullPolicy::kDropNulls) {
      continue;
    }
    ++m.slots[static_cast<size_t>(code + 1)];
    ++m.total;
  }
  m.support = SupportFromSlots(m.slots);
  m.entropy = EntropyFromSlots(m.slots, m.total);
  return m;
}

ColumnMarginal ComputeColumnMarginal(const CodeView& codes,
                                     NullPolicy policy) {
  ColumnMarginal m;
  m.slots.assign(codes.num_slots, 0);
  const bool drop = (policy == NullPolicy::kDropNulls);
  for (size_t r = 0; r < codes.size; ++r) {
    uint32_t slot = codes.slots[r];
    if (slot == 0 && drop) continue;
    ++m.slots[slot];
    ++m.total;
  }
  m.support = SupportFromSlots(m.slots);
  m.entropy = EntropyFromSlots(m.slots, m.total);
  return m;
}

bool JointCountKernel::UseDense(const Column& x, const Column& y,
                                const StatsOptions& options) {
  return UseDenseForShape(x.distinct_count() + 1, y.distinct_count() + 1,
                          x.size(), options);
}

bool JointCountKernel::UseDense(const CodeView& x, const CodeView& y,
                                const StatsOptions& options) {
  return UseDenseForShape(x.num_slots, y.num_slots, x.size, options);
}

const JointCounts& JointCountKernel::Count(const Column& x, const Column& y,
                                           const StatsOptions& options) {
  DEPMATCH_CHECK_EQ(x.size(), y.size());
  counts_.total = 0;
  counts_.cell_x_slots.clear();
  counts_.cell_y_slots.clear();
  counts_.cell_counts.clear();
  counts_.has_marginals = false;
  counts_.x_marginals.clear();
  counts_.y_marginals.clear();

  counts_.used_dense = UseDense(x, y, options);
  ColumnSlots xs{x.codes().data()};
  ColumnSlots ys{y.codes().data()};
  if (counts_.used_dense) {
    CountDense(xs, ys, x.size(), x.distinct_count() + 1,
               y.distinct_count() + 1, options);
  } else {
    CountSparse(xs, ys, x.size(), options);
  }

  // The retained-row set depends on the pair only under kDropNulls with
  // nulls actually present; only then are per-pair marginals meaningful
  // (otherwise each column's pair-invariant ColumnMarginal applies).
  if (options.null_policy == NullPolicy::kDropNulls &&
      (x.null_count() > 0 || y.null_count() > 0)) {
    FillMarginals(x.distinct_count() + 1, y.distinct_count() + 1);
  }
  return counts_;
}

const JointCounts& JointCountKernel::Count(const CodeView& x,
                                           const CodeView& y,
                                           const StatsOptions& options) {
  DEPMATCH_CHECK_EQ(x.size, y.size);
  counts_.total = 0;
  counts_.cell_x_slots.clear();
  counts_.cell_y_slots.clear();
  counts_.cell_counts.clear();
  counts_.has_marginals = false;
  counts_.x_marginals.clear();
  counts_.y_marginals.clear();

  counts_.used_dense = UseDense(x, y, options);
  SpanSlots xs{x.slots};
  SpanSlots ys{y.slots};
  if (counts_.used_dense) {
    CountDense(xs, ys, x.size, x.num_slots, y.num_slots, options);
  } else {
    CountSparse(xs, ys, x.size, options);
  }

  if (options.null_policy == NullPolicy::kDropNulls &&
      (x.null_count > 0 || y.null_count > 0)) {
    FillMarginals(x.num_slots, y.num_slots);
  }
  return counts_;
}

template <typename SlotOfX, typename SlotOfY>
void JointCountKernel::CountDense(SlotOfX x_slot, SlotOfY y_slot,
                                  size_t rows, size_t dx1, size_t dy1,
                                  const StatsOptions& options) {
  const size_t cells = dx1 * dy1;
  const bool drop = (options.null_policy == NullPolicy::kDropNulls);
  const bool scalar = (options.dispatch == JointKernelDispatch::kScalar);

  // Strategy choice depends only on the pair's shape and the dispatch
  // option — never on thread count or data values — so it is
  // deterministic, and every strategy emits identical cells anyway.
  if (cells <= rows) {
    // Row-dominated matrix: branch-free increments, whole-matrix
    // compaction scan. Lane-splitting needs per-cell counts to fit the
    // uint32 lane counters, which rows bounds.
    if (!scalar && rows < UINT32_MAX) {
      CountDenseLanes(x_slot, y_slot, rows, dy1, cells, drop);
    } else {
      CountDenseScan(x_slot, y_slot, rows, dy1, cells, drop);
    }
    return;
  }
  if (!scalar && cells >= kSortStrategyMinCells) {
    CountDenseSorted(x_slot, y_slot, rows, dy1, drop);
    return;
  }
  if (dense_.size() < cells) dense_.resize(cells, 0);
  CountDenseTouched(x_slot, y_slot, rows, dy1, drop);
}

template <typename SlotOfX, typename SlotOfY>
void JointCountKernel::CountDenseScan(SlotOfX x_slot, SlotOfY y_slot,
                                      size_t rows, size_t dy1, size_t cells,
                                      bool drop) {
  if (dense_.size() < cells) dense_.resize(cells, 0);
  for (size_t r = 0; r < rows; ++r) {
    uint32_t sx = x_slot(r);
    uint32_t sy = y_slot(r);
    if (drop && (sx == 0 || sy == 0)) continue;
    ++dense_[static_cast<size_t>(sx) * dy1 + sy];
    ++counts_.total;
  }
  // Flat-index order is the canonical row-major cell order; zeroing as
  // we go restores the all-zero scratch invariant.
  for (size_t slot = 0; slot < cells; ++slot) {
    if (dense_[slot] == 0) continue;
    counts_.cell_x_slots.push_back(static_cast<uint32_t>(slot / dy1));
    counts_.cell_y_slots.push_back(static_cast<uint32_t>(slot % dy1));
    counts_.cell_counts.push_back(dense_[slot]);
    dense_[slot] = 0;
  }
}

template <typename SlotOfX, typename SlotOfY>
void JointCountKernel::CountDenseLanes(SlotOfX x_slot, SlotOfY y_slot,
                                       size_t rows, size_t dy1, size_t cells,
                                       bool drop) {
  constexpr size_t kLanes = kDenseLaneCount;
  if (lanes_.size() < cells * kLanes) lanes_.resize(cells * kLanes, 0);
  uint32_t* lane[kLanes];
  for (size_t l = 0; l < kLanes; ++l) lane[l] = lanes_.data() + l * cells;

  // Unrolled row loop: lane l sees rows r + l only, so the kLanes
  // increments per iteration hit independent sub-histograms and can
  // retire in parallel even when the data is heavily skewed.
  uint64_t retained[kLanes] = {};
  size_t r = 0;
  for (; r + kLanes <= rows; r += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      uint32_t sx = x_slot(r + l);
      uint32_t sy = y_slot(r + l);
      if (drop && (sx == 0 || sy == 0)) continue;
      ++lane[l][static_cast<size_t>(sx) * dy1 + sy];
      ++retained[l];
    }
  }
  for (; r < rows; ++r) {
    uint32_t sx = x_slot(r);
    uint32_t sy = y_slot(r);
    if (drop && (sx == 0 || sy == 0)) continue;
    ++lane[0][static_cast<size_t>(sx) * dy1 + sy];
    ++retained[0];
  }
  for (size_t l = 0; l < kLanes; ++l) counts_.total += retained[l];

  // One merge pass per pair: sum the lanes per cell (a strided integer
  // reduction the vectorizer handles), emit non-zero cells in flat-index
  // order — the canonical row-major order — and re-zero the lanes to
  // restore the all-zero scratch invariant. Integer sums, so the merged
  // counts equal the single-histogram counts exactly.
  for (size_t slot = 0; slot < cells; ++slot) {
    uint64_t count = 0;
    for (size_t l = 0; l < kLanes; ++l) {
      count += lane[l][slot];
      lane[l][slot] = 0;
    }
    if (count == 0) continue;
    counts_.cell_x_slots.push_back(static_cast<uint32_t>(slot / dy1));
    counts_.cell_y_slots.push_back(static_cast<uint32_t>(slot % dy1));
    counts_.cell_counts.push_back(count);
  }
}

template <typename SlotOfX, typename SlotOfY>
void JointCountKernel::CountDenseTouched(SlotOfX x_slot, SlotOfY y_slot,
                                         size_t rows, size_t dy1,
                                         bool drop) {
  touched_.clear();
  for (size_t r = 0; r < rows; ++r) {
    uint32_t sx = x_slot(r);
    uint32_t sy = y_slot(r);
    if (drop && (sx == 0 || sy == 0)) continue;
    size_t slot = static_cast<size_t>(sx) * dy1 + sy;
    if (dense_[slot]++ == 0) touched_.push_back(slot);
    ++counts_.total;
  }

  // Sorted touched cells give the same canonical row-major order as the
  // scan; resetting exactly the touched cells restores the all-zero
  // scratch invariant.
  std::sort(touched_.begin(), touched_.end());
  counts_.cell_x_slots.reserve(touched_.size());
  counts_.cell_y_slots.reserve(touched_.size());
  counts_.cell_counts.reserve(touched_.size());
  for (uint64_t slot : touched_) {
    counts_.cell_x_slots.push_back(static_cast<uint32_t>(slot / dy1));
    counts_.cell_y_slots.push_back(static_cast<uint32_t>(slot % dy1));
    counts_.cell_counts.push_back(dense_[slot]);
    dense_[slot] = 0;
  }
}

template <typename SlotOfX, typename SlotOfY>
void JointCountKernel::CountDenseSorted(SlotOfX x_slot, SlotOfY y_slot,
                                        size_t rows, size_t dy1,
                                        bool drop) {
  // Pack each retained row into its flat cell index. Ascending flat
  // indices ARE the canonical row-major cell order, so sorting and
  // run-length encoding reproduces exactly what the matrix strategies
  // emit — without ever materializing the matrix (the win: scratch is
  // O(rows), not O(cells), and every pass is sequential).
  keys_.clear();
  keys_.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    uint32_t sx = x_slot(r);
    uint32_t sy = y_slot(r);
    if (drop && (sx == 0 || sy == 0)) continue;
    keys_.push_back(static_cast<uint64_t>(sx) * dy1 + sy);
  }
  counts_.total = keys_.size();
  if (keys_.empty()) return;

  RadixSortKeys(*std::max_element(keys_.begin(), keys_.end()));

  const size_t n = keys_.size();
  for (size_t i = 0; i < n;) {
    const uint64_t key = keys_[i];
    size_t j = i + 1;
    while (j < n && keys_[j] == key) ++j;
    counts_.cell_x_slots.push_back(static_cast<uint32_t>(key / dy1));
    counts_.cell_y_slots.push_back(static_cast<uint32_t>(key % dy1));
    counts_.cell_counts.push_back(static_cast<uint64_t>(j - i));
    i = j;
  }
}

template <typename SlotOfX, typename SlotOfY>
void JointCountKernel::CountSparse(SlotOfX x_slot, SlotOfY y_slot,
                                   size_t rows, const StatsOptions& options) {
  const bool drop = (options.null_policy == NullPolicy::kDropNulls);
  if (options.dispatch == JointKernelDispatch::kScalar) {
    CountSparseHash(x_slot, y_slot, rows, drop);
  } else {
    CountSparsePacked(x_slot, y_slot, rows, drop);
  }
}

template <typename SlotOfX, typename SlotOfY>
void JointCountKernel::CountSparseHash(SlotOfX x_slot, SlotOfY y_slot,
                                       size_t rows, bool drop) {
  sparse_.clear();
  for (size_t r = 0; r < rows; ++r) {
    uint32_t sx = x_slot(r);
    uint32_t sy = y_slot(r);
    if (drop && (sx == 0 || sy == 0)) continue;
    // Same packing as JointHistogram::PackCodes(code_x, code_y): slot in
    // the high word, slot in the low word.
    ++sparse_[(static_cast<uint64_t>(sx) << 32) | sy];
    ++counts_.total;
  }

  // Packed keys sort exactly like (x_slot, y_slot) pairs, so sorting them
  // yields the same canonical cell order the dense kernel produces.
  sparse_keys_.clear();
  sparse_keys_.reserve(sparse_.size());
  // depmatch-analyze: allow(det-unordered-iter) — only keys are taken,
  // and they are sorted on the next line; hash order never reaches the
  // output.
  for (const auto& [key, count] : sparse_) sparse_keys_.push_back(key);
  std::sort(sparse_keys_.begin(), sparse_keys_.end());
  counts_.cell_x_slots.reserve(sparse_keys_.size());
  counts_.cell_y_slots.reserve(sparse_keys_.size());
  counts_.cell_counts.reserve(sparse_keys_.size());
  for (uint64_t key : sparse_keys_) {
    counts_.cell_x_slots.push_back(static_cast<uint32_t>(key >> 32));
    counts_.cell_y_slots.push_back(
        static_cast<uint32_t>(key & 0xffffffffULL));
    counts_.cell_counts.push_back(sparse_.find(key)->second);
  }
}

template <typename SlotOfX, typename SlotOfY>
void JointCountKernel::CountSparsePacked(SlotOfX x_slot, SlotOfY y_slot,
                                         size_t rows, bool drop) {
  // The hash map's packed (x_slot << 32 | y_slot) keys already sort in
  // the canonical cell order, so the sort-based strategy applies to the
  // sparse tier verbatim: pack, radix-sort, run-length encode. No hashing
  // per row, no rehash growth, and the same exact output.
  keys_.clear();
  keys_.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    uint32_t sx = x_slot(r);
    uint32_t sy = y_slot(r);
    if (drop && (sx == 0 || sy == 0)) continue;
    keys_.push_back((static_cast<uint64_t>(sx) << 32) | sy);
  }
  counts_.total = keys_.size();
  if (keys_.empty()) return;

  RadixSortKeys(*std::max_element(keys_.begin(), keys_.end()));

  const size_t n = keys_.size();
  for (size_t i = 0; i < n;) {
    const uint64_t key = keys_[i];
    size_t j = i + 1;
    while (j < n && keys_[j] == key) ++j;
    counts_.cell_x_slots.push_back(static_cast<uint32_t>(key >> 32));
    counts_.cell_y_slots.push_back(
        static_cast<uint32_t>(key & 0xffffffffULL));
    counts_.cell_counts.push_back(static_cast<uint64_t>(j - i));
    i = j;
  }
}

void JointCountKernel::RadixSortKeys(uint64_t max_key) {
  const size_t n = keys_.size();
  if (n < 2) return;
  if (keys_tmp_.size() < n) keys_tmp_.resize(n);

  size_t passes = 0;
  while (passes < 8 && (max_key >> (8 * passes)) != 0) ++passes;

  uint64_t* src = keys_.data();
  uint64_t* dst = keys_tmp_.data();
  size_t hist[256];
  for (size_t p = 0; p < passes; ++p) {
    const unsigned shift = static_cast<unsigned>(8 * p);
    std::fill(std::begin(hist), std::end(hist), size_t{0});
    for (size_t i = 0; i < n; ++i) {
      ++hist[static_cast<size_t>((src[i] >> shift) & 0xff)];
    }
    // A pass whose digit is constant permutes nothing; skip the copy.
    if (hist[static_cast<size_t>((src[0] >> shift) & 0xff)] == n) continue;
    size_t offset = 0;
    for (size_t b = 0; b < 256; ++b) {
      size_t count = hist[b];
      hist[b] = offset;
      offset += count;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[hist[static_cast<size_t>((src[i] >> shift) & 0xff)]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != keys_.data()) {
    std::copy(src, src + n, keys_.data());
  }
}

void JointCountKernel::FillMarginals(size_t x_slots, size_t y_slots) {
  counts_.has_marginals = true;
  counts_.x_marginals.assign(x_slots, 0);
  counts_.y_marginals.assign(y_slots, 0);
  for (size_t c = 0; c < counts_.cell_counts.size(); ++c) {
    counts_.x_marginals[counts_.cell_x_slots[c]] += counts_.cell_counts[c];
    counts_.y_marginals[counts_.cell_y_slots[c]] += counts_.cell_counts[c];
  }
}

double EntropyFromWeighted(double weighted, uint64_t total) {
  if (total == 0) return 0.0;
  double n = static_cast<double>(total);
  double h = std::log2(n) - weighted / n;
  return h < 0.0 ? 0.0 : h;
}

// c * log2(c) memoized for small counts, which dominate the folds (cell
// counts rarely exceed a few thousand even on large tables). The table
// holds the exact doubles std::log2 produces, so memoization does not
// perturb any result. 4096 entries = 32 KiB, resident in L1/L2.
const double* CellWeightTable() {
  static const double* table = [] {
    auto* t = new double[kCellWeightTableSize];
    t[0] = 0.0;
    for (size_t c = 1; c < kCellWeightTableSize; ++c) {
      double d = static_cast<double>(c);
      t[c] = d * std::log2(d);
    }
    return t;
  }();
  return table;
}

double JointEntropyFromCells(const JointCounts& counts) {
  const double* table = CellWeightTable();
  double weighted = 0.0;
  for (uint64_t count : counts.cell_counts) {
    weighted += CellWeight(table, count);
  }
  return EntropyFromWeighted(weighted, counts.total);
}

double EntropyFromSlots(const std::vector<uint64_t>& slots, uint64_t total) {
  // Codes first, null slot last: the historical EntropyOf order, kept so
  // cached entropies stay bit-identical with it.
  const double* table = CellWeightTable();
  double weighted = 0.0;
  for (size_t s = 1; s < slots.size(); ++s) {
    if (slots[s] == 0) continue;
    weighted += CellWeight(table, slots[s]);
  }
  if (!slots.empty() && slots[0] > 0) {
    weighted += CellWeight(table, slots[0]);
  }
  return EntropyFromWeighted(weighted, total);
}

size_t SupportFromSlots(const std::vector<uint64_t>& slots) {
  size_t support = 0;
  for (uint64_t count : slots) {
    if (count > 0) ++support;
  }
  return support;
}

double ChiSquareFromCounts(const JointCounts& counts,
                           const std::vector<uint64_t>& x_slots,
                           const std::vector<uint64_t>& y_slots) {
  if (counts.total == 0) return 0.0;
  double n = static_cast<double>(counts.total);
  // chi^2 = sum over observed cells of o^2/e - N (see association.cc for
  // the derivation); canonical cell order keeps the fold deterministic.
  double sum = 0.0;
  for (size_t c = 0; c < counts.cell_counts.size(); ++c) {
    double row = static_cast<double>(x_slots[counts.cell_x_slots[c]]);
    double col = static_cast<double>(y_slots[counts.cell_y_slots[c]]);
    double observed = static_cast<double>(counts.cell_counts[c]);
    double expected = row * col / n;
    sum += observed * observed / expected;
  }
  double chi2 = sum - n;
  return chi2 < 0.0 ? 0.0 : chi2;
}

}  // namespace depmatch
