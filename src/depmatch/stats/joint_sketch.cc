// depmatch-lint: bit-identical-file
// Sketched estimates are approximate relative to the exact kernel, but
// they are still deterministic and thread-invariant: hash constants are
// fixed, and every floating-point fold below accumulates serially in row
// order for the pair. Do not introduce constructs that reorder double
// accumulation (std::reduce, atomic floating adds, OpenMP reductions).
#include "depmatch/stats/joint_sketch.h"

#include <algorithm>
#include <cmath>

#include "depmatch/common/logging.h"

namespace depmatch {
namespace {

// Fixed per-depth multiply constants (odd, high bit entropy; splitmix64 /
// golden-ratio family). Fixed constants make estimates reproducible; the
// (epsilon, delta) guarantee then holds in the average-case sense the
// property tests measure, not adversarially against the constants.
constexpr uint64_t kHashMul[kSketchMaxDepth] = {
    0x9e3779b97f4a7c15ULL, 0xbf58476d1ce4e5b9ULL, 0x94d049bb133111ebULL,
    0xff51afd7ed558ccdULL, 0xc4ceb9fe1a85ec53ULL, 0x2545f4914f6cdd1dULL,
    0x9e6c63d0873a6a0dULL, 0xd6e8feb86659fd93ULL};

// Mixed hash for depth d, mapped to [0, width) by Lemire reduction — no
// modulo, and the full 64-bit hash participates.
inline size_t Bucket(uint64_t key, size_t depth, uint32_t width) {
  uint64_t h = (key ^ (key >> 33)) * kHashMul[depth];
  h ^= h >> 29;
  return static_cast<size_t>(
      (static_cast<unsigned __int128>(h) * width) >> 64);
}

}  // namespace

SketchParams SketchParams::FromBounds(double epsilon, double delta) {
  SketchParams p;
  // Non-positive / NaN bounds degrade to the tightest clamped shape.
  double w = (epsilon > 0.0) ? std::ceil(std::exp(1.0) / epsilon)
                             : static_cast<double>(kSketchMaxWidth);
  if (!(w >= static_cast<double>(kSketchMinWidth))) w = kSketchMinWidth;
  if (w > static_cast<double>(kSketchMaxWidth)) w = kSketchMaxWidth;
  p.width = static_cast<uint32_t>(w);

  double d = (delta > 0.0 && delta < 1.0) ? std::ceil(-std::log(delta))
                                          : static_cast<double>(kSketchMaxDepth);
  if (!(d >= 1.0)) d = 1.0;
  if (d > static_cast<double>(kSketchMaxDepth)) d = kSketchMaxDepth;
  p.depth = static_cast<uint32_t>(d);

  p.epsilon_bound = std::exp(1.0) / static_cast<double>(p.width);
  p.delta_bound = std::exp(-static_cast<double>(p.depth));
  return p;
}

bool UseSketch(const Column& x, const Column& y, const StatsOptions& options) {
  return options.sketch_mode == SketchMode::kCountMin &&
         !JointCountKernel::UseDense(x, y, options);
}

bool UseSketch(const CodeView& x, const CodeView& y,
               const StatsOptions& options) {
  return options.sketch_mode == SketchMode::kCountMin &&
         !JointCountKernel::UseDense(x, y, options);
}

void JointSketchKernel::Reset(const SketchParams& params) {
  params_ = params;
  const size_t cells =
      static_cast<size_t>(params.width) * static_cast<size_t>(params.depth);
  if (table_.size() < cells) table_.resize(cells);
  std::fill(table_.begin(), table_.begin() + static_cast<ptrdiff_t>(cells),
            uint64_t{0});
}

void JointSketchKernel::Add(uint64_t key) {
  for (size_t d = 0; d < params_.depth; ++d) {
    ++table_[d * params_.width + Bucket(key, d, params_.width)];
  }
}

uint64_t JointSketchKernel::EstimateCount(uint64_t key) const {
  uint64_t estimate = UINT64_MAX;
  for (size_t d = 0; d < params_.depth; ++d) {
    estimate = std::min(
        estimate, table_[d * params_.width + Bucket(key, d, params_.width)]);
  }
  return estimate;
}

template <typename SlotOfX, typename SlotOfY>
void JointSketchKernel::EstimateImpl(SlotOfX x_slot, SlotOfY y_slot,
                                     size_t rows, size_t dx1, size_t dy1,
                                     const std::vector<uint64_t>& x_slots,
                                     const std::vector<uint64_t>& y_slots,
                                     const StatsOptions& options) {
  result_.total = 0;
  result_.joint_entropy = 0.0;
  result_.chi_square = 0.0;
  result_.x_marginals.clear();
  result_.y_marginals.clear();

  Reset(SketchParams::FromBounds(options.sketch_epsilon,
                                 options.sketch_delta));
  result_.params = params_;

  const bool drop = (options.null_policy == NullPolicy::kDropNulls);
  // Per-pair marginals are needed exactly when the retained-row set is
  // pair-dependent: kDropNulls with nulls present (same rule as the exact
  // kernel). has_marginals is set by the entry points.
  if (result_.has_marginals) {
    result_.x_marginals.assign(dx1, 0);
    result_.y_marginals.assign(dy1, 0);
  }

  // Pass 1: stream the retained rows into the sketch, keeping the packed
  // keys for pass 2 and (when pair-dependent) the exact marginals.
  keys_.clear();
  keys_.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    uint32_t sx = x_slot(r);
    uint32_t sy = y_slot(r);
    if (drop && (sx == 0 || sy == 0)) continue;
    uint64_t key = (static_cast<uint64_t>(sx) << 32) | sy;
    keys_.push_back(key);
    Add(key);
    if (result_.has_marginals) {
      ++result_.x_marginals[sx];
      ++result_.y_marginals[sy];
    }
  }
  result_.total = keys_.size();
  if (keys_.empty()) return;

  const std::vector<uint64_t>& mx =
      result_.has_marginals ? result_.x_marginals : x_slots;
  const std::vector<uint64_t>& my =
      result_.has_marginals ? result_.y_marginals : y_slots;

  // Pass 2: point-query every retained row. Summing log2(c_hat) over rows
  // equals summing c * log2(c_hat) over cells, and summing c_hat/(m_x*m_y)
  // over rows equals summing c*c_hat/(m_x*m_y) ~= o^2/(m_x*m_y) over
  // cells — both folds run serially in row order, so the estimate is
  // thread-invariant.
  const double n = static_cast<double>(result_.total);
  double weighted = 0.0;
  double chi_sum = 0.0;
  for (uint64_t key : keys_) {
    const double c_hat = static_cast<double>(EstimateCount(key));
    weighted += std::log2(c_hat);
    const uint64_t row_count = mx[static_cast<size_t>(key >> 32)];
    const uint64_t col_count = my[static_cast<size_t>(key & 0xffffffffULL)];
    chi_sum +=
        c_hat / (static_cast<double>(row_count) *
                 static_cast<double>(col_count));
  }
  double h = std::log2(n) - weighted / n;
  result_.joint_entropy = h < 0.0 ? 0.0 : h;
  double chi2 = n * chi_sum - n;
  result_.chi_square = chi2 < 0.0 ? 0.0 : chi2;
}

const SketchedJoint& JointSketchKernel::Estimate(
    const CodeView& x, const CodeView& y,
    const std::vector<uint64_t>& x_slots,
    const std::vector<uint64_t>& y_slots, const StatsOptions& options) {
  DEPMATCH_CHECK_EQ(x.size, y.size);
  result_.has_marginals =
      options.null_policy == NullPolicy::kDropNulls &&
      (x.null_count > 0 || y.null_count > 0);
  auto x_of = [slots = x.slots](size_t r) { return slots[r]; };
  auto y_of = [slots = y.slots](size_t r) { return slots[r]; };
  EstimateImpl(x_of, y_of, x.size, x.num_slots, y.num_slots, x_slots,
               y_slots, options);
  return result_;
}

const SketchedJoint& JointSketchKernel::Estimate(const Column& x,
                                                 const Column& y,
                                                 const StatsOptions& options) {
  DEPMATCH_CHECK_EQ(x.size(), y.size());
  result_.has_marginals =
      options.null_policy == NullPolicy::kDropNulls &&
      (x.null_count() > 0 || y.null_count() > 0);
  ColumnMarginal mx = ComputeColumnMarginal(x, options.null_policy);
  ColumnMarginal my = ComputeColumnMarginal(y, options.null_policy);
  auto x_of = [codes = x.codes().data()](size_t r) {
    return static_cast<uint32_t>(codes[r] + 1);
  };
  auto y_of = [codes = y.codes().data()](size_t r) {
    return static_cast<uint32_t>(codes[r] + 1);
  };
  EstimateImpl(x_of, y_of, x.size(), x.distinct_count() + 1,
               y.distinct_count() + 1, mx.slots, my.slots, options);
  return result_;
}

}  // namespace depmatch
