// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Bootstrap uncertainty for the plug-in estimators. The matcher compares
// MI values across two independently sampled tables; knowing each
// estimate's sampling error tells a practitioner how much metric
// difference is signal. (The paper studies this indirectly via its
// Figure 9 sample-size sweep; the bootstrap quantifies it per estimate.)

#ifndef DEPMATCH_STATS_BOOTSTRAP_H_
#define DEPMATCH_STATS_BOOTSTRAP_H_

#include <cstdint>

#include "depmatch/common/status.h"
#include "depmatch/stats/entropy.h"
#include "depmatch/table/column.h"

namespace depmatch {

struct BootstrapOptions {
  // Bootstrap resamples (rows drawn with replacement). More = smoother
  // error estimates, linearly more work.
  size_t resamples = 50;
  uint64_t seed = 1;
  StatsOptions stats;
};

struct EstimateWithError {
  // Point estimate on the original sample.
  double value = 0.0;
  // Bootstrap standard error (stddev of the resampled estimates).
  double standard_error = 0.0;
};

// H(X) with bootstrap standard error. Precondition: resamples >= 2.
Result<EstimateWithError> BootstrapEntropy(const Column& x,
                                           const BootstrapOptions& options);

// MI(X;Y) with bootstrap standard error (rows resampled jointly).
// Preconditions: x.size() == y.size(), resamples >= 2.
Result<EstimateWithError> BootstrapMutualInformation(
    const Column& x, const Column& y, const BootstrapOptions& options);

}  // namespace depmatch

#endif  // DEPMATCH_STATS_BOOTSTRAP_H_
