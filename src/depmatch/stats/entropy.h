// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Plug-in (maximum-likelihood) estimators of the information-theoretic
// quantities in the paper:
//
//   Entropy             H(X)    = -sum_x p(x) log2 p(x)          (Def 2.2)
//   Conditional entropy H(X|Y)  = -sum p(x,y) log2 p(x|y)        (Def 2.3)
//   Mutual information  MI(X;Y) = sum p(x,y) log2 (p(x,y)/p(x)p(y)) (Def 2.1)
//
// All values are in bits (log base 2). Identities the implementation and
// the tests rely on:
//   MI(X;Y) = H(X) + H(Y) - H(X,Y) = H(X) - H(X|Y) = MI(Y;X)
//   MI(X;X) = H(X)   ("self information", the dependency-graph diagonal)
//
// Everything is computed from counts with the numerically stable form
//   H = log2(N) - (1/N) * sum_c count(c) * log2(count(c)),
// which keeps MI(X;X) and H(X) equal to within summation-reordering error
// (~1e-12); the dependency-graph builder uses EntropyOf directly for the
// diagonal so the identity is exact there by construction.

#ifndef DEPMATCH_STATS_ENTROPY_H_
#define DEPMATCH_STATS_ENTROPY_H_

#include "depmatch/stats/histogram.h"
#include "depmatch/table/column.h"

namespace depmatch {

// StatsOptions (the null policy and the dense-kernel budget) is defined in
// histogram.h and shared with association.h and joint_kernel.h.

// H(X) in bits. An empty or all-dropped column has entropy 0.
double EntropyOf(const Column& x, const StatsOptions& options = {});

// H(X, Y) in bits. Precondition: x.size() == y.size().
double JointEntropy(const Column& x, const Column& y,
                    const StatsOptions& options = {});

// MI(X; Y) in bits (non-negative up to rounding; clamped at 0).
// Precondition: x.size() == y.size().
double MutualInformation(const Column& x, const Column& y,
                         const StatsOptions& options = {});

// H(X | Y) = H(X,Y) - H(Y) in bits (clamped at 0).
// Precondition: x.size() == y.size().
double ConditionalEntropy(const Column& x, const Column& y,
                          const StatsOptions& options = {});

// Normalized mutual information MI(X;Y) / max(H(X), H(Y)), in [0, 1];
// 0 when both entropies are 0. Not used by the paper's metrics but exposed
// for the alternative-dependency-measure ablation.
double NormalizedMutualInformation(const Column& x, const Column& y,
                                   const StatsOptions& options = {});

// Entropy of an explicit count vector (helper shared with tests and with
// generator calibration). Ignores zero counts.
double EntropyFromCounts(const std::vector<uint64_t>& counts);

}  // namespace depmatch

#endif  // DEPMATCH_STATS_ENTROPY_H_
