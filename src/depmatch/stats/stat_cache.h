// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Memoizing per-column statistics cache for the experiment pipeline.
//
// A Figure-9 style sweep rebuilds dependency graphs over many overlapping
// slices of the same base tables: per trial, a random attribute projection
// of a shared row sample. The per-column work — gathering and remapping
// the selection's slot array, the marginal histogram, the entropy — is
// identical whenever (base table, column, row selection, null policy)
// repeat, which across a sweep is almost always. StatCache memoizes it, so
// each base column is encoded exactly once per distinct row selection
// across all iterations and threads.
//
// Key design: (base-table id, base column index, row-selection digest,
// selection length, null policy). The table id is the process-unique
// EncodedTable snapshot id — snapshots are immutable, so entries never
// need invalidation; dropping the EncodedTable and building a new one
// yields a fresh id (stale entries are purged with Clear(), or simply by
// letting the cache go out of scope with the sweep). For incremental
// ingestion (graph/incremental_builder.h), where one logical table gains
// rows over time, callers tag views with the count-state generation
// digest (EncodedTableView::WithGeneration); the tag is part of every key,
// so a view over appended data can never hit an entry cached before the
// append — stale hits are structurally impossible, and EvictColumns()
// reclaims the superseded entries eagerly. The row digest is
// content-based (RowSelectionDigest), so independently constructed but
// equal selections share entries; the length rides along to keep the
// 64-bit digest honest against accidental collisions between selections
// of different sizes.
//
// Thread safety: Get() is safe to call concurrently. Lookups and inserts
// take a mutex; computation runs outside the lock. Two threads missing on
// the same key may both compute, but the first insert wins and the
// computation is deterministic, so both return equivalent data — the
// tsan_stress suite hammers exactly this.
//
// A second memo caches pairwise *edge values*: the exact double the graph
// builder's fold produced for a (column x, column y) pair under one
// (row selection, null policy, measure). Attribute subsets drawn across a
// sweep overlap heavily, so most pairs recur; an edge hit skips the joint
// count entirely. Edge keys are directional — the joint fold accumulates
// in row-major (x, y) order, and (y, x) sums the same terms in a
// different order, which IEEE addition does not guarantee to be the same
// double — so bit-identity with the cold path is preserved by keying the
// orientation actually built.

#ifndef DEPMATCH_STATS_STAT_CACHE_H_
#define DEPMATCH_STATS_STAT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "depmatch/common/thread_annotations.h"
#include "depmatch/stats/joint_kernel.h"
#include "depmatch/table/encoded_column.h"

namespace depmatch {

// Everything the graph builder needs about one column restricted to one
// row selection: the slot array (aliased from the base encoding when the
// selection is "all rows", owned otherwise) plus its marginal histogram
// and entropy. Immutable once built; shared via shared_ptr.
struct ColumnSelectionStats {
  // Keeps an aliased slot array alive.
  std::shared_ptr<const EncodedTable> base;
  // Owned storage for the remapped selection slots; empty when aliasing.
  std::vector<uint32_t> owned_slots;
  // The slot array to consume (points into `base` or at `owned_slots`).
  const std::vector<uint32_t>* slots = nullptr;
  // Measured on the selection: distinct + 1 (slot 0 = null).
  uint32_t num_slots = 1;
  uint64_t null_count = 0;
  // Marginal over the selection under the keyed null policy.
  ColumnMarginal marginal;

  // Borrowed view for the joint-count kernels.
  CodeView code_view() const {
    return CodeView{slots->data(), slots->size(), num_slots, null_count};
  }
};

// Computes ColumnSelectionStats for view column `column` (view-relative)
// under `policy`, with no caching. A view without a row selection aliases
// the base slot array; a view with one materializes first-appearance
// remapped slots (see table/encoded_column.h), so downstream results are
// bit-identical to building from the materialized table.
std::shared_ptr<const ColumnSelectionStats> ComputeSelectionStats(
    const EncodedTableView& view, size_t column, NullPolicy policy);

// Thread-safe memo over ComputeSelectionStats. One instance typically
// spans one experiment sweep; entries live until Clear() or destruction.
class StatCache {
 public:
  StatCache() = default;
  StatCache(const StatCache&) = delete;
  StatCache& operator=(const StatCache&) = delete;

  // Returns the cached stats for (view base, view column `column`,
  // view row selection, policy), computing and inserting on miss.
  std::shared_ptr<const ColumnSelectionStats> Get(const EncodedTableView& view,
                                                  size_t column,
                                                  NullPolicy policy)
      DEPMATCH_EXCLUDES(mu_);

  // Edge memo: the exact double a graph-builder fold produced for view
  // columns (x, y) under `fold_tag` (the caller's encoding of the edge
  // measure — and, for pairs estimated by the opt-in sketch tier, the
  // sketch shape, so a sketched value never aliases the exact one or a
  // different (epsilon, delta); see EdgeFoldTag in graph_builder.cc).
  // The tag deliberately excludes the exact-kernel knobs: dense, sparse,
  // and every dispatch strategy emit bit-identical folds. GetEdge
  // returns true and writes `*value` on a hit; PutEdge stores a freshly
  // computed value (first insert wins). Keys live in base-column space
  // and are directional (see file comment), so a hit is bit-identical to
  // recomputing by construction.
  bool GetEdge(const EncodedTableView& view, size_t x, size_t y,
               NullPolicy policy, uint32_t fold_tag, double* value)
      DEPMATCH_EXCLUDES(mu_);
  void PutEdge(const EncodedTableView& view, size_t x, size_t y,
               NullPolicy policy, uint32_t fold_tag, double value)
      DEPMATCH_EXCLUDES(mu_);

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
    uint64_t edge_hits = 0;
    uint64_t edge_misses = 0;
    size_t edge_entries = 0;
  };
  Counters counters() const DEPMATCH_EXCLUDES(mu_);

  // Drops all entries (counters included). Outstanding shared_ptrs stay
  // valid — entries are immutable and reference-counted.
  void Clear() DEPMATCH_EXCLUDES(mu_);

  // Digest-chained invalidation for incremental ingestion: drops every
  // column entry of `table_id` whose base-column index is in `columns`,
  // plus every edge entry of `table_id` touching one of them. An append's
  // dirty set (stats/count_state.h) names exactly the stale columns; the
  // generation key already makes stale *hits* impossible, so this is
  // memory hygiene, not correctness. Returns the number of entries
  // dropped. Counters are untouched.
  size_t EvictColumns(uint64_t table_id, const std::vector<size_t>& columns)
      DEPMATCH_EXCLUDES(mu_);

 private:
  struct Key {
    uint64_t table_id = 0;
    uint64_t row_digest = 0;
    uint64_t row_count = 0;
    uint64_t generation = 0;
    uint32_t column = 0;
    uint8_t policy = 0;

    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct EdgeKey {
    uint64_t table_id = 0;
    uint64_t row_digest = 0;
    uint64_t row_count = 0;
    uint64_t generation = 0;
    uint32_t x = 0;  // base-column index of the fold's row axis
    uint32_t y = 0;  // base-column index of the fold's column axis
    uint32_t fold_tag = 0;
    uint8_t policy = 0;

    bool operator==(const EdgeKey& other) const = default;
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& key) const;
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const ColumnSelectionStats>,
                     KeyHash>
      map_ DEPMATCH_GUARDED_BY(mu_);
  std::unordered_map<EdgeKey, double, EdgeKeyHash> edge_map_
      DEPMATCH_GUARDED_BY(mu_);
  uint64_t hits_ DEPMATCH_GUARDED_BY(mu_) = 0;
  uint64_t misses_ DEPMATCH_GUARDED_BY(mu_) = 0;
  uint64_t edge_hits_ DEPMATCH_GUARDED_BY(mu_) = 0;
  uint64_t edge_misses_ DEPMATCH_GUARDED_BY(mu_) = 0;
};

}  // namespace depmatch

#endif  // DEPMATCH_STATS_STAT_CACHE_H_
