#include "depmatch/stats/histogram.h"

#include "depmatch/common/logging.h"

namespace depmatch {

Histogram Histogram::FromColumn(const Column& column, NullPolicy policy) {
  Histogram h;
  h.null_is_symbol_ = (policy == NullPolicy::kNullAsSymbol);
  h.code_counts_.assign(column.distinct_count(), 0);
  for (int32_t code : column.codes()) {
    if (code == Column::kNullCode) {
      if (policy == NullPolicy::kNullAsSymbol) {
        ++h.null_count_;
        ++h.total_;
      }
      continue;
    }
    ++h.code_counts_[static_cast<size_t>(code)];
    ++h.total_;
  }
  return h;
}

size_t Histogram::support_size() const {
  size_t support = (null_count_ > 0) ? 1 : 0;
  for (uint64_t count : code_counts_) {
    if (count > 0) ++support;
  }
  return support;
}

double Histogram::Probability(int32_t code) const {
  if (total_ == 0) return 0.0;
  uint64_t count = 0;
  if (code == Column::kNullCode) {
    count = null_count_;
  } else if (code >= 0 &&
             static_cast<size_t>(code) < code_counts_.size()) {
    count = code_counts_[static_cast<size_t>(code)];
  }
  return static_cast<double>(count) / static_cast<double>(total_);
}

uint64_t JointHistogram::PackCodes(int32_t x_code, int32_t y_code) {
  // Shift codes by +1 so the null sentinel (-1) packs as 0.
  uint64_t hi = static_cast<uint32_t>(x_code + 1);
  uint64_t lo = static_cast<uint32_t>(y_code + 1);
  return (hi << 32) | lo;
}

JointHistogram JointHistogram::FromColumns(const Column& x, const Column& y,
                                           NullPolicy policy) {
  DEPMATCH_CHECK_EQ(x.size(), y.size());
  JointHistogram joint;
  for (size_t row = 0; row < x.size(); ++row) {
    int32_t xc = x.code(row);
    int32_t yc = y.code(row);
    if (policy == NullPolicy::kDropNulls &&
        (xc == Column::kNullCode || yc == Column::kNullCode)) {
      continue;
    }
    ++joint.cells_[PackCodes(xc, yc)];
    ++joint.x_counts_[xc];
    ++joint.y_counts_[yc];
    ++joint.total_;
  }
  return joint;
}

}  // namespace depmatch
