// depmatch-lint: bit-identical-file
// Cached statistics must be bit-identical to cold-computed ones at any
// thread count: computation happens outside the lock in deterministic
// slot order (ComputeColumnMarginal / MaterializeSelectionCodes), and on
// a racing double-compute the first insert wins — both candidates are
// equal, so which one survives is unobservable. No floating accumulation
// may be reordered here.
#include "depmatch/stats/stat_cache.h"

#include <utility>

#include "depmatch/common/logging.h"

namespace depmatch {
namespace {

// FNV-1a over the key's fields, mixed field-by-field.
uint64_t HashMix(uint64_t hash, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xffu;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::shared_ptr<const ColumnSelectionStats> ComputeSelectionStats(
    const EncodedTableView& view, size_t column, NullPolicy policy) {
  DEPMATCH_CHECK(view.valid());
  DEPMATCH_CHECK_LT(column, view.num_attributes());
  auto stats = std::make_shared<ColumnSelectionStats>();
  const EncodedColumn& base_column = view.column(column);
  if (!view.has_row_selection()) {
    // All rows: alias the base slot array (kept alive via `base`).
    stats->base = view.base_ptr();
    stats->slots = &base_column.slots();
    stats->num_slots = base_column.num_slots();
    stats->null_count = base_column.null_count();
  } else {
    SelectionCodes codes =
        MaterializeSelectionCodes(base_column, view.row_selection());
    stats->owned_slots = std::move(codes.slots);
    stats->slots = &stats->owned_slots;
    stats->num_slots = codes.num_slots;
    stats->null_count = codes.null_count;
  }
  stats->marginal = ComputeColumnMarginal(stats->code_view(), policy);
  return stats;
}

std::shared_ptr<const ColumnSelectionStats> StatCache::Get(
    const EncodedTableView& view, size_t column, NullPolicy policy) {
  DEPMATCH_CHECK(view.valid());
  DEPMATCH_CHECK_LT(column, view.num_attributes());
  Key key;
  key.table_id = view.base().id();
  key.row_digest = view.row_digest();
  key.row_count = view.num_rows();
  key.generation = view.generation();
  key.column = static_cast<uint32_t>(view.base_column(column));
  key.policy = static_cast<uint8_t>(policy);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      return it->second;
    }
  }

  // Compute outside the lock; concurrent misses on the same key may both
  // compute, but the computation is deterministic so the candidates are
  // equal and the first insert wins.
  std::shared_ptr<const ColumnSelectionStats> computed =
      ComputeSelectionStats(view, column, policy);

  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  auto [it, inserted] = map_.emplace(key, std::move(computed));
  return it->second;
}

bool StatCache::GetEdge(const EncodedTableView& view, size_t x, size_t y,
                        NullPolicy policy, uint32_t fold_tag,
                        double* value) {
  DEPMATCH_CHECK(view.valid());
  DEPMATCH_CHECK_LT(x, view.num_attributes());
  DEPMATCH_CHECK_LT(y, view.num_attributes());
  EdgeKey key;
  key.table_id = view.base().id();
  key.row_digest = view.row_digest();
  key.row_count = view.num_rows();
  key.generation = view.generation();
  key.x = static_cast<uint32_t>(view.base_column(x));
  key.y = static_cast<uint32_t>(view.base_column(y));
  key.fold_tag = fold_tag;
  key.policy = static_cast<uint8_t>(policy);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = edge_map_.find(key);
  if (it == edge_map_.end()) {
    ++edge_misses_;
    return false;
  }
  ++edge_hits_;
  *value = it->second;
  return true;
}

void StatCache::PutEdge(const EncodedTableView& view, size_t x, size_t y,
                        NullPolicy policy, uint32_t fold_tag, double value) {
  DEPMATCH_CHECK(view.valid());
  DEPMATCH_CHECK_LT(x, view.num_attributes());
  DEPMATCH_CHECK_LT(y, view.num_attributes());
  EdgeKey key;
  key.table_id = view.base().id();
  key.row_digest = view.row_digest();
  key.row_count = view.num_rows();
  key.generation = view.generation();
  key.x = static_cast<uint32_t>(view.base_column(x));
  key.y = static_cast<uint32_t>(view.base_column(y));
  key.fold_tag = fold_tag;
  key.policy = static_cast<uint8_t>(policy);

  // First insert wins; racing candidates are equal (the fold is
  // deterministic in its inputs), so which survives is unobservable.
  std::lock_guard<std::mutex> lock(mu_);
  edge_map_.emplace(key, value);
}

StatCache::Counters StatCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters counters;
  counters.hits = hits_;
  counters.misses = misses_;
  counters.entries = map_.size();
  counters.edge_hits = edge_hits_;
  counters.edge_misses = edge_misses_;
  counters.edge_entries = edge_map_.size();
  return counters;
}

size_t StatCache::EvictColumns(uint64_t table_id,
                               const std::vector<size_t>& columns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto dirty = [&columns](uint64_t column) {
    for (size_t c : columns) {
      if (static_cast<uint64_t>(c) == column) return true;
    }
    return false;
  };
  size_t dropped = 0;
  // depmatch-analyze: allow(det-unordered-iter) — erase-only sweep; the
  // surviving entry set and the returned count are order-independent.
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.table_id == table_id && dirty(it->first.column)) {
      it = map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  // depmatch-analyze: allow(det-unordered-iter) — same erase-only sweep.
  for (auto it = edge_map_.begin(); it != edge_map_.end();) {
    if (it->first.table_id == table_id &&
        (dirty(it->first.x) || dirty(it->first.y))) {
      it = edge_map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void StatCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  edge_map_.clear();
  hits_ = 0;
  misses_ = 0;
  edge_hits_ = 0;
  edge_misses_ = 0;
}

size_t StatCache::KeyHash::operator()(const Key& key) const {
  uint64_t hash = 0xcbf29ce484222325ULL;
  hash = HashMix(hash, key.table_id);
  hash = HashMix(hash, key.row_digest);
  hash = HashMix(hash, key.row_count);
  hash = HashMix(hash, key.generation);
  hash = HashMix(hash, (static_cast<uint64_t>(key.column) << 8) |
                           key.policy);
  return static_cast<size_t>(hash);
}

size_t StatCache::EdgeKeyHash::operator()(const EdgeKey& key) const {
  uint64_t hash = 0xcbf29ce484222325ULL;
  hash = HashMix(hash, key.table_id);
  hash = HashMix(hash, key.row_digest);
  hash = HashMix(hash, key.row_count);
  hash = HashMix(hash, key.generation);
  hash = HashMix(hash, (static_cast<uint64_t>(key.x) << 32) | key.y);
  hash = HashMix(hash, (static_cast<uint64_t>(key.fold_tag) << 8) |
                           key.policy);
  return static_cast<size_t>(hash);
}

}  // namespace depmatch
