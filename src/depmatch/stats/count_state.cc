// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
// depmatch-lint: bit-identical-file
//
// Mergeable count state (see count_state.h for the bit-identity
// argument). Everything in this file is integer arithmetic; the only
// floating-point code is EmitMarginal's delegation to the canonical
// slot folds in joint_kernel.h.

#include "depmatch/stats/count_state.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "depmatch/common/thread_pool.h"

namespace depmatch {
namespace {

constexpr uint64_t kDigestSeed = 0xcbf29ce484222325ull;   // FNV-1a offset
constexpr uint64_t kDigestPrime = 0x100000001b3ull;       // FNV-1a prime
// Domain tags keep an Append of rows and a Merge of a state with the
// same counts on distinct digest chains.
constexpr uint64_t kTagAppend = 0x41;  // 'A'
constexpr uint64_t kTagMerge = 0x4d;   // 'M'

uint64_t MixU64(uint64_t h, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (b * 8)) & 0xffu;
    h *= kDigestPrime;
  }
  return h;
}

uint64_t PackCell(uint32_t x_slot, uint32_t y_slot) {
  return (uint64_t{x_slot} << 32) | uint64_t{y_slot};
}

}  // namespace

// ---------------------------------------------------------------------------
// DirtySet

void DirtySet::Reset(size_t n) {
  n_ = n;
  columns_.assign(n, 0);
  pairs_.assign(n * (n > 0 ? n - 1 : 0) / 2, 0);
  any_ = false;
}

void DirtySet::MarkColumn(size_t i) {
  columns_[i] = 1;
  any_ = true;
}

void DirtySet::MarkPair(size_t i, size_t j) {
  if (j < i) std::swap(i, j);
  pairs_[i * n_ - i * (i + 1) / 2 + (j - i - 1)] = 1;
  any_ = true;
}

void DirtySet::MarkAll() {
  std::fill(columns_.begin(), columns_.end(), uint8_t{1});
  std::fill(pairs_.begin(), pairs_.end(), uint8_t{1});
  any_ = n_ > 0;
}

void DirtySet::Clear() {
  std::fill(columns_.begin(), columns_.end(), uint8_t{0});
  std::fill(pairs_.begin(), pairs_.end(), uint8_t{0});
  any_ = false;
}

bool DirtySet::pair(size_t i, size_t j) const {
  if (j < i) std::swap(i, j);
  return pairs_[i * n_ - i * (i + 1) / 2 + (j - i - 1)] != 0;
}

size_t DirtySet::CountDirtyColumns() const {
  size_t count = 0;
  for (uint8_t d : columns_) count += d;
  return count;
}

size_t DirtySet::CountDirtyPairs() const {
  size_t count = 0;
  for (uint8_t d : pairs_) count += d;
  return count;
}

// ---------------------------------------------------------------------------
// ColumnCountState

ColumnCountState ColumnCountState::FromColumn(const Column& column) {
  ColumnCountState state;
  state.type_ = column.type();
  state.dictionary_ = column.dictionary();
  state.index_.reserve(state.dictionary_.size());
  for (size_t k = 0; k < state.dictionary_.size(); ++k) {
    state.index_.emplace(state.dictionary_[k], static_cast<uint32_t>(k + 1));
  }
  state.slot_counts_.assign(state.dictionary_.size() + 1, 0);
  for (int32_t code : column.codes()) {
    ++state.slot_counts_[static_cast<size_t>(code + 1)];
  }
  state.rows_ = column.size();
  return state;
}

uint32_t ColumnCountState::InternValue(const Value& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  dictionary_.push_back(value);
  uint32_t slot = static_cast<uint32_t>(dictionary_.size());
  index_.emplace(dictionary_.back(), slot);
  return slot;
}

ColumnCountState::BatchDelta ColumnCountState::Append(const Column& delta) {
  // Interning the delta's first-appearance dictionary in order gives
  // new values exactly the slots a re-encode of the concatenated rows
  // would assign (count_state.h, "Slot numbering").
  std::vector<uint32_t> trans(delta.dictionary().size() + 1, 0);
  for (size_t k = 0; k < delta.dictionary().size(); ++k) {
    trans[k + 1] = InternValue(delta.dictionary()[k]);
  }
  slot_counts_.resize(dictionary_.size() + 1, 0);

  BatchDelta out;
  out.slots.resize(delta.size());
  out.slot_counts.assign(slot_counts_.size(), 0);
  out.null_count = delta.null_count();
  const std::vector<int32_t>& codes = delta.codes();
  for (size_t r = 0; r < codes.size(); ++r) {
    uint32_t slot = trans[static_cast<size_t>(codes[r] + 1)];
    out.slots[r] = slot;
    ++out.slot_counts[slot];
    ++slot_counts_[slot];
  }
  rows_ += delta.size();
  return out;
}

std::vector<uint32_t> ColumnCountState::MergeFrom(const ColumnCountState& other) {
  std::vector<uint32_t> trans(other.dictionary_.size() + 1, 0);
  for (size_t k = 0; k < other.dictionary_.size(); ++k) {
    trans[k + 1] = InternValue(other.dictionary_[k]);
  }
  slot_counts_.resize(dictionary_.size() + 1, 0);
  for (size_t s = 0; s < trans.size(); ++s) {
    slot_counts_[trans[s]] += other.slot_counts_[s];
  }
  rows_ += other.rows_;
  return trans;
}

ColumnMarginal ColumnCountState::EmitMarginal(NullPolicy policy) const {
  ColumnMarginal marginal;
  marginal.slots = slot_counts_;
  if (policy == NullPolicy::kDropNulls) {
    marginal.slots[0] = 0;
    marginal.total = rows_ - slot_counts_[0];
  } else {
    marginal.total = rows_;
  }
  marginal.support = SupportFromSlots(marginal.slots);
  marginal.entropy = EntropyFromSlots(marginal.slots, marginal.total);
  return marginal;
}

// ---------------------------------------------------------------------------
// PairCountState

template <typename KeyAt, typename CountAt>
void PairCountState::MergeSorted(std::vector<uint64_t>* keys,
                                 std::vector<uint64_t>* counts, size_t n,
                                 KeyAt key_at, CountAt count_at) {
  if (n == 0) return;
  merge_keys_.clear();
  merge_counts_.clear();
  merge_keys_.reserve(keys->size() + n);
  merge_counts_.reserve(keys->size() + n);
  size_t a = 0;
  size_t b = 0;
  while (a < keys->size() && b < n) {
    uint64_t kb = key_at(b);
    if ((*keys)[a] < kb) {
      merge_keys_.push_back((*keys)[a]);
      merge_counts_.push_back((*counts)[a]);
      ++a;
    } else if (kb < (*keys)[a]) {
      merge_keys_.push_back(kb);
      merge_counts_.push_back(count_at(b));
      ++b;
    } else {
      merge_keys_.push_back((*keys)[a]);
      merge_counts_.push_back((*counts)[a] + count_at(b));
      ++a;
      ++b;
    }
  }
  for (; a < keys->size(); ++a) {
    merge_keys_.push_back((*keys)[a]);
    merge_counts_.push_back((*counts)[a]);
  }
  for (; b < n; ++b) {
    merge_keys_.push_back(key_at(b));
    merge_counts_.push_back(count_at(b));
  }
  keys->swap(merge_keys_);
  counts->swap(merge_counts_);
}

void PairCountState::Compact() {
  if (overlay_keys_.empty()) return;
  MergeSorted(
      &keys_, &counts_, overlay_keys_.size(),
      [this](size_t i) { return overlay_keys_[i]; },
      [this](size_t i) { return overlay_counts_[i]; });
  overlay_keys_.clear();
  overlay_counts_.clear();
}

void PairCountState::Reshape(uint32_t dx1, uint32_t dy1, bool dense,
                             bool track_retained) {
  if (track_retained) {
    x_retained_.resize(dx1, 0);
    y_retained_.resize(dy1, 0);
  }
  track_retained_ = track_retained;
  if (dense && dense_) {
    if (dx1 != dx1_ || dy1 != dy1_) {
      // Re-layout the row-major matrix into the grown dims.
      std::vector<uint64_t> grown(size_t{dx1} * dy1, 0);
      for (uint32_t sx = 0; sx < dx1_; ++sx) {
        for (uint32_t sy = 0; sy < dy1_; ++sy) {
          grown[size_t{sx} * dy1 + sy] = dense_cells_[size_t{sx} * dy1_ + sy];
        }
      }
      dense_cells_ = std::move(grown);
    }
  } else if (dense && !dense_) {
    std::vector<uint64_t> cells(size_t{dx1} * dy1, 0);
    ForEachCell([&cells, dy1](uint32_t sx, uint32_t sy, uint64_t count) {
      cells[size_t{sx} * dy1 + sy] = count;
    });
    dense_cells_ = std::move(cells);
    keys_.clear();
    counts_.clear();
    overlay_keys_.clear();
    overlay_counts_.clear();
  } else if (!dense && dense_) {
    // Flat ascending order IS packed-key ascending order, so the sparse
    // arrays come out sorted for free.
    keys_.clear();
    counts_.clear();
    for (size_t flat = 0; flat < dense_cells_.size(); ++flat) {
      if (dense_cells_[flat] == 0) continue;
      keys_.push_back(PackCell(static_cast<uint32_t>(flat / dy1_),
                               static_cast<uint32_t>(flat % dy1_)));
      counts_.push_back(dense_cells_[flat]);
    }
    dense_cells_.clear();
    dense_cells_.shrink_to_fit();
  }
  // Sparse -> sparse needs nothing: packed keys are dim-independent.
  dx1_ = dx1;
  dy1_ = dy1;
  dense_ = dense;
}

void PairCountState::Apply(const JointCounts& batch,
                           const std::vector<uint64_t>& batch_x,
                           const std::vector<uint64_t>& batch_y) {
  total_ += batch.total;
  if (dense_) {
    for (size_t i = 0; i < batch.cell_counts.size(); ++i) {
      dense_cells_[size_t{batch.cell_x_slots[i]} * dy1_ +
                   batch.cell_y_slots[i]] += batch.cell_counts[i];
    }
  } else {
    // Kernel cells arrive in canonical row-major order, which is packed-
    // key ascending order: a single linear merge into the overlay, which
    // is O(overlay + batch), never O(base). The overlay folds into the
    // base only when it outgrows the amortization bound below, so a
    // stream of small appends costs O(delta) each, amortized.
    MergeSorted(
        &overlay_keys_, &overlay_counts_, batch.cell_counts.size(),
        [&batch](size_t i) {
          return PackCell(batch.cell_x_slots[i], batch.cell_y_slots[i]);
        },
        [&batch](size_t i) { return batch.cell_counts[i]; });
    if (overlay_keys_.size() * 16 >= keys_.size() + 4096) Compact();
  }
  if (track_retained_) {
    // Per-pair retained marginals: the kernel's when the batch had nulls
    // to drop, else the batch's own per-column counts (every row
    // retained, and slot 0 is zero because the batch had no nulls).
    const std::vector<uint64_t>& from_x =
        batch.has_marginals ? batch.x_marginals : batch_x;
    const std::vector<uint64_t>& from_y =
        batch.has_marginals ? batch.y_marginals : batch_y;
    for (size_t s = 0; s < from_x.size(); ++s) x_retained_[s] += from_x[s];
    for (size_t s = 0; s < from_y.size(); ++s) y_retained_[s] += from_y[s];
  }
}

void PairCountState::MergeTranslated(const PairCountState& other,
                                     const std::vector<uint32_t>& trans_x,
                                     const std::vector<uint32_t>& trans_y) {
  total_ += other.total_;
  if (track_retained_) {
    for (size_t s = 0; s < other.x_retained_.size(); ++s) {
      x_retained_[trans_x[s]] += other.x_retained_[s];
    }
    for (size_t s = 0; s < other.y_retained_.size(); ++s) {
      y_retained_[trans_y[s]] += other.y_retained_[s];
    }
  }
  if (dense_) {
    other.ForEachCell([&](uint32_t sx, uint32_t sy, uint64_t count) {
      dense_cells_[size_t{trans_x[sx]} * dy1_ + trans_y[sy]] += count;
    });
    return;
  }
  // Translation is injective but not order-preserving (the receiving
  // dictionary interleaves both sides' values), so translated keys must
  // be re-sorted before the linear merge. Keys stay unique. State-to-
  // state merges are O(state) by contract, so both sides fold through
  // the base arrays (the receiver compacts its overlay first).
  Compact();
  std::vector<std::pair<uint64_t, uint64_t>> cells;
  cells.reserve(other.num_cells());
  other.ForEachCell([&](uint32_t sx, uint32_t sy, uint64_t count) {
    cells.emplace_back(PackCell(trans_x[sx], trans_y[sy]), count);
  });
  std::sort(cells.begin(), cells.end());
  MergeSorted(
      &keys_, &counts_, cells.size(),
      [&cells](size_t i) { return cells[i].first; },
      [&cells](size_t i) { return cells[i].second; });
}

void PairCountState::Emit(JointCounts* out, bool has_marginals) const {
  out->total = total_;
  out->cell_x_slots.clear();
  out->cell_y_slots.clear();
  out->cell_counts.clear();
  ForEachCell([out](uint32_t sx, uint32_t sy, uint64_t count) {
    out->cell_x_slots.push_back(sx);
    out->cell_y_slots.push_back(sy);
    out->cell_counts.push_back(count);
  });
  out->has_marginals = has_marginals;
  if (has_marginals) {
    out->x_marginals = x_retained_;
    out->y_marginals = y_retained_;
  } else {
    out->x_marginals.clear();
    out->y_marginals.clear();
  }
  out->used_dense = dense_;
}

double PairCountState::FoldCellWeights(const double* table) const {
  double weighted = 0.0;
  if (dense_) {
    for (uint64_t count : dense_cells_) {
      weighted += CellWeight(table, count);
    }
    return weighted;
  }
  // Walk the base/overlay union in key order, but sum each base run
  // between consecutive overlay keys in a tight counts-only loop (the
  // run boundary comes from one binary search, so base keys are never
  // compared cell by cell).
  size_t a = 0;
  for (size_t b = 0; b < overlay_keys_.size(); ++b) {
    uint64_t kb = overlay_keys_[b];
    size_t run_end = static_cast<size_t>(
        std::lower_bound(keys_.begin() + static_cast<ptrdiff_t>(a),
                         keys_.end(), kb) -
        keys_.begin());
    for (; a < run_end; ++a) weighted += CellWeight(table, counts_[a]);
    if (a < keys_.size() && keys_[a] == kb) {
      weighted += CellWeight(table, counts_[a] + overlay_counts_[b]);
      ++a;
    } else {
      weighted += CellWeight(table, overlay_counts_[b]);
    }
  }
  for (; a < keys_.size(); ++a) weighted += CellWeight(table, counts_[a]);
  return weighted;
}

size_t PairCountState::num_cells() const {
  if (!dense_) {
    // Union size of two sorted unique-key arrays: the overlay is small,
    // so count its keys already present in the base by a forward-moving
    // binary search instead of a full merge walk.
    size_t shared = 0;
    size_t pos = 0;
    for (uint64_t key : overlay_keys_) {
      pos = static_cast<size_t>(
          std::lower_bound(keys_.begin() + static_cast<ptrdiff_t>(pos),
                           keys_.end(), key) -
          keys_.begin());
      if (pos < keys_.size() && keys_[pos] == key) ++shared;
    }
    return keys_.size() + overlay_keys_.size() - shared;
  }
  size_t count = 0;
  for (uint64_t cell : dense_cells_) count += cell != 0 ? 1 : 0;
  return count;
}

// ---------------------------------------------------------------------------
// TableCountState

bool TableCountState::WantDense(uint32_t dx1, uint32_t dy1) const {
  CodeView x{nullptr, static_cast<size_t>(rows_), dx1, 0};
  CodeView y{nullptr, static_cast<size_t>(rows_), dy1, 0};
  if (!JointCountKernel::UseDense(x, y, options_.stats)) return false;
  // The kernels' budget admits one scratch matrix per worker; the state
  // holds every pair's matrix at once, so a tighter ceiling applies.
  return uint64_t{dx1} * uint64_t{dy1} <= options_.dense_state_cell_budget;
}

void TableCountState::ReshapePairs() {
  const bool track_retained =
      options_.stats.null_policy == NullPolicy::kDropNulls;
  size_t n = columns_.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      uint32_t dx1 = columns_[i].num_slots();
      uint32_t dy1 = columns_[j].num_slots();
      pairs_[PairIndex(i, j)].Reshape(dx1, dy1, WantDense(dx1, dy1),
                                      track_retained);
    }
  }
}

Result<TableCountState> TableCountState::FromTable(
    const Table& table, const CountStateOptions& options) {
  if (options.stats.sketch_mode != SketchMode::kOff) {
    return InvalidArgumentError(
        "TableCountState requires exact counts; sketched estimates are not "
        "mergeable (set stats.sketch_mode = kOff)");
  }
  TableCountState state;
  state.schema_ = table.schema();
  state.options_ = options;
  state.rows_ = table.num_rows();
  size_t n = table.num_attributes();
  state.columns_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    state.columns_.push_back(ColumnCountState::FromColumn(table.column(i)));
  }
  state.pairs_.resize(n * (n > 0 ? n - 1 : 0) / 2);
  state.dirty_.Reset(n);
  state.dirty_.MarkAll();
  state.ReshapePairs();

  // One counting pass: the whole table is the first "batch". Slot
  // streams are materialized once (slot = code + 1) and shared by every
  // pair's kernel call.
  std::vector<std::vector<uint32_t>> slots(n);
  std::vector<CodeView> views(n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<int32_t>& codes = table.column(i).codes();
    slots[i].resize(codes.size());
    for (size_t r = 0; r < codes.size(); ++r) {
      slots[i][r] = static_cast<uint32_t>(codes[r] + 1);
    }
    views[i] = CodeView{slots[i].data(), slots[i].size(),
                        state.columns_[i].num_slots(),
                        table.column(i).null_count()};
  }
  std::vector<std::pair<size_t, size_t>> pair_list;
  pair_list.reserve(state.pairs_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) pair_list.emplace_back(i, j);
  }
  size_t workers = std::max<size_t>(1, options.num_threads);
  std::vector<JointCountKernel> kernels(workers);
  ThreadPool::ParallelForWithWorker(
      options.num_threads, pair_list.size(), [&](size_t worker, size_t p) {
        auto [i, j] = pair_list[p];
        const JointCounts& counts =
            kernels[worker].Count(views[i], views[j], state.options_.stats);
        state.pairs_[p].Apply(counts, state.columns_[i].slot_counts(),
                              state.columns_[j].slot_counts());
      });

  state.generation_ = 1;
  uint64_t digest = MixU64(kDigestSeed, kTagAppend);
  digest = MixU64(digest, state.rows_);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t slot : slots[i]) digest = MixU64(digest, slot);
  }
  state.digest_ = digest;
  return state;
}

Status TableCountState::Append(const Table& delta) {
  if (!(delta.schema() == schema_)) {
    return InvalidArgumentError(
        "Append: delta schema does not match the state's schema");
  }
  if (delta.num_rows() == 0) return OkStatus();
  size_t n = columns_.size();
  const bool drop = options_.stats.null_policy == NullPolicy::kDropNulls;

  std::vector<uint64_t> prev_nulls(n);
  for (size_t i = 0; i < n; ++i) prev_nulls[i] = columns_[i].null_count();

  // Column pass (serial: dictionary interning orders must be the
  // concatenation order, and n is small next to rows x pairs).
  std::vector<ColumnCountState::BatchDelta> deltas(n);
  for (size_t i = 0; i < n; ++i) {
    deltas[i] = columns_[i].Append(delta.column(i));
  }
  rows_ += delta.num_rows();
  ReshapePairs();

  // Pair pass: count the delta only — O(delta rows) per pair — and fold
  // the canonical cells into each pair's state.
  std::vector<std::pair<size_t, size_t>> pair_list;
  pair_list.reserve(pairs_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) pair_list.emplace_back(i, j);
  }
  std::vector<uint64_t> delta_totals(pair_list.size(), 0);
  size_t workers = std::max<size_t>(1, options_.num_threads);
  std::vector<JointCountKernel> kernels(workers);
  ThreadPool::ParallelForWithWorker(
      options_.num_threads, pair_list.size(), [&](size_t worker, size_t p) {
        auto [i, j] = pair_list[p];
        CodeView x{deltas[i].slots.data(), deltas[i].slots.size(),
                   columns_[i].num_slots(), deltas[i].null_count};
        CodeView y{deltas[j].slots.data(), deltas[j].slots.size(),
                   columns_[j].num_slots(), deltas[j].null_count};
        const JointCounts& counts =
            kernels[worker].Count(x, y, options_.stats);
        delta_totals[p] = counts.total;
        pairs_[p].Apply(counts, deltas[i].slot_counts, deltas[j].slot_counts);
      });

  if (!drop) {
    // Every total grew: every probability in the table changed.
    dirty_.MarkAll();
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (delta.num_rows() - deltas[i].null_count > 0) dirty_.MarkColumn(i);
    }
    for (size_t p = 0; p < pair_list.size(); ++p) {
      auto [i, j] = pair_list[p];
      bool x_flip = prev_nulls[i] == 0 && deltas[i].null_count > 0;
      bool y_flip = prev_nulls[j] == 0 && deltas[j].null_count > 0;
      if (delta_totals[p] > 0 || x_flip || y_flip) dirty_.MarkPair(i, j);
    }
  }

  ++generation_;
  uint64_t digest = MixU64(digest_, kTagAppend);
  digest = MixU64(digest, delta.num_rows());
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t slot : deltas[i].slots) digest = MixU64(digest, slot);
  }
  digest_ = digest;
  return OkStatus();
}

Status TableCountState::Merge(const TableCountState& other) {
  if (!(other.schema_ == schema_)) {
    return InvalidArgumentError(
        "Merge: states were built over different schemas");
  }
  if (other.options_.stats.null_policy != options_.stats.null_policy) {
    return InvalidArgumentError(
        "Merge: states were counted under different null policies");
  }
  if (other.rows_ == 0) return OkStatus();
  size_t n = columns_.size();
  const bool drop = options_.stats.null_policy == NullPolicy::kDropNulls;

  std::vector<uint64_t> prev_nulls(n);
  for (size_t i = 0; i < n; ++i) prev_nulls[i] = columns_[i].null_count();

  std::vector<std::vector<uint32_t>> trans(n);
  for (size_t i = 0; i < n; ++i) {
    trans[i] = columns_[i].MergeFrom(other.columns_[i]);
  }
  rows_ += other.rows_;
  ReshapePairs();

  std::vector<std::pair<size_t, size_t>> pair_list;
  pair_list.reserve(pairs_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) pair_list.emplace_back(i, j);
  }
  ThreadPool::ParallelForWithWorker(
      options_.num_threads, pair_list.size(), [&](size_t, size_t p) {
        auto [i, j] = pair_list[p];
        pairs_[p].MergeTranslated(other.pairs_[p], trans[i], trans[j]);
      });

  if (!drop) {
    dirty_.MarkAll();
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (other.rows_ - other.columns_[i].null_count() > 0) {
        dirty_.MarkColumn(i);
      }
    }
    for (size_t p = 0; p < pair_list.size(); ++p) {
      auto [i, j] = pair_list[p];
      bool x_flip = prev_nulls[i] == 0 && other.columns_[i].null_count() > 0;
      bool y_flip = prev_nulls[j] == 0 && other.columns_[j].null_count() > 0;
      if (other.pairs_[p].total() > 0 || x_flip || y_flip) {
        dirty_.MarkPair(i, j);
      }
    }
  }

  ++generation_;
  digest_ = MixU64(MixU64(digest_, kTagMerge), other.digest_);
  return OkStatus();
}

ColumnMarginal TableCountState::EmitMarginal(size_t i) const {
  return columns_[i].EmitMarginal(options_.stats.null_policy);
}

void TableCountState::EmitJoint(size_t i, size_t j, JointCounts* out) const {
  pairs_[PairIndex(i, j)].Emit(out, pair_has_marginals(i, j));
}

bool TableCountState::pair_dense(size_t i, size_t j) const {
  return pairs_[PairIndex(i, j)].dense();
}

}  // namespace depmatch
