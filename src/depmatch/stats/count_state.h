// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Mergeable joint/marginal count state: the data behind an incremental
// Table2DepGraph (graph/incremental_builder.h).
//
// A TableCountState holds, for one table, every per-column marginal
// count vector and every strict-upper-triangle pairwise joint count
// table, in the same slot encoding the exact counting kernels use
// (slot = dictionary code + 1, slot 0 = null; stats/joint_kernel.h).
// Counts are integers, so the state is *mergeable*: Append(delta) and
// Merge(other) combine counts in O(delta rows x pairs) and
// O(state cells), never O(total rows), and the combined state emits
// JointCounts / ColumnMarginal values that are byte-for-byte what one
// cold counting pass over the concatenated table would produce.
//
// Bit-identity argument (the contract incremental_builder_test.cc
// asserts at 1/2/8 threads across dense/sparse kernel strategies):
//   * Slot numbering. The state dictionary extends by first appearance:
//     Append interns the delta column's dictionary in order, and a
//     delta dictionary is itself first-appearance ordered, so a value
//     unseen by the state receives exactly the slot it would get when
//     TableBuilder re-interns the concatenated rows. Slot streams of
//     the concatenated table and of the state therefore coincide.
//   * Cell counts. Every kernel strategy emits cells in canonical
//     row-major (x_slot, y_slot) order with integer counts, and
//     integer addition is exact — so summed per-batch counts equal the
//     one-pass counts, and emission walks cells in the same canonical
//     order every downstream floating-point fold expects.
//   * Marginals. Emitted marginals replay ComputeColumnMarginal's slot
//     fold on the summed counts; under kDropNulls the pair-retained
//     marginals are accumulated additively per batch (from the kernel
//     when the batch had nulls, else the batch's own per-column counts,
//     which cover exactly the retained rows), and the has_marginals
//     flag is re-derived from the *merged* null totals — the same rule
//     the kernel applies to the concatenated columns.
//
// The DirtySet records which columns and pairs an Append/Merge actually
// changed, so a graph refresh recomputes only those entries:
//   * kNullAsSymbol: any non-empty delta changes every probability
//     (all totals grow), so everything is dirty.
//   * kDropNulls: a column is dirty iff the delta added retained
//     (non-null) rows to it; a pair is dirty iff the delta added
//     retained rows to the pair, or a column's null count made the
//     0 -> >0 transition that flips the pair onto per-pair marginals.
//
// Representation mirrors the PR 7 dispatcher split: small pairs keep a
// dense flat matrix (O(1) cell updates), large ones a packed-sparse
// sorted (x_slot << 32 | y_slot) key array. Sparse batches land in a
// small sorted overlay (O(batch) per Append) that is compacted into the
// base array only once it outgrows a fraction of it, keeping Append
// amortized O(delta), never O(state). The choice is per pair,
// re-evaluated as dictionaries grow, and never affects emitted values:
// emission walks base and overlay as one ordered merge.
//
// Thread safety: none — a TableCountState is single-writer, like the
// tables it shadows. Append/Merge internally fan the per-pair counting
// across options.num_threads workers; each pair's integer state is
// touched by exactly one worker, so results are thread-invariant.

#ifndef DEPMATCH_STATS_COUNT_STATE_H_
#define DEPMATCH_STATS_COUNT_STATE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/stats/joint_kernel.h"
#include "depmatch/table/schema.h"
#include "depmatch/table/table.h"
#include "depmatch/table/value.h"

namespace depmatch {

struct CountStateOptions {
  // Null policy and kernel knobs for the per-batch counting passes. The
  // sketch tier is rejected (sketched estimates are not mergeable
  // counts); see TableCountState::FromTable.
  StatsOptions stats;
  // Worker threads for the O(n^2) per-pair passes; results are
  // identical at any value.
  size_t num_threads = 1;
  // Cell ceiling for a pair's *retained* dense matrix. Unlike the
  // kernels' per-worker scratch (one matrix, reused), the state keeps
  // every pair's counts live at once, so the dense form is held to a
  // much smaller footprint before the packed-sparse form takes over.
  // Representation choice never affects emitted values.
  size_t dense_state_cell_budget = size_t{1} << 16;
};

// Which columns and pairs changed since the last ClearDirty().
class DirtySet {
 public:
  DirtySet() = default;
  explicit DirtySet(size_t n) { Reset(n); }

  void Reset(size_t n);
  void MarkColumn(size_t i);
  void MarkPair(size_t i, size_t j);  // unordered; stored upper-triangle
  void MarkAll();
  void Clear();

  size_t num_columns() const { return n_; }
  bool column(size_t i) const { return columns_[i] != 0; }
  bool pair(size_t i, size_t j) const;
  bool any() const { return any_; }
  size_t CountDirtyColumns() const;
  size_t CountDirtyPairs() const;

 private:
  size_t n_ = 0;
  std::vector<uint8_t> columns_;
  // Strict upper triangle, flattened in (i, j > i) order.
  std::vector<uint8_t> pairs_;
  bool any_ = false;
};

// Marginal count state of one column: the state-global dictionary (a
// superset of every ingested batch's dictionary, in concatenated
// first-appearance order) plus per-slot counts.
class ColumnCountState {
 public:
  ColumnCountState() = default;

  // Seeds from a column: adopts its dictionary order and counts.
  static ColumnCountState FromColumn(const Column& column);

  // Per-batch ingestion output: the batch's rows translated into state
  // slots, plus its per-slot counts (sized to the post-append
  // num_slots) — exactly what the pair pass and the kDropNulls
  // retained-marginal bookkeeping consume.
  struct BatchDelta {
    std::vector<uint32_t> slots;
    std::vector<uint64_t> slot_counts;
    uint64_t null_count = 0;
  };

  // Interns the delta's dictionary (first-appearance order preserved)
  // and folds its counts in. Precondition: delta.type() == type().
  BatchDelta Append(const Column& delta);

  // Folds another state in; returns the other-slot -> this-slot
  // translation (index 0, null, maps to 0). Precondition: same type().
  std::vector<uint32_t> MergeFrom(const ColumnCountState& other);

  // The marginal a cold ComputeColumnMarginal over the concatenated
  // column would produce, bit for bit.
  ColumnMarginal EmitMarginal(NullPolicy policy) const;

  DataType type() const { return type_; }
  uint64_t rows() const { return rows_; }
  uint64_t null_count() const { return slot_counts_[0]; }
  uint32_t num_slots() const {
    return static_cast<uint32_t>(dictionary_.size() + 1);
  }
  const std::vector<uint64_t>& slot_counts() const { return slot_counts_; }

 private:
  uint32_t InternValue(const Value& value);

  DataType type_ = DataType::kInt64;
  std::vector<Value> dictionary_;  // first-appearance order
  std::unordered_map<Value, uint32_t, ValueHash> index_;
  std::vector<uint64_t> slot_counts_{0};  // slot 0 = null
  uint64_t rows_ = 0;
};

// Joint count state of one column pair. Dense (flat row-major matrix)
// or packed-sparse (sorted (x_slot << 32 | y_slot) keys + counts);
// both emit identical canonical cells.
class PairCountState {
 public:
  PairCountState() = default;

  // (Re)shapes to the given slot dims and representation, converting
  // counts losslessly. Dims only ever grow.
  void Reshape(uint32_t dx1, uint32_t dy1, bool dense, bool track_retained);

  // Folds one per-batch kernel result in. Cells must be state-space
  // (counted over translated slots with the state's num_slots) and in
  // canonical ascending order — which every kernel strategy guarantees.
  // `batch_x` / `batch_y` are the batch's per-column state-space counts
  // (BatchDelta::slot_counts), used for the retained-marginal fold when
  // the kernel did not supply per-pair marginals.
  void Apply(const JointCounts& batch, const std::vector<uint64_t>& batch_x,
             const std::vector<uint64_t>& batch_y);

  // Folds another pair state in through the column slot translations.
  void MergeTranslated(const PairCountState& other,
                       const std::vector<uint32_t>& trans_x,
                       const std::vector<uint32_t>& trans_y);

  // Reconstructs the cold kernel's output for the concatenated pair.
  // `has_marginals` is the caller's re-derivation of the kernel rule
  // from the merged column null totals.
  void Emit(JointCounts* out, bool has_marginals) const;

  uint64_t total() const { return total_; }
  bool dense() const { return dense_; }
  size_t num_cells() const;

  // Sum of CellWeight(table, count) over the canonical cell stream: the
  // JointEntropyFromCells accumulation applied to this pair without
  // emitting the cells. Bit-identical to folding ForEachCell's stream —
  // dense zero cells contribute table[0] = +0.0, an exact identity on
  // the (non-negative) partial sums, and the sparse walk visits the
  // base/overlay union in the same canonical order — but branch-free on
  // the dense form and key-comparison-free over the sparse base runs,
  // which is what makes a full-matrix MI refresh cheap.
  double FoldCellWeights(const double* table) const;
  // Retained-row marginal accumulators (kDropNulls bookkeeping), state
  // slot space — the vectors Emit copies into JointCounts marginals.
  const std::vector<uint64_t>& x_retained() const { return x_retained_; }
  const std::vector<uint64_t>& y_retained() const { return y_retained_; }

  // Visits every non-zero cell as fn(x_slot, y_slot, count) in canonical
  // row-major order, whichever representation is live. Public so graph
  // refreshes can fold measures over the cell stream directly instead of
  // materializing a JointCounts copy first; the visit order and the
  // integer counts are exactly Emit's.
  template <typename Fn>
  void ForEachCell(Fn fn) const {
    if (dense_) {
      for (size_t flat = 0; flat < dense_cells_.size(); ++flat) {
        uint64_t count = dense_cells_[flat];
        if (count == 0) continue;
        fn(static_cast<uint32_t>(flat / dy1_),
           static_cast<uint32_t>(flat % dy1_), count);
      }
      return;
    }
    // Base and overlay are each sorted with unique keys; a two-way merge
    // visits the union in packed-key (= canonical row-major) order, with
    // duplicate keys summed — integer adds, so the stream equals the
    // compacted array's.
    size_t a = 0;
    size_t b = 0;
    while (a < keys_.size() && b < overlay_keys_.size()) {
      if (keys_[a] < overlay_keys_[b]) {
        fn(static_cast<uint32_t>(keys_[a] >> 32),
           static_cast<uint32_t>(keys_[a] & 0xffffffffu), counts_[a]);
        ++a;
      } else if (overlay_keys_[b] < keys_[a]) {
        fn(static_cast<uint32_t>(overlay_keys_[b] >> 32),
           static_cast<uint32_t>(overlay_keys_[b] & 0xffffffffu),
           overlay_counts_[b]);
        ++b;
      } else {
        fn(static_cast<uint32_t>(keys_[a] >> 32),
           static_cast<uint32_t>(keys_[a] & 0xffffffffu),
           counts_[a] + overlay_counts_[b]);
        ++a;
        ++b;
      }
    }
    for (; a < keys_.size(); ++a) {
      fn(static_cast<uint32_t>(keys_[a] >> 32),
         static_cast<uint32_t>(keys_[a] & 0xffffffffu), counts_[a]);
    }
    for (; b < overlay_keys_.size(); ++b) {
      fn(static_cast<uint32_t>(overlay_keys_[b] >> 32),
         static_cast<uint32_t>(overlay_keys_[b] & 0xffffffffu),
         overlay_counts_[b]);
    }
  }

 private:
  // Linear merge of `n` externally sorted (key, count) cells into the
  // given sorted arrays; key_at / count_at are index -> value callables.
  template <typename KeyAt, typename CountAt>
  void MergeSorted(std::vector<uint64_t>* keys, std::vector<uint64_t>* counts,
                   size_t n, KeyAt key_at, CountAt count_at);
  // Folds the overlay into the base arrays and clears it. Called when
  // the overlay outgrows its amortization bound and before any
  // operation that needs the base arrays alone (representation change,
  // state-to-state merge).
  void Compact();

  uint32_t dx1_ = 1;
  uint32_t dy1_ = 1;
  bool dense_ = false;
  bool track_retained_ = false;
  uint64_t total_ = 0;
  std::vector<uint64_t> dense_cells_;  // dx1_ * dy1_, row-major
  std::vector<uint64_t> keys_;         // packed, ascending
  std::vector<uint64_t> counts_;       // parallel to keys_
  // Recent-batch overlay for the sparse form: sorted, unique, disjoint
  // from nothing (keys may repeat in keys_; ForEachCell sums them).
  std::vector<uint64_t> overlay_keys_;
  std::vector<uint64_t> overlay_counts_;
  // Retained-row marginals (kDropNulls bookkeeping), state-space.
  std::vector<uint64_t> x_retained_;
  std::vector<uint64_t> y_retained_;
  // Scratch for sparse merges, kept to avoid per-batch allocation.
  std::vector<uint64_t> merge_keys_;
  std::vector<uint64_t> merge_counts_;
};

// The full mergeable state of one table: all column states, all pair
// states, the dirty set, and a generation/digest chain for cache
// invalidation (stats/stat_cache.h keys fold the digest in, so an
// append can never alias a pre-append cache entry).
class TableCountState {
 public:
  TableCountState() = default;

  // Cold build: one counting pass over `table` (columns serial, pairs
  // fanned across options.num_threads). Everything starts dirty.
  // Fails with InvalidArgument when options.stats.sketch_mode is not
  // kOff: sketched estimates are not mergeable counts.
  static Result<TableCountState> FromTable(const Table& table,
                                           const CountStateOptions& options);

  // Folds `delta` in: O(delta rows x pairs) counting + cell merges.
  // Fails with InvalidArgument on a schema mismatch.
  Status Append(const Table& delta);

  // Folds another state in: O(state cells), no row is ever re-read.
  // Fails with InvalidArgument on schema / null-policy mismatch.
  Status Merge(const TableCountState& other);

  // Emission: the cold kernel outputs for the concatenated table.
  ColumnMarginal EmitMarginal(size_t i) const;
  void EmitJoint(size_t i, size_t j, JointCounts* out) const;  // i < j

  // Direct read access to a pair's count state (i < j), for folds that
  // stream over PairCountState::ForEachCell instead of materializing
  // EmitJoint's copy. pair_has_marginals is the kernel's per-pair
  // marginal rule re-derived from the merged null totals — exactly the
  // flag EmitJoint would stamp on the emitted JointCounts.
  const PairCountState& pair_state(size_t i, size_t j) const {
    return pairs_[PairIndex(i, j)];
  }
  bool pair_has_marginals(size_t i, size_t j) const {
    return options_.stats.null_policy == NullPolicy::kDropNulls &&
           (columns_[i].null_count() > 0 || columns_[j].null_count() > 0);
  }

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  uint64_t rows() const { return rows_; }
  const CountStateOptions& options() const { return options_; }
  const ColumnCountState& column_state(size_t i) const { return columns_[i]; }
  bool pair_dense(size_t i, size_t j) const;  // i < j

  const DirtySet& dirty() const { return dirty_; }
  void ClearDirty() { dirty_.Clear(); }

  // Monotone ingestion counter (1 after FromTable, +1 per Append/Merge)
  // and the digest chain over ingested content. Two states that saw
  // different row streams have different digests with overwhelming
  // probability; equal streams produce equal digests deterministically.
  uint64_t generation() const { return generation_; }
  uint64_t digest() const { return digest_; }

 private:
  size_t PairIndex(size_t i, size_t j) const {  // i < j
    // Strict upper triangle, row-major: row i starts after
    // i*n - i*(i+1)/2 pairs.
    size_t n = columns_.size();
    return i * n - i * (i + 1) / 2 + (j - i - 1);
  }
  // Applies the crossover rule for a pair's retained representation.
  bool WantDense(uint32_t dx1, uint32_t dy1) const;
  void ReshapePairs();

  Schema schema_;
  CountStateOptions options_;
  std::vector<ColumnCountState> columns_;
  std::vector<PairCountState> pairs_;  // strict upper triangle
  DirtySet dirty_;
  uint64_t rows_ = 0;
  uint64_t generation_ = 0;
  uint64_t digest_ = 0;
};

}  // namespace depmatch

#endif  // DEPMATCH_STATS_COUNT_STATE_H_
