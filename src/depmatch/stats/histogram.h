// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Frequency histograms over dictionary-encoded columns.
//
// The information-theoretic quantities in the paper (Definitions 2.1-2.3)
// are plug-in estimates over the empirical marginal p(x) and joint p(x,y)
// distributions of column values. Because columns are dictionary-encoded,
// a histogram is just a count per dictionary code (plus the null count),
// and a joint histogram is a sparse map over code pairs.

#ifndef DEPMATCH_STATS_HISTOGRAM_H_
#define DEPMATCH_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "depmatch/table/column.h"

namespace depmatch {

// Default ceiling on (distinct_x + 1) * (distinct_y + 1) below which the
// pairwise statistics use the dense counting kernel (see joint_kernel.h):
// 2^20 cells = 8 MiB of uint64 counts per worker thread.
inline constexpr size_t kDefaultDenseCellBudget = size_t{1} << 20;

// Auto-tuned dense budget (StatsOptions::auto_dense_budget): a pair whose
// matrix exceeds dense_cell_budget may still count densely when the
// *measured* dictionary sizes give at most min(rows * kDenseAutoCellsPerRow,
// kDenseAutoMaxCells) cells. Touched-cell compaction keeps per-pair work
// O(rows + k log k) regardless of matrix size, so beyond the static budget
// the only cost is scratch memory — capped at 2^25 cells = 256 MiB of
// uint64 counts per worker. The rows factor keeps tiny tables from paying
// a huge first-touch memset for a matrix they barely populate.
inline constexpr size_t kDenseAutoCellsPerRow = 4096;
inline constexpr size_t kDenseAutoMaxCells = size_t{1} << 25;

// How null cells participate in distribution estimates.
enum class NullPolicy {
  // Null is one more symbol of the alphabet. This matches the paper's data
  // handling: its lab-exam columns that are "mostly blank" show *low*
  // entropy in Figure 4(a), which is only true if blank counts as a single
  // very frequent value. Default.
  kNullAsSymbol,
  // Rows containing a null (in either column, for joint estimates) are
  // excluded from the estimate.
  kDropNulls,
};

// Options shared by every pairwise statistic (entropy.h, association.h,
// joint_kernel.h). Lives here, next to NullPolicy, so the counting layer
// and the estimator layer agree on one knob set.
struct StatsOptions {
  NullPolicy null_policy = NullPolicy::kNullAsSymbol;
  // A pair of columns is counted with the dense flat-matrix kernel when
  // (distinct_x + 1) * (distinct_y + 1) <= dense_cell_budget; otherwise
  // the sparse hash-map kernel is used. 0 forces the sparse path.
  size_t dense_cell_budget = kDefaultDenseCellBudget;
  // When true (default), the crossover decision additionally admits pairs
  // whose measured cell count fits min(rows * kDenseAutoCellsPerRow,
  // kDenseAutoMaxCells), so high-cardinality pairs on row-heavy tables
  // stay on the dense kernel instead of falling back to the hash map.
  // Kernel choice is a pure performance knob: results are bit-identical
  // either way. Ignored when dense_cell_budget is 0 (forced sparse).
  bool auto_dense_budget = true;
};

// Marginal frequency histogram of one column.
class Histogram {
 public:
  // Counts value frequencies of `column` under `policy`.
  static Histogram FromColumn(const Column& column, NullPolicy policy);

  // Number of observations contributing to the histogram.
  uint64_t total() const { return total_; }
  // Count per dictionary code (index = code). Does not include nulls.
  const std::vector<uint64_t>& code_counts() const { return code_counts_; }
  // Count of null observations (0 under kDropNulls).
  uint64_t null_count() const { return null_count_; }
  // Number of distinct observed symbols (including null as one symbol if
  // it was observed and the policy keeps it).
  size_t support_size() const;

  // Empirical probability of dictionary code `code`.
  double Probability(int32_t code) const;

 private:
  std::vector<uint64_t> code_counts_;
  uint64_t null_count_ = 0;
  uint64_t total_ = 0;
  bool null_is_symbol_ = true;
};

// Sparse joint frequency histogram of two equal-length columns. Cells are
// keyed by the pair of dictionary codes.
class JointHistogram {
 public:
  // Counts pair frequencies of (x, y) under `policy`. Under kDropNulls,
  // rows where either column is null are skipped; marginal counts returned
  // by x_counts()/y_counts() are over the same retained rows, so that
  // MI(X;Y) = H(X) + H(Y) - H(X,Y) is computed over a consistent sample.
  // Precondition: x.size() == y.size().
  static JointHistogram FromColumns(const Column& x, const Column& y,
                                    NullPolicy policy);

  uint64_t total() const { return total_; }
  // Joint cell counts keyed by PackCodes(x_code, y_code).
  const std::unordered_map<uint64_t, uint64_t>& cells() const {
    return cells_;
  }
  // Marginal counts over the retained rows, keyed by code (null folded in
  // as its own key under kNullAsSymbol).
  const std::unordered_map<int32_t, uint64_t>& x_counts() const {
    return x_counts_;
  }
  const std::unordered_map<int32_t, uint64_t>& y_counts() const {
    return y_counts_;
  }

  // Number of distinct observed (x, y) pairs.
  size_t support_size() const { return cells_.size(); }

  // Packs two codes (null = -1 allowed) into one 64-bit key.
  static uint64_t PackCodes(int32_t x_code, int32_t y_code);

 private:
  std::unordered_map<uint64_t, uint64_t> cells_;
  std::unordered_map<int32_t, uint64_t> x_counts_;
  std::unordered_map<int32_t, uint64_t> y_counts_;
  uint64_t total_ = 0;
};

}  // namespace depmatch

#endif  // DEPMATCH_STATS_HISTOGRAM_H_
