// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Frequency histograms over dictionary-encoded columns.
//
// The information-theoretic quantities in the paper (Definitions 2.1-2.3)
// are plug-in estimates over the empirical marginal p(x) and joint p(x,y)
// distributions of column values. Because columns are dictionary-encoded,
// a histogram is just a count per dictionary code (plus the null count),
// and a joint histogram is a sparse map over code pairs.

#ifndef DEPMATCH_STATS_HISTOGRAM_H_
#define DEPMATCH_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "depmatch/table/column.h"

namespace depmatch {

// ---------------------------------------------------------------------------
// Dense/sparse crossover — the one authoritative statement of the rule.
// (joint_kernel.cc implements it in EffectiveDenseBudget/UseDenseForShape
// and refers here; do not restate the rule elsewhere.)
//
// A pair of columns is counted with the dense kernel iff
// (distinct_x + 1) * (distinct_y + 1) fits the *effective* cell budget.
// The effective budget starts from StatsOptions::dense_cell_budget and,
// when StatsOptions::auto_dense_budget is on, is raised to
//   min(rows * kDenseAutoCellsPerRow, kDenseAutoMaxCells)
// whenever that is larger: the dense strategies keep per-pair work
// O(rows + k log k) for k occupied cells regardless of matrix size (the
// sort-based strategy never even allocates the matrix), so admitting more
// cells only costs bounded scratch. The rows factor keeps tiny tables from
// paying for a matrix they barely populate. A dense_cell_budget of 0
// always forces the sparse path and is never overridden by the auto rule.
//
// Pairs that fail the crossover take the sparse fallback — unless
// StatsOptions::sketch_mode opts into the approximate count-min tier, in
// which case exactly those over-budget pairs are estimated with sketches
// instead (see SketchMode below and stats/joint_sketch.h). Kernel choice
// below the sketch tier is a pure performance knob (dense and sparse are
// bit-identical); the sketch tier is not, which is why it is opt-in and
// keyed separately in caches.
// ---------------------------------------------------------------------------

// Default static ceiling: 2^20 cells = 8 MiB of uint64 counts per worker.
inline constexpr size_t kDefaultDenseCellBudget = size_t{1} << 20;

// Auto-raise parameters (see the crossover comment above). The cap is
// 2^25 cells = 256 MiB of uint64 counts per worker.
inline constexpr size_t kDenseAutoCellsPerRow = 4096;
inline constexpr size_t kDenseAutoMaxCells = size_t{1} << 25;

// How null cells participate in distribution estimates.
enum class NullPolicy {
  // Null is one more symbol of the alphabet. This matches the paper's data
  // handling: its lab-exam columns that are "mostly blank" show *low*
  // entropy in Figure 4(a), which is only true if blank counts as a single
  // very frequent value. Default.
  kNullAsSymbol,
  // Rows containing a null (in either column, for joint estimates) are
  // excluded from the estimate.
  kDropNulls,
};

// How the counting loops inside the exact kernels are implemented. Every
// dispatch produces bit-identical JointCounts (same cells, same canonical
// order, integer counts), so this is a pure performance knob; kScalar is
// kept as the reference the equivalence tests compare against.
enum class JointKernelDispatch {
  // Shape-based strategy selection: per-lane sub-histograms merged once
  // per pair for row-dominated matrices, touched-cell scatter for
  // mid-size matrices, and a streaming radix-sort strategy for matrices
  // past the cache-friendly range (which never allocates the matrix at
  // all). Lane width is fixed at compile time from the target ISA.
  kAuto,
  // The legacy single-lane loops (one scatter increment per row, scan or
  // touched-cell compaction). Reference implementation for bit-identity.
  kScalar,
};

// The approximate tier for pairs whose dense matrix blows the effective
// cell budget (see the crossover comment above). Strictly opt-in: the
// default kOff keeps every pair exact, and the lint's sketch-gate rule
// forbids library code from reaching the sketch kernel except through
// this option.
enum class SketchMode : uint8_t {
  kOff,       // over-budget pairs use the exact sparse fallback (default)
  kCountMin,  // over-budget pairs are estimated with count-min sketches
              // sized from (sketch_epsilon, sketch_delta); see
              // stats/joint_sketch.h for the guarantee
};

// Options shared by every pairwise statistic (entropy.h, association.h,
// joint_kernel.h, joint_sketch.h). Lives here, next to NullPolicy, so the
// counting layer and the estimator layer agree on one knob set.
struct StatsOptions {
  NullPolicy null_policy = NullPolicy::kNullAsSymbol;
  // Static part of the dense/sparse crossover budget; see the
  // authoritative rule in the comment block above kDefaultDenseCellBudget.
  size_t dense_cell_budget = kDefaultDenseCellBudget;
  // Enables the measured-shape auto-raise of the budget (same comment
  // block). Ignored when dense_cell_budget is 0 (forced sparse).
  bool auto_dense_budget = true;
  // Counting-loop implementation for the exact kernels; bit-identical
  // either way (pure performance knob).
  JointKernelDispatch dispatch = JointKernelDispatch::kAuto;
  // Opt-in approximate tier for over-budget pairs. With kCountMin, a pair
  // that fails the dense crossover is estimated by a count-min sketch
  // whose width/depth derive from (sketch_epsilon, sketch_delta): each
  // point count is overestimated by at most sketch_epsilon * N with
  // probability >= 1 - sketch_delta. Results are still deterministic and
  // thread-invariant, but NOT equal to the exact path — callers opt in
  // per pipeline, and caches key sketched values separately.
  SketchMode sketch_mode = SketchMode::kOff;
  double sketch_epsilon = 0.005;
  double sketch_delta = 0.01;
};

// Marginal frequency histogram of one column.
class Histogram {
 public:
  // Counts value frequencies of `column` under `policy`.
  static Histogram FromColumn(const Column& column, NullPolicy policy);

  // Number of observations contributing to the histogram.
  uint64_t total() const { return total_; }
  // Count per dictionary code (index = code). Does not include nulls.
  const std::vector<uint64_t>& code_counts() const { return code_counts_; }
  // Count of null observations (0 under kDropNulls).
  uint64_t null_count() const { return null_count_; }
  // Number of distinct observed symbols (including null as one symbol if
  // it was observed and the policy keeps it).
  size_t support_size() const;

  // Empirical probability of dictionary code `code`.
  double Probability(int32_t code) const;

 private:
  std::vector<uint64_t> code_counts_;
  uint64_t null_count_ = 0;
  uint64_t total_ = 0;
  bool null_is_symbol_ = true;
};

// Sparse joint frequency histogram of two equal-length columns. Cells are
// keyed by the pair of dictionary codes.
class JointHistogram {
 public:
  // Counts pair frequencies of (x, y) under `policy`. Under kDropNulls,
  // rows where either column is null are skipped; marginal counts returned
  // by x_counts()/y_counts() are over the same retained rows, so that
  // MI(X;Y) = H(X) + H(Y) - H(X,Y) is computed over a consistent sample.
  // Precondition: x.size() == y.size().
  static JointHistogram FromColumns(const Column& x, const Column& y,
                                    NullPolicy policy);

  uint64_t total() const { return total_; }
  // Joint cell counts keyed by PackCodes(x_code, y_code).
  const std::unordered_map<uint64_t, uint64_t>& cells() const {
    return cells_;
  }
  // Marginal counts over the retained rows, keyed by code (null folded in
  // as its own key under kNullAsSymbol).
  const std::unordered_map<int32_t, uint64_t>& x_counts() const {
    return x_counts_;
  }
  const std::unordered_map<int32_t, uint64_t>& y_counts() const {
    return y_counts_;
  }

  // Number of distinct observed (x, y) pairs.
  size_t support_size() const { return cells_.size(); }

  // Packs two codes (null = -1 allowed) into one 64-bit key.
  static uint64_t PackCodes(int32_t x_code, int32_t y_code);

 private:
  std::unordered_map<uint64_t, uint64_t> cells_;
  std::unordered_map<int32_t, uint64_t> x_counts_;
  std::unordered_map<int32_t, uint64_t> y_counts_;
  uint64_t total_ = 0;
};

}  // namespace depmatch

#endif  // DEPMATCH_STATS_HISTOGRAM_H_
