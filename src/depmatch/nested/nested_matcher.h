// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Matching nested document collections: flatten both sides to relational
// tables (leaf paths as columns) and run the ordinary two-step
// un-interpreted matcher. This realizes the paper's future-work
// direction of "extending the technique to nested structures".

#ifndef DEPMATCH_NESTED_NESTED_MATCHER_H_
#define DEPMATCH_NESTED_NESTED_MATCHER_H_

#include <string>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/core/schema_matcher.h"
#include "depmatch/nested/document.h"
#include "depmatch/nested/flatten.h"

namespace depmatch {
namespace nested {

struct PathCorrespondence {
  std::string source_path;
  std::string target_path;
};

struct NestedMatchResult {
  std::vector<PathCorrespondence> paths;
  // Underlying flat-table match (metric value, graphs, search stats).
  SchemaMatchResult flat;
};

struct NestedMatchOptions {
  FlattenOptions flatten;
  SchemaMatchOptions match;
};

// Flattens both collections and matches their leaf paths.
Result<NestedMatchResult> MatchNestedCollections(
    const std::vector<NestedValue>& source,
    const std::vector<NestedValue>& target,
    const NestedMatchOptions& options = {});

}  // namespace nested
}  // namespace depmatch

#endif  // DEPMATCH_NESTED_NESTED_MATCHER_H_
