#include "depmatch/nested/flatten.h"

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "depmatch/common/string_util.h"
#include "depmatch/table/schema.h"

namespace depmatch {
namespace nested {
namespace {

// One unnested row: leaf path -> scalar node.
using PartialRow = std::vector<std::pair<std::string, NestedValue>>;

// Expands `node` under `prefix` into the cross-product of its children's
// expansions. Returns an error when the row count exceeds `max_rows`.
Result<std::vector<PartialRow>> Expand(const NestedValue& node,
                                       const std::string& prefix,
                                       size_t max_rows) {
  std::vector<PartialRow> rows;
  switch (node.kind()) {
    case NodeKind::kNull:
      // Explicit null: same as absent (the column shows null).
      rows.push_back({});
      return rows;
    case NodeKind::kBool:
    case NodeKind::kInt:
    case NodeKind::kDouble:
    case NodeKind::kString:
      rows.push_back({{prefix, node}});
      return rows;
    case NodeKind::kArray: {
      if (node.array_size() == 0) {
        rows.push_back({});
        return rows;
      }
      std::string element_prefix = prefix + "[]";
      for (size_t i = 0; i < node.array_size(); ++i) {
        Result<std::vector<PartialRow>> element =
            Expand(node.array_element(i), element_prefix, max_rows);
        if (!element.ok()) return element;
        for (PartialRow& row : element.value()) {
          rows.push_back(std::move(row));
          if (rows.size() > max_rows) {
            return ResourceExhaustedError(StrFormat(
                "document unnests into more than %zu rows", max_rows));
          }
        }
      }
      return rows;
    }
    case NodeKind::kObject: {
      rows.push_back({});
      for (size_t m = 0; m < node.object_size(); ++m) {
        std::string child_prefix =
            prefix.empty() ? node.member_name(m)
                           : prefix + "." + node.member_name(m);
        Result<std::vector<PartialRow>> child =
            Expand(node.member_value(m), child_prefix, max_rows);
        if (!child.ok()) return child;
        // Cartesian merge.
        std::vector<PartialRow> merged;
        merged.reserve(rows.size() * child->size());
        for (const PartialRow& left : rows) {
          for (const PartialRow& right : child.value()) {
            PartialRow combined = left;
            combined.insert(combined.end(), right.begin(), right.end());
            merged.push_back(std::move(combined));
            if (merged.size() > max_rows) {
              return ResourceExhaustedError(StrFormat(
                  "document unnests into more than %zu rows", max_rows));
            }
          }
        }
        rows = std::move(merged);
      }
      return rows;
    }
  }
  return InternalError("unreachable node kind");
}

// Column type lattice: int < double < string.
enum class LeafType { kUnset, kInt, kDouble, kString };

LeafType Join(LeafType a, LeafType b) {
  if (a == LeafType::kUnset) return b;
  if (b == LeafType::kUnset) return a;
  if (a == b) return a;
  if ((a == LeafType::kInt && b == LeafType::kDouble) ||
      (a == LeafType::kDouble && b == LeafType::kInt)) {
    return LeafType::kDouble;
  }
  return LeafType::kString;
}

LeafType TypeOf(const NestedValue& node) {
  switch (node.kind()) {
    case NodeKind::kInt:
      return LeafType::kInt;
    case NodeKind::kDouble:
      return LeafType::kDouble;
    default:
      return LeafType::kString;
  }
}

std::string ScalarToString(const NestedValue& node) {
  switch (node.kind()) {
    case NodeKind::kBool:
      return node.bool_value() ? "true" : "false";
    case NodeKind::kInt:
      return std::to_string(node.int_value());
    case NodeKind::kDouble:
      return StrFormat("%.17g", node.double_value());
    case NodeKind::kString:
      return node.string_value();
    default:
      return "";
  }
}

Value ScalarToValue(const NestedValue& node, LeafType column_type) {
  switch (column_type) {
    case LeafType::kInt:
      return Value(node.int_value());
    case LeafType::kDouble:
      return Value(node.kind() == NodeKind::kInt
                       ? static_cast<double>(node.int_value())
                       : node.double_value());
    default:
      return Value(ScalarToString(node));
  }
}

}  // namespace

Result<Table> FlattenDocuments(const std::vector<NestedValue>& documents,
                               const FlattenOptions& options) {
  // Pass 1: expand every document, collecting paths and types.
  std::vector<std::vector<PartialRow>> expanded;
  expanded.reserve(documents.size());
  std::vector<std::string> paths;                    // first-appearance order
  std::unordered_map<std::string, size_t> path_index;
  std::vector<LeafType> types;

  for (size_t d = 0; d < documents.size(); ++d) {
    if (documents[d].kind() != NodeKind::kObject) {
      return InvalidArgumentError(StrFormat(
          "document %zu is %s, expected an object", d,
          std::string(NodeKindToString(documents[d].kind())).c_str()));
    }
    Result<std::vector<PartialRow>> rows =
        Expand(documents[d], "", options.max_rows_per_document);
    if (!rows.ok()) return rows.status();
    for (const PartialRow& row : rows.value()) {
      for (const auto& [path, node] : row) {
        auto [it, inserted] = path_index.emplace(path, paths.size());
        if (inserted) {
          paths.push_back(path);
          types.push_back(LeafType::kUnset);
        }
        types[it->second] = Join(types[it->second], TypeOf(node));
      }
    }
    expanded.push_back(std::move(rows).value());
  }

  std::vector<AttributeSpec> specs;
  specs.reserve(paths.size());
  for (size_t c = 0; c < paths.size(); ++c) {
    DataType type = DataType::kString;
    if (types[c] == LeafType::kInt) type = DataType::kInt64;
    if (types[c] == LeafType::kDouble) type = DataType::kDouble;
    specs.push_back({paths[c], type});
  }
  Result<Schema> schema = Schema::Create(std::move(specs));
  if (!schema.ok()) return schema.status();

  // Pass 2: materialize rows.
  TableBuilder builder(schema.value());
  std::vector<Value> row_values(paths.size());
  for (const std::vector<PartialRow>& document_rows : expanded) {
    for (const PartialRow& row : document_rows) {
      for (Value& value : row_values) value = Value::Null();
      for (const auto& [path, node] : row) {
        size_t c = path_index.at(path);
        row_values[c] = ScalarToValue(node, types[c]);
      }
      DEPMATCH_RETURN_IF_ERROR(builder.AppendRow(row_values));
    }
  }
  return std::move(builder).Build();
}

}  // namespace nested
}  // namespace depmatch
