#include "depmatch/nested/document.h"

#include "depmatch/common/string_util.h"

namespace depmatch {
namespace nested {
namespace {

void AppendJsonString(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string_view NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kNull:
      return "null";
    case NodeKind::kBool:
      return "bool";
    case NodeKind::kInt:
      return "int";
    case NodeKind::kDouble:
      return "double";
    case NodeKind::kString:
      return "string";
    case NodeKind::kArray:
      return "array";
    case NodeKind::kObject:
      return "object";
  }
  return "unknown";
}

NestedValue NestedValue::Bool(bool v) {
  NestedValue value;
  value.kind_ = NodeKind::kBool;
  value.bool_ = v;
  return value;
}

NestedValue NestedValue::Int(int64_t v) {
  NestedValue value;
  value.kind_ = NodeKind::kInt;
  value.int_ = v;
  return value;
}

NestedValue NestedValue::Double(double v) {
  NestedValue value;
  value.kind_ = NodeKind::kDouble;
  value.double_ = v;
  return value;
}

NestedValue NestedValue::String(std::string v) {
  NestedValue value;
  value.kind_ = NodeKind::kString;
  value.string_ = std::move(v);
  return value;
}

NestedValue NestedValue::Array() {
  NestedValue value;
  value.kind_ = NodeKind::kArray;
  return value;
}

NestedValue NestedValue::Object() {
  NestedValue value;
  value.kind_ = NodeKind::kObject;
  return value;
}

void NestedValue::Set(std::string name, NestedValue value) {
  for (auto& [existing_name, existing_value] : members_) {
    if (existing_name == name) {
      existing_value = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(name), std::move(value));
}

const NestedValue* NestedValue::Find(std::string_view name) const {
  for (const auto& [member_name, member_value] : members_) {
    if (member_name == name) return &member_value;
  }
  return nullptr;
}

std::string NestedValue::ToJson() const {
  std::string out;
  switch (kind_) {
    case NodeKind::kNull:
      out = "null";
      break;
    case NodeKind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case NodeKind::kInt:
      out = std::to_string(int_);
      break;
    case NodeKind::kDouble:
      out = StrFormat("%.17g", double_);
      break;
    case NodeKind::kString:
      AppendJsonString(out, string_);
      break;
    case NodeKind::kArray: {
      out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].ToJson();
      }
      out += ']';
      break;
    }
    case NodeKind::kObject: {
      out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        AppendJsonString(out, members_[i].first);
        out += ':';
        out += members_[i].second.ToJson();
      }
      out += '}';
      break;
    }
  }
  return out;
}

bool operator==(const NestedValue& a, const NestedValue& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case NodeKind::kNull:
      return true;
    case NodeKind::kBool:
      return a.bool_ == b.bool_;
    case NodeKind::kInt:
      return a.int_ == b.int_;
    case NodeKind::kDouble:
      return a.double_ == b.double_;
    case NodeKind::kString:
      return a.string_ == b.string_;
    case NodeKind::kArray:
      return a.array_ == b.array_;
    case NodeKind::kObject:
      return a.members_ == b.members_;
  }
  return false;
}

}  // namespace nested
}  // namespace depmatch
