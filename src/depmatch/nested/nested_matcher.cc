#include "depmatch/nested/nested_matcher.h"

#include <utility>

namespace depmatch {
namespace nested {

Result<NestedMatchResult> MatchNestedCollections(
    const std::vector<NestedValue>& source,
    const std::vector<NestedValue>& target,
    const NestedMatchOptions& options) {
  Result<Table> source_table = FlattenDocuments(source, options.flatten);
  if (!source_table.ok()) return source_table.status();
  Result<Table> target_table = FlattenDocuments(target, options.flatten);
  if (!target_table.ok()) return target_table.status();

  Result<SchemaMatchResult> flat =
      MatchTables(source_table.value(), target_table.value(),
                  options.match);
  if (!flat.ok()) return flat.status();

  NestedMatchResult result;
  for (const Correspondence& c : flat->correspondences) {
    result.paths.push_back({c.source_name, c.target_name});
  }
  result.flat = std::move(flat).value();
  return result;
}

}  // namespace nested
}  // namespace depmatch
