// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// NestedValue: a JSON-like document tree (null, bool, int, double,
// string, array, object). The substrate for the paper's future-work
// direction of matching nested (XML/object) schemas: collections of
// documents are flattened to relational tables (see flatten.h) and
// matched with the ordinary two-step algorithm.
//
// Objects preserve insertion order (so flattened column order is
// deterministic) but look up keys by name.

#ifndef DEPMATCH_NESTED_DOCUMENT_H_
#define DEPMATCH_NESTED_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "depmatch/common/status.h"

namespace depmatch {
namespace nested {

enum class NodeKind {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kArray,
  kObject,
};

std::string_view NodeKindToString(NodeKind kind);

class NestedValue {
 public:
  // Constructs null.
  NestedValue() : kind_(NodeKind::kNull) {}

  static NestedValue Null() { return NestedValue(); }
  static NestedValue Bool(bool v);
  static NestedValue Int(int64_t v);
  static NestedValue Double(double v);
  static NestedValue String(std::string v);
  static NestedValue Array();
  static NestedValue Object();

  NestedValue(const NestedValue&) = default;
  NestedValue& operator=(const NestedValue&) = default;
  NestedValue(NestedValue&&) = default;
  NestedValue& operator=(NestedValue&&) = default;

  NodeKind kind() const { return kind_; }
  bool is_null() const { return kind_ == NodeKind::kNull; }
  bool is_scalar() const {
    return kind_ != NodeKind::kArray && kind_ != NodeKind::kObject;
  }

  // Scalar accessors; preconditions: matching kind().
  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }

  // Array interface; precondition: kind() == kArray.
  size_t array_size() const { return array_.size(); }
  const NestedValue& array_element(size_t i) const { return array_[i]; }
  void Append(NestedValue element) { array_.push_back(std::move(element)); }

  // Object interface; precondition: kind() == kObject.
  size_t object_size() const { return members_.size(); }
  const std::string& member_name(size_t i) const {
    return members_[i].first;
  }
  const NestedValue& member_value(size_t i) const {
    return members_[i].second;
  }
  // Adds or replaces member `name`.
  void Set(std::string name, NestedValue value);
  // Pointer to the member, or nullptr.
  const NestedValue* Find(std::string_view name) const;

  // Compact JSON serialization (stable member order).
  std::string ToJson() const;

  friend bool operator==(const NestedValue& a, const NestedValue& b);
  friend bool operator!=(const NestedValue& a, const NestedValue& b) {
    return !(a == b);
  }

 private:
  NodeKind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<NestedValue> array_;
  std::vector<std::pair<std::string, NestedValue>> members_;
};

}  // namespace nested
}  // namespace depmatch

#endif  // DEPMATCH_NESTED_DOCUMENT_H_
