// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// JSON parsing for the nested-document substrate. Supports the JSON
// subset DepMatch needs: objects, arrays, double-quoted strings with the
// standard escapes (\uXXXX limited to the BMP, encoded as UTF-8),
// integers, doubles, booleans, null. Trailing content after the document
// is an error. Also parses newline-delimited JSON (one document per
// line) for document collections.

#ifndef DEPMATCH_NESTED_JSON_H_
#define DEPMATCH_NESTED_JSON_H_

#include <string>
#include <string_view>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/nested/document.h"

namespace depmatch {
namespace nested {

// Parses one JSON document.
Result<NestedValue> ParseJson(std::string_view text);

// Parses newline-delimited JSON: blank lines are skipped, every other
// line must be a complete document.
Result<std::vector<NestedValue>> ParseJsonLines(std::string_view text);

// Reads and parses a newline-delimited JSON file.
Result<std::vector<NestedValue>> ReadJsonLinesFile(const std::string& path);

}  // namespace nested
}  // namespace depmatch

#endif  // DEPMATCH_NESTED_JSON_H_
