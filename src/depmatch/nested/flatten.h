// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Flattening nested document collections into relational tables, the
// bridge that extends the paper's flat-table matcher to nested (XML /
// JSON / object) schemas:
//
//   * every leaf path becomes a column ("customer.address.city";
//     arrays contribute a "[]" path segment: "orders[].amount"),
//   * every document becomes one row — or several, when it contains
//     arrays: array elements are unnested, sibling arrays combine by
//     cartesian product (standard UNNEST semantics),
//   * paths absent from a document yield nulls.
//
// Column types are inferred across the collection: all-int leafs become
// int64, numeric mixes become double, anything else becomes string
// (booleans render as "true"/"false").

#ifndef DEPMATCH_NESTED_FLATTEN_H_
#define DEPMATCH_NESTED_FLATTEN_H_

#include <cstddef>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/nested/document.h"
#include "depmatch/table/table.h"

namespace depmatch {
namespace nested {

struct FlattenOptions {
  // Upper bound on the rows a single document may unnest into (guards
  // against cartesian blowup of sibling arrays).
  size_t max_rows_per_document = 4096;
};

// Flattens a collection of documents into one table. Documents that are
// not objects are rejected (a relational row needs named fields).
// Column order = first-appearance order of paths across the collection.
Result<Table> FlattenDocuments(const std::vector<NestedValue>& documents,
                               const FlattenOptions& options = {});

}  // namespace nested
}  // namespace depmatch

#endif  // DEPMATCH_NESTED_FLATTEN_H_
