// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// XML ingestion for nested-schema matching ("extending the technique to
// nested structures, for example XML" — the paper's future work).
//
// Supported XML subset: elements with attributes, nested elements, text
// content, self-closing tags, comments, processing instructions /
// declarations (skipped), CDATA sections, and the five predefined
// entities. No DTDs or namespaces-aware processing (prefixes are kept as
// part of the name).
//
// Mapping to NestedValue:
//   * an element becomes an object;
//   * attributes become members named "@attr";
//   * child elements become members by tag name — repeated tags collapse
//     into an array (in document order);
//   * text-only elements become scalars (int64/double inferred, else
//     string); mixed/padded text is kept under "#text";
//   * ParseXml returns {root_tag: <root element value>} so the root tag
//     participates in flattened paths.
//
// A "collection" file is a root element whose children are the
// documents: <records><r>...</r><r>...</r></records>.

#ifndef DEPMATCH_NESTED_XML_H_
#define DEPMATCH_NESTED_XML_H_

#include <string>
#include <string_view>
#include <vector>

#include "depmatch/common/status.h"
#include "depmatch/nested/document.h"

namespace depmatch {
namespace nested {

// Parses one XML document (single root element).
Result<NestedValue> ParseXml(std::string_view text);

// Parses a collection file: returns one document per child element of
// the root, each wrapped as {child_tag: value}.
Result<std::vector<NestedValue>> ParseXmlCollection(std::string_view text);

// Reads and parses a collection file from disk.
Result<std::vector<NestedValue>> ReadXmlCollectionFile(
    const std::string& path);

}  // namespace nested
}  // namespace depmatch

#endif  // DEPMATCH_NESTED_XML_H_
