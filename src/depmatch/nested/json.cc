#include "depmatch/nested/json.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "depmatch/common/string_util.h"

namespace depmatch {
namespace nested {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<NestedValue> ParseDocument() {
    SkipWhitespace();
    Result<NestedValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError(
        StrFormat("JSON parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                        text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    pos_ += keyword.size();
    return true;
  }

  Result<NestedValue> ParseValue() {
    if (AtEnd()) return Error("unexpected end of input");
    char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      Result<std::string> text = ParseString();
      if (!text.ok()) return text.status();
      return NestedValue::String(std::move(text).value());
    }
    if (ConsumeKeyword("true")) return NestedValue::Bool(true);
    if (ConsumeKeyword("false")) return NestedValue::Bool(false);
    if (ConsumeKeyword("null")) return NestedValue::Null();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return Error(StrFormat("unexpected character '%c'", c));
  }

  Result<NestedValue> ParseObject() {
    ++pos_;  // '{'
    NestedValue object = NestedValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected member name");
      Result<std::string> name = ParseString();
      if (!name.ok()) return name.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after member name");
      SkipWhitespace();
      Result<NestedValue> value = ParseValue();
      if (!value.ok()) return value;
      if (object.Find(name.value()) != nullptr) {
        return Error(
            StrFormat("duplicate member '%s'", name.value().c_str()));
      }
      object.Set(std::move(name).value(), std::move(value).value());
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<NestedValue> ParseArray() {
    ++pos_;  // '['
    NestedValue array = NestedValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      SkipWhitespace();
      Result<NestedValue> element = ParseValue();
      if (!element.ok()) return element;
      array.Append(std::move(element).value());
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (AtEnd()) return Error("dangling escape");
      char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Encode BMP code point as UTF-8 (surrogate pairs unsupported).
          if (code >= 0xd800 && code <= 0xdfff) {
            return Error("surrogate pairs are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Error(StrFormat("unknown escape '\\%c'", escape));
      }
    }
  }

  Result<NestedValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    bool is_double = false;
    if (!AtEnd() && Peek() == '.') {
      is_double = true;
      ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      auto parsed = ParseInt64(token);
      if (parsed.has_value()) return NestedValue::Int(*parsed);
      // Integer overflow: fall through to double.
    }
    auto parsed = ParseDouble(token);
    if (!parsed.has_value()) {
      return Error(StrFormat("bad number '%.*s'",
                             static_cast<int>(token.size()), token.data()));
    }
    return NestedValue::Double(*parsed);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<NestedValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

Result<std::vector<NestedValue>> ParseJsonLines(std::string_view text) {
  std::vector<NestedValue> documents;
  size_t line_number = 0;
  for (const std::string& line : SplitString(text, '\n')) {
    ++line_number;
    if (IsBlank(line)) continue;
    Result<NestedValue> document = ParseJson(line);
    if (!document.ok()) {
      return InvalidArgumentError(
          StrFormat("line %zu: %s", line_number,
                    document.status().message().c_str()));
    }
    documents.push_back(std::move(document).value());
  }
  return documents;
}

Result<std::vector<NestedValue>> ReadJsonLinesFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJsonLines(buffer.str());
}

}  // namespace nested
}  // namespace depmatch
