#include "depmatch/nested/xml.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "depmatch/common/string_util.h"

namespace depmatch {
namespace nested {
namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

// Converts element text to a scalar, inferring numerics like the CSV
// loader does.
NestedValue TextToScalar(const std::string& text) {
  auto as_int = ParseInt64(text);
  if (as_int.has_value()) return NestedValue::Int(*as_int);
  auto as_double = ParseDouble(text);
  if (as_double.has_value()) return NestedValue::Double(*as_double);
  return NestedValue::String(text);
}

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  // Parses the whole document; returns {root_tag: value}.
  Result<NestedValue> ParseDocument() {
    SkipMisc();
    if (AtEnd() || Peek() != '<') {
      return Error("expected a root element");
    }
    std::string tag;
    Result<NestedValue> root = ParseElement(tag);
    if (!root.ok()) return root;
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    NestedValue wrapper = NestedValue::Object();
    wrapper.Set(std::move(tag), std::move(root).value());
    return wrapper;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError(StrFormat(
        "XML parse error at offset %zu: %s", pos_, message.c_str()));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool StartsWith(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  void SkipWhitespace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments, PIs/declarations, and DOCTYPE.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (StartsWith("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      if (StartsWith("<?")) {
        size_t end = text_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? text_.size() : end + 2;
        continue;
      }
      if (StartsWith("<!DOCTYPE")) {
        size_t end = text_.find('>', pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 1;
        continue;
      }
      return;
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  // Decodes entities in `raw` (the five predefined + decimal/hex refs).
  Result<std::string> DecodeText(std::string_view raw) {
    std::string out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t end = raw.find(';', i);
      if (end == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, end - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity[0] == '#') {
        long code = 0;
        if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
          code = std::strtol(std::string(entity.substr(2)).c_str(),
                             nullptr, 16);
        } else {
          code = std::strtol(std::string(entity.substr(1)).c_str(),
                             nullptr, 10);
        }
        if (code <= 0 || code > 0x10ffff) {
          return Error("bad character reference");
        }
        // UTF-8 encode.
        unsigned cp = static_cast<unsigned>(code);
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xc0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
          out += static_cast<char>(0xe0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
          out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
          out += static_cast<char>(0xf0 | (cp >> 18));
          out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
          out += static_cast<char>(0x80 | (cp & 0x3f));
        }
      } else {
        return Error(StrFormat("unknown entity '&%s;'",
                               std::string(entity).c_str()));
      }
      i = end;
    }
    return out;
  }

  // Adds `value` as member `name` of `parent`, collapsing repeats into
  // arrays.
  static void AddChild(NestedValue& parent, const std::string& name,
                       NestedValue value) {
    const NestedValue* existing = parent.Find(name);
    if (existing == nullptr) {
      parent.Set(name, std::move(value));
      return;
    }
    if (existing->kind() == NodeKind::kArray) {
      NestedValue array = *existing;
      array.Append(std::move(value));
      parent.Set(name, std::move(array));
      return;
    }
    NestedValue array = NestedValue::Array();
    array.Append(*existing);
    array.Append(std::move(value));
    parent.Set(name, std::move(array));
  }

  // Parses an element starting at '<'; returns its value and sets `tag`.
  Result<NestedValue> ParseElement(std::string& tag) {
    ++pos_;  // '<'
    Result<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    tag = name.value();

    NestedValue element = NestedValue::Object();
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '/' || Peek() == '>') break;
      Result<std::string> attr = ParseName();
      if (!attr.ok()) return attr.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '='");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected a quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      Result<std::string> decoded =
          DecodeText(text_.substr(start, pos_ - start));
      if (!decoded.ok()) return decoded.status();
      ++pos_;  // closing quote
      if (element.Find("@" + attr.value()) != nullptr) {
        return Error(
            StrFormat("duplicate attribute '%s'", attr.value().c_str()));
      }
      element.Set("@" + attr.value(),
                  TextToScalar(std::move(decoded).value()));
    }

    if (Peek() == '/') {
      ++pos_;
      if (AtEnd() || Peek() != '>') return Error("malformed self-close");
      ++pos_;
      return Finalize(std::move(element), "");
    }
    ++pos_;  // '>'

    // Content: text, children, CDATA, comments.
    std::string text;
    while (true) {
      if (AtEnd()) {
        return Error(StrFormat("unterminated element <%s>", tag.c_str()));
      }
      if (StartsWith("<![CDATA[")) {
        size_t end = text_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return Error("unterminated CDATA section");
        }
        text.append(text_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (StartsWith("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) {
          return Error("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (StartsWith("</")) {
        pos_ += 2;
        Result<std::string> closing = ParseName();
        if (!closing.ok()) return closing.status();
        if (closing.value() != tag) {
          return Error(StrFormat("mismatched close tag </%s> for <%s>",
                                 closing.value().c_str(), tag.c_str()));
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("malformed close tag");
        ++pos_;
        return Finalize(std::move(element), text);
      }
      if (Peek() == '<') {
        std::string child_tag;
        Result<NestedValue> child = ParseElement(child_tag);
        if (!child.ok()) return child;
        AddChild(element, child_tag, std::move(child).value());
        continue;
      }
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      Result<std::string> decoded =
          DecodeText(text_.substr(start, pos_ - start));
      if (!decoded.ok()) return decoded.status();
      text += decoded.value();
    }
  }

  // Folds collected text into the element: a childless, attribute-free
  // element with text becomes a scalar; otherwise non-blank text is kept
  // under "#text".
  static Result<NestedValue> Finalize(NestedValue element,
                                      const std::string& text) {
    std::string stripped(StripWhitespace(text));
    if (element.object_size() == 0) {
      if (stripped.empty()) return NestedValue::Null();
      return TextToScalar(stripped);
    }
    if (!stripped.empty()) {
      element.Set("#text", NestedValue::String(stripped));
    }
    return element;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<NestedValue> ParseXml(std::string_view text) {
  return XmlParser(text).ParseDocument();
}

Result<std::vector<NestedValue>> ParseXmlCollection(std::string_view text) {
  Result<NestedValue> document = ParseXml(text);
  if (!document.ok()) return document.status();
  // document = {root_tag: root_value}.
  if (document->object_size() != 1) {
    return InternalError("unexpected document wrapper shape");
  }
  const NestedValue& root = document->member_value(0);
  if (root.kind() != NodeKind::kObject) {
    return InvalidArgumentError(
        "collection root must contain child elements");
  }
  std::vector<NestedValue> documents;
  for (size_t m = 0; m < root.object_size(); ++m) {
    const std::string& name = root.member_name(m);
    if (!name.empty() && (name[0] == '@' || name[0] == '#')) {
      continue;  // root attributes/text are not documents
    }
    const NestedValue& member = root.member_value(m);
    if (member.kind() == NodeKind::kArray) {
      for (size_t i = 0; i < member.array_size(); ++i) {
        NestedValue wrapper = NestedValue::Object();
        wrapper.Set(name, member.array_element(i));
        documents.push_back(std::move(wrapper));
      }
    } else {
      NestedValue wrapper = NestedValue::Object();
      wrapper.Set(name, member);
      documents.push_back(std::move(wrapper));
    }
  }
  return documents;
}

Result<std::vector<NestedValue>> ReadXmlCollectionFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseXmlCollection(buffer.str());
}

}  // namespace nested
}  // namespace depmatch
