// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// bench_service: closed-loop load generator for the matching service.
//
// Starts an in-process ServiceServer (AF_UNIX socket, the same daemon
// core depmatch_serve runs) over a synthetic banded corpus, then:
//
//   identity   serves one of each request type and asserts the served
//              response is bit-identical to a direct library call
//              against the snapshot named in the response — framing,
//              batching, and caching must be unobservable in results;
//   load       N closed-loop clients (own connection, own thread) each
//              issue DEPMATCH_BENCH_REPS stored-entry searches
//              back-to-back, at N = 1 / 4 / 16; reports sustained QPS
//              and p50/p99 latency per N, plus the dispatcher's
//              micro-batch counters, and post-hoc re-verifies every
//              single response bit-for-bit;
//   overload   a paused dispatcher and max_queue senders + more:
//              exactly max_queue are admitted, the rest must come back
//              kOverloaded immediately (bounded queueing — shedding
//              latency is reported, not hidden in the tail), and
//              deadlined requests that out-wait their deadline in the
//              queue come back kDeadlineExceeded, not late-served.
//
// Headline (tools/bench_gate.sh): serve_p99_ms — the 1-client p99, the
// least scheduler-sensitive of the latency digests.
//
//   DEPMATCH_BENCH_REPS  requests per client (default 40)
//   --smoke              tiny corpus / 2 clients; exit 2 on any
//                        identity or overload-bound failure

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "depmatch/common/logging.h"
#include "depmatch/core/graph_catalog.h"
#include "depmatch/common/string_util.h"
#include "depmatch/datagen/graph_corpus.h"
#include "depmatch/service/client.h"
#include "depmatch/service/match_service.h"
#include "depmatch/service/protocol.h"
#include "depmatch/service/server.h"
#include "depmatch/table/table.h"

namespace depmatch {
namespace {

using service::MatchService;
using service::Request;
using service::RequestType;
using service::Response;
using service::SearchSource;
using service::ServiceClient;
using service::ServiceOptions;
using service::ServiceServer;
using service::ServiceSnapshot;
using service::WireMatchOptions;
using service::WireStatus;

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

// Bitwise comparison of served vs. direct search responses: every hit,
// every ranking key, every pair.
bool SameSearchResponse(const Response& served, const Response& direct) {
  if (served.status != direct.status) return false;
  if (served.search.hits.size() != direct.search.hits.size()) return false;
  for (size_t i = 0; i < served.search.hits.size(); ++i) {
    const auto& a = served.search.hits[i];
    const auto& b = direct.search.hits[i];
    if (a.name != b.name || a.entry != b.entry || a.pairs != b.pairs ||
        !BitEqual(a.ranking_key, b.ranking_key) ||
        !BitEqual(a.normalized_score, b.normalized_score) ||
        !BitEqual(a.metric_value, b.metric_value)) {
      return false;
    }
  }
  return true;
}

bool SameMatchResponse(const Response& served, const Response& direct) {
  if (served.status != direct.status) return false;
  if (!BitEqual(served.match.metric_value, direct.match.metric_value))
    return false;
  if (served.match.correspondences.size() !=
      direct.match.correspondences.size())
    return false;
  for (size_t i = 0; i < served.match.correspondences.size(); ++i) {
    const auto& a = served.match.correspondences[i];
    const auto& b = direct.match.correspondences[i];
    if (a.source_index != b.source_index ||
        a.target_index != b.target_index ||
        a.source_name != b.source_name || a.target_name != b.target_name) {
      return false;
    }
  }
  return true;
}

// Search options used for every catalog search in the bench. The wire
// default (exhaustive branch-and-bound) is exact but its cost explodes
// on the corpus's widest entries (up to 16 columns), turning a handful
// of queries into multi-second outliers that would swamp the p99 the
// gate tracks. Serving uses simulated annealing like bench_catalog:
// polynomial per candidate, deterministic for a fixed seed, and
// bit-identical between the served and direct execution paths.
WireMatchOptions BenchSearchOptions() {
  WireMatchOptions options;
  options.algorithm = MatchAlgorithm::kSimulatedAnnealing;
  return options;
}

// Small deterministic tables for the inline-table request types.
Table MakeBenchTable(size_t columns, size_t rows, uint64_t seed) {
  std::vector<AttributeSpec> attrs;
  for (size_t c = 0; c < columns; ++c) {
    attrs.push_back({StrFormat("c%zu", c), DataType::kInt64});
  }
  Result<Schema> schema = Schema::Create(std::move(attrs));
  DEPMATCH_CHECK(schema.ok());
  TableBuilder builder(*schema);
  // Correlated integer columns (column c depends on column 0 with a
  // period that differs per column) so the dependency graph has
  // structure worth matching.
  for (size_t r = 0; r < rows; ++r) {
    uint64_t base = (seed + r * 2654435761u) % 16;
    for (size_t c = 0; c < columns; ++c) {
      uint64_t value = c == 0 ? base : (base >> (c % 4)) + c * (r % (c + 2));
      builder.AppendValue(c, Value(static_cast<int64_t>(value % 23)));
    }
  }
  Result<Table> table = std::move(builder).Build();
  DEPMATCH_CHECK(table.ok());
  return *std::move(table);
}

struct LoadPhase {
  size_t clients = 0;
  size_t requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  benchutil::LatencySummary latency;
  uint64_t batches = 0;
  uint64_t batched_requests = 0;
  bool identical = false;
};

struct OverloadReport {
  size_t max_queue = 0;
  size_t senders = 0;
  size_t served = 0;
  size_t shed_overloaded = 0;
  double shed_max_ms = 0.0;
  size_t deadline_senders = 0;
  size_t deadline_shed = 0;
  bool bounded = false;
};

struct ServerHandle {
  std::string socket_path;
  std::unique_ptr<ServiceServer> server;

  MatchService& match_service() { return server->match_service(); }
};

ServerHandle StartServer(size_t corpus_entries, ServiceOptions options,
                         const char* tag) {
  GraphCatalog catalog;
  GraphCorpusOptions corpus;
  for (size_t i = 0; i < corpus_entries; ++i) {
    Status inserted =
        catalog.Insert(CorpusEntryName(i), CorpusEntry(corpus, i));
    DEPMATCH_CHECK(inserted.ok());
  }
  options.snapshot_history = 8;
  auto match_service =
      std::make_unique<MatchService>(std::move(catalog), options);
  service::ServerOptions server_options;
  server_options.socket_path =
      StrFormat("/tmp/depmatch_bench_%d_%s.sock", getpid(), tag);
  ServerHandle handle;
  handle.socket_path = server_options.socket_path;
  handle.server = std::make_unique<ServiceServer>(std::move(match_service),
                                                  std::move(server_options));
  Status started = handle.server->Start();
  DEPMATCH_CHECK(started.ok());
  return handle;
}

// One of each request type through the socket, each compared
// bit-for-bit against the direct library execution path.
bool RunIdentityGate(ServerHandle& server) {
  Result<ServiceClient> client = ServiceClient::Connect(server.socket_path);
  DEPMATCH_CHECK(client.ok());
  bool all_identical = true;

  // Match two inline tables.
  Table source = MakeBenchTable(5, 160, 3);
  Table target = MakeBenchTable(5, 160, 3 + 64);
  Result<Response> match = client->MatchTables(source, target);
  if (match.ok()) {
    Request direct_request;
    direct_request.type = RequestType::kMatchTables;
    direct_request.request_id = match->request_id;
    direct_request.match.source = source;
    direct_request.match.target = target;
    Response direct =
        MatchService::ExecuteMatchDirect(direct_request, nullptr);
    all_identical = all_identical && SameMatchResponse(*match, direct);
  } else {
    all_identical = false;
  }

  // Top-k search for a stored entry, verified against the exact
  // snapshot the response names.
  Request search_request;
  search_request.type = RequestType::kSearch;
  search_request.search.source = SearchSource::kStoredEntry;
  search_request.search.stored_name = CorpusEntryName(0);
  search_request.search.k = 5;
  search_request.search.options = BenchSearchOptions();
  Result<Response> stored =
      client->SearchStored(CorpusEntryName(0), /*k=*/5, BenchSearchOptions());
  if (stored.ok() && stored->status == WireStatus::kOk) {
    auto snapshot = server.match_service().SnapshotAt(
        stored->search.snapshot_version);
    DEPMATCH_CHECK(snapshot != nullptr);
    search_request.request_id = stored->request_id;
    Response direct = MatchService::ExecuteSearchDirect(
        search_request, *snapshot, server.match_service().options());
    all_identical = all_identical && SameSearchResponse(*stored, direct);
  } else {
    all_identical = false;
  }

  // Insert (copy-on-write snapshot swap), then search with an inline
  // table and check the new entry is visible in the new snapshot.
  Table inline_table = MakeBenchTable(8, 200, 11);
  Result<Response> inserted =
      client->InsertTable("bench_inline", inline_table);
  if (!inserted.ok() || inserted->status != WireStatus::kOk) {
    all_identical = false;
  }
  Result<Response> inline_search =
      client->SearchTable(inline_table, 3, BenchSearchOptions());
  if (inline_search.ok() && inline_search->status == WireStatus::kOk) {
    auto snapshot = server.match_service().SnapshotAt(
        inline_search->search.snapshot_version);
    DEPMATCH_CHECK(snapshot != nullptr);
    Request direct_request;
    direct_request.type = RequestType::kSearch;
    direct_request.request_id = inline_search->request_id;
    direct_request.search.source = SearchSource::kInlineTable;
    direct_request.search.table = inline_table;
    direct_request.search.k = 3;
    direct_request.search.options = BenchSearchOptions();
    Response direct = MatchService::ExecuteSearchDirect(
        direct_request, *snapshot, server.match_service().options());
    all_identical =
        all_identical && SameSearchResponse(*inline_search, direct);
    // The freshly inserted identical table must be its own best hit.
    all_identical = all_identical &&
                    !inline_search->search.hits.empty() &&
                    inline_search->search.hits.front().name ==
                        "bench_inline";
  } else {
    all_identical = false;
  }
  return all_identical;
}

LoadPhase RunLoadPhase(ServerHandle& server, size_t num_clients,
                       size_t requests_per_client, size_t query_entries,
                       uint64_t k) {
  auto stats_before = server.match_service().Stats();

  struct ClientRun {
    std::vector<double> latencies_ms;
    std::vector<Response> responses;
    bool ok = true;
  };
  std::vector<ClientRun> runs(num_clients);
  std::atomic<size_t> failures{0};

  auto t0 = std::chrono::steady_clock::now();
  {
    // depmatch-lint: allow(raw-thread)
    std::vector<std::thread> threads;
    threads.reserve(num_clients);
    for (size_t c = 0; c < num_clients; ++c) {
      // depmatch-lint: allow(raw-thread) — closed-loop load clients
      // must be independent OS threads, each blocking on its own
      // connection.
      threads.emplace_back([&, c] {
        Result<ServiceClient> client =
            ServiceClient::Connect(server.socket_path);
        if (!client.ok()) {
          runs[c].ok = false;
          failures.fetch_add(1);
          return;
        }
        runs[c].latencies_ms.reserve(requests_per_client);
        runs[c].responses.reserve(requests_per_client);
        for (size_t r = 0; r < requests_per_client; ++r) {
          std::string name = CorpusEntryName((c + r) % query_entries);
          auto q0 = std::chrono::steady_clock::now();
          Result<Response> response =
              client->SearchStored(name, k, BenchSearchOptions());
          auto q1 = std::chrono::steady_clock::now();
          if (!response.ok() || response->status != WireStatus::kOk) {
            runs[c].ok = false;
            failures.fetch_add(1);
            return;
          }
          runs[c].latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(q1 - q0).count());
          runs[c].responses.push_back(*std::move(response));
        }
      });
    }
    // depmatch-lint: allow(raw-thread)
    for (std::thread& thread : threads) thread.join();
  }
  auto t1 = std::chrono::steady_clock::now();

  LoadPhase phase;
  phase.clients = num_clients;
  phase.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::vector<double> all_latencies;
  for (const ClientRun& run : runs) {
    all_latencies.insert(all_latencies.end(), run.latencies_ms.begin(),
                         run.latencies_ms.end());
    phase.requests += run.latencies_ms.size();
  }
  phase.qps = phase.wall_ms > 0.0
                  ? static_cast<double>(phase.requests) /
                        (phase.wall_ms / 1000.0)
                  : 0.0;
  phase.latency = benchutil::SummarizeLatencies(std::move(all_latencies));

  auto stats_after = server.match_service().Stats();
  phase.batches = stats_after.batches_total - stats_before.batches_total;
  phase.batched_requests = stats_after.batched_requests_total -
                           stats_before.batched_requests_total;

  // Post-hoc bit-identity: recompute each distinct query once per
  // snapshot version it was served from, directly against that
  // snapshot, and compare every response.
  phase.identical = failures.load() == 0;
  for (const ClientRun& run : runs) {
    if (!run.ok) phase.identical = false;
    for (const Response& response : run.responses) {
      auto snapshot = server.match_service().SnapshotAt(
          response.search.snapshot_version);
      if (snapshot == nullptr) {
        phase.identical = false;
        break;
      }
      Request direct_request;
      direct_request.type = RequestType::kSearch;
      direct_request.request_id = response.request_id;
      direct_request.search.source = SearchSource::kStoredEntry;
      // Recover the queried name from the response's own best hit: a
      // stored-entry query is always its own best match (identity
      // similarity), which the identity gate asserts separately.
      if (response.search.hits.empty()) {
        phase.identical = false;
        break;
      }
      direct_request.search.stored_name = response.search.hits.front().name;
      direct_request.search.k = k;
      direct_request.search.options = BenchSearchOptions();
      Response direct = MatchService::ExecuteSearchDirect(
          direct_request, *snapshot, server.match_service().options());
      if (!SameSearchResponse(response, direct)) {
        phase.identical = false;
        break;
      }
    }
    if (!phase.identical) break;
  }
  return phase;
}

OverloadReport RunOverloadPhase(size_t corpus_entries, size_t max_queue,
                                size_t senders) {
  ServiceOptions options;
  options.max_queue = max_queue;
  OverloadReport report;
  report.max_queue = max_queue;
  report.senders = senders;

  ServerHandle server = StartServer(corpus_entries, options, "overload");
  // Freeze the dispatcher so admission is the only moving part: the
  // queue cannot drain, so of `senders` concurrent requests exactly
  // max_queue are admitted and the rest must shed immediately.
  server.match_service().PauseForTest();

  struct SendOutcome {
    WireStatus status = WireStatus::kInternal;
    double latency_ms = 0.0;
  };
  std::vector<SendOutcome> outcomes(senders);
  std::atomic<size_t> settled{0};
  // depmatch-lint: allow(raw-thread)
  std::vector<std::thread> threads;
  threads.reserve(senders);
  for (size_t i = 0; i < senders; ++i) {
    // depmatch-lint: allow(raw-thread) — each sender must block
    // independently to fill the admission queue.
    threads.emplace_back([&, i] {
      Result<ServiceClient> client =
          ServiceClient::Connect(server.socket_path);
      if (!client.ok()) {
        settled.fetch_add(1);
        return;
      }
      auto q0 = std::chrono::steady_clock::now();
      Result<Response> response =
          client->SearchStored(CorpusEntryName(0), /*k=*/3,
                               BenchSearchOptions());
      auto q1 = std::chrono::steady_clock::now();
      if (response.ok()) {
        outcomes[i].status = response->status;
        outcomes[i].latency_ms =
            std::chrono::duration<double, std::milli>(q1 - q0).count();
      }
      settled.fetch_add(1);
    });
  }

  // Wait until every sender either shed (immediately) or is parked in
  // the queue, then release the dispatcher.
  size_t expect_shed = senders > max_queue ? senders - max_queue : 0;
  auto wait_start = std::chrono::steady_clock::now();
  for (;;) {
    size_t done = settled.load();
    size_t queued = server.match_service().QueueDepthForTest();
    if (done >= expect_shed && queued >= senders - done) break;
    if (std::chrono::steady_clock::now() - wait_start >
        std::chrono::seconds(30)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.match_service().ResumeForTest();
  // depmatch-lint: allow(raw-thread)
  for (std::thread& thread : threads) thread.join();

  for (const SendOutcome& outcome : outcomes) {
    if (outcome.status == WireStatus::kOk) {
      ++report.served;
    } else if (outcome.status == WireStatus::kOverloaded) {
      ++report.shed_overloaded;
      report.shed_max_ms = std::max(report.shed_max_ms, outcome.latency_ms);
    }
  }

  // Deadline shedding: park requests behind a paused dispatcher with a
  // deadline shorter than the pause; they must come back
  // kDeadlineExceeded, not late-served.
  server.match_service().PauseForTest();
  report.deadline_senders = 2;
  // depmatch-lint: allow(raw-thread)
  std::vector<std::thread> deadline_threads;
  std::atomic<size_t> deadline_shed{0};
  for (size_t i = 0; i < report.deadline_senders; ++i) {
    // depmatch-lint: allow(raw-thread) — see above.
    deadline_threads.emplace_back([&] {
      Result<ServiceClient> client =
          ServiceClient::Connect(server.socket_path);
      if (!client.ok()) return;
      Result<Response> response =
          client->SearchStored(CorpusEntryName(0), /*k=*/3,
                               BenchSearchOptions(), /*deadline_ms=*/20);
      if (response.ok() &&
          response->status == WireStatus::kDeadlineExceeded) {
        deadline_shed.fetch_add(1);
      }
    });
  }
  // Out-wait the deadline before releasing the dispatcher.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  server.match_service().ResumeForTest();
  // depmatch-lint: allow(raw-thread)
  for (std::thread& thread : deadline_threads) thread.join();
  report.deadline_shed = deadline_shed.load();

  server.server->Stop();

  report.bounded = report.served == std::min(senders, max_queue) &&
                   report.shed_overloaded == expect_shed &&
                   report.deadline_shed == report.deadline_senders;
  return report;
}

int Run(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  size_t corpus_entries = smoke ? 12 : 48;
  size_t query_entries = smoke ? 4 : 8;
  size_t reps = smoke ? 4 : 40;
  if (const char* raw = std::getenv("DEPMATCH_BENCH_REPS")) {
    auto parsed = ParseInt64(raw);
    if (parsed.has_value() && *parsed > 0) {
      reps = static_cast<size_t>(*parsed);
    }
  }
  std::vector<size_t> client_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 4, 16};

  ServiceOptions options;
  options.max_queue = 64;
  options.max_batch = 8;
  ServerHandle server = StartServer(corpus_entries, options, "load");

  std::fprintf(stderr, "bench_service: identity gate ...\n");
  bool identity = RunIdentityGate(server);
  std::fprintf(stderr, "bench_service: identity %s\n",
               identity ? "ok" : "FAILED");

  std::vector<LoadPhase> phases;
  for (size_t clients : client_counts) {
    std::fprintf(stderr,
                 "bench_service: load %zu client(s) x %zu requests ...\n",
                 clients, reps);
    phases.push_back(
        RunLoadPhase(server, clients, reps, query_entries, /*k=*/5));
    const LoadPhase& phase = phases.back();
    std::fprintf(stderr,
                 "bench_service:   %zu req in %.1f ms = %.0f QPS, p50 "
                 "%.2f ms p99 %.2f ms, batches %llu/%llu, identical %s\n",
                 phase.requests, phase.wall_ms, phase.qps,
                 phase.latency.p50_ms, phase.latency.p99_ms,
                 static_cast<unsigned long long>(phase.batches),
                 static_cast<unsigned long long>(phase.batched_requests),
                 phase.identical ? "true" : "FALSE");
  }
  server.server->Stop();

  std::fprintf(stderr, "bench_service: overload ...\n");
  OverloadReport overload =
      RunOverloadPhase(smoke ? 6 : 12, smoke ? 2 : 4, smoke ? 6 : 12);
  std::fprintf(stderr,
               "bench_service:   served %zu shed %zu (max %.2f ms) "
               "deadline-shed %zu/%zu bounded %s\n",
               overload.served, overload.shed_overloaded,
               overload.shed_max_ms, overload.deadline_shed,
               overload.deadline_senders,
               overload.bounded ? "true" : "FALSE");

  bool all_identical = identity;
  for (const LoadPhase& phase : phases) {
    all_identical = all_identical && phase.identical;
  }

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    DEPMATCH_CHECK(out != nullptr);
    std::vector<size_t> exercised;
    for (const LoadPhase& phase : phases) exercised.push_back(phase.clients);
    benchutil::MachineReport machine =
        benchutil::MakeMachineReport(std::move(exercised));

    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"service\",\n");
    std::fprintf(out, "  \"timestamp_utc\": \"%s\",\n",
                 benchutil::IsoTimestampUtc().c_str());
    benchutil::WriteMachineJson(out, machine, "  ", true);
    std::fprintf(out, "  \"config\": {\n");
    std::fprintf(out, "    \"corpus_entries\": %zu,\n", corpus_entries);
    std::fprintf(out, "    \"requests_per_client\": %zu,\n", reps);
    std::fprintf(out, "    \"search_k\": 5,\n");
    std::fprintf(out, "    \"max_queue\": %zu,\n", options.max_queue);
    std::fprintf(out, "    \"max_batch\": %zu\n", options.max_batch);
    std::fprintf(out, "  },\n");
    // Headline: the 1-client p99 (tools/bench_gate.sh greps the first
    // serve_p99_ms in file order).
    const LoadPhase& single = phases.front();
    std::fprintf(out, "  \"headline\": {\n");
    std::fprintf(out, "    \"serve_p99_ms\": %.4f,\n",
                 single.latency.p99_ms);
    std::fprintf(out, "    \"qps_1_client\": %.1f,\n", single.qps);
    std::fprintf(out, "    \"qps_max\": %.1f,\n",
                 [&] {
                   double best = 0.0;
                   for (const LoadPhase& phase : phases)
                     best = std::max(best, phase.qps);
                   return best;
                 }());
    std::fprintf(out, "    \"identical\": %s\n",
                 all_identical ? "true" : "false");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"overload\": {\n");
    std::fprintf(out, "    \"max_queue\": %zu,\n", overload.max_queue);
    std::fprintf(out, "    \"senders\": %zu,\n", overload.senders);
    std::fprintf(out, "    \"served\": %zu,\n", overload.served);
    std::fprintf(out, "    \"shed_overloaded\": %zu,\n",
                 overload.shed_overloaded);
    std::fprintf(out, "    \"shed_max_ms\": %.3f,\n", overload.shed_max_ms);
    std::fprintf(out, "    \"deadline_shed\": %zu,\n",
                 overload.deadline_shed);
    std::fprintf(out, "    \"deadline_senders\": %zu,\n",
                 overload.deadline_senders);
    std::fprintf(out, "    \"bounded\": %s\n",
                 overload.bounded ? "true" : "false");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"results\": [\n");
    for (size_t i = 0; i < phases.size(); ++i) {
      const LoadPhase& phase = phases[i];
      std::fprintf(out, "    {\n");
      std::fprintf(out, "      \"clients\": %zu,\n", phase.clients);
      std::fprintf(out, "      \"requests\": %zu,\n", phase.requests);
      std::fprintf(out, "      \"wall_ms\": %.2f,\n", phase.wall_ms);
      std::fprintf(out, "      \"qps\": %.1f,\n", phase.qps);
      std::fprintf(out, "      \"min_ms\": %.4f,\n", phase.latency.min_ms);
      std::fprintf(out, "      \"mean_ms\": %.4f,\n", phase.latency.mean_ms);
      std::fprintf(out, "      \"p50_ms\": %.4f,\n", phase.latency.p50_ms);
      std::fprintf(out, "      \"p99_ms\": %.4f,\n", phase.latency.p99_ms);
      std::fprintf(out, "      \"max_ms\": %.4f,\n", phase.latency.max_ms);
      std::fprintf(out, "      \"batches\": %llu,\n",
                   static_cast<unsigned long long>(phase.batches));
      std::fprintf(out, "      \"batched_requests\": %llu,\n",
                   static_cast<unsigned long long>(phase.batched_requests));
      std::fprintf(out, "      \"identical\": %s\n",
                   phase.identical ? "true" : "false");
      std::fprintf(out, "    }%s\n", i + 1 < phases.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::fprintf(stderr, "bench_service: wrote %s\n", json_path);
  }

  if (!all_identical || !overload.bounded) {
    std::fprintf(stderr,
                 "bench_service: FAILED (identical=%s bounded=%s)\n",
                 all_identical ? "true" : "false",
                 overload.bounded ? "true" : "false");
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace depmatch

int main(int argc, char** argv) { return depmatch::Run(argc, argv); }
