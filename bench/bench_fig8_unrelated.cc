// Reproduces Figure 8: distance metric values of matching results for a
// related schema pair (census NY - census CA) versus an unrelated pair
// (Lab Exam 1 - census CA).
//
//   8(a) Euclidean metric values, one-to-one and onto mappings
//   8(b) Normal(3.0) metric values, one-to-one and onto mappings
//   8(c) Normal metric values, partial mappings, alpha in {1, 4, 7}
//
// Expected shape: NY-CA Euclidean distance grows much more slowly than
// Lab1-CA's as schemas widen; NY-CA normal values grow while Lab1-CA's
// decline (8(b)) or stay flat (8(c) — with no true matches, partial
// mapping returns minimal matchings for alpha > 1 and maximal ones for
// alpha <= 1, where the metric turns monotonic).

#include <cstdio>

#include "bench_util.h"
#include "depmatch/common/string_util.h"
#include "depmatch/eval/experiment.h"
#include "depmatch/eval/report.h"

namespace {

using depmatch::Cardinality;
using depmatch::MetricKind;
using depmatch::StrFormat;
using depmatch::SubsetExperimentConfig;
using depmatch::TextTable;
using depmatch::benchutil::GraphPair;
using depmatch::benchutil::Knobs;

constexpr size_t kOntoTarget = 22;

// Runs one data point and returns the mean optimized-metric value.
std::string MetricValueCell(const depmatch::DependencyGraph& g1,
                            const depmatch::DependencyGraph& g2,
                            bool related, Cardinality cardinality,
                            MetricKind metric, double alpha, size_t width,
                            size_t target, size_t overlap,
                            const Knobs& knobs, uint64_t seed) {
  SubsetExperimentConfig config;
  config.match.cardinality = cardinality;
  config.match.metric = metric;
  config.match.alpha = alpha;
  config.match.candidates_per_attribute = 3;
  // Unrelated pairs have no near-zero-distance mapping, so the
  // branch-and-bound spends almost all its time proving optimality;
  // cap the search and report the best mapping found (the figure needs
  // the relative magnitudes, which stabilize within ~1M nodes).
  config.match.max_search_nodes = 1'000'000;
  config.source_size = width;
  config.target_size = target;
  config.overlap = overlap;
  config.schemas_related = related;
  config.iterations = knobs.iterations;
  config.num_threads = knobs.num_threads;
  config.seed = seed;
  auto stats = RunSubsetExperiment(g1, g2, config);
  if (!stats.ok()) return "err";
  return StrFormat("%.2f", stats->mean_metric_value);
}

void RunOneToOneAndOnto(const GraphPair& census,
                        const depmatch::DependencyGraph& lab1,
                        MetricKind metric, double alpha, const char* title,
                        const Knobs& knobs) {
  std::printf("%s (%zu iterations)\n\n", title, knobs.iterations);
  TextTable table;
  table.SetHeader({"width", "1-1 NY-CA", "1-1 Lab1-CA", "Onto NY-CA",
                   "Onto Lab1-CA"});
  for (size_t width = 2; width <= 20; width += 2) {
    uint64_t seed = 4000 + width;
    table.AddRow({
        std::to_string(width),
        MetricValueCell(census.g1, census.g2, true, Cardinality::kOneToOne,
                        metric, alpha, width, width, width, knobs, seed),
        MetricValueCell(lab1, census.g2, false, Cardinality::kOneToOne,
                        metric, alpha, width, width, width, knobs, seed),
        MetricValueCell(census.g1, census.g2, true, Cardinality::kOnto,
                        metric, alpha, width, kOntoTarget, width, knobs,
                        seed),
        MetricValueCell(lab1, census.g2, false, Cardinality::kOnto, metric,
                        alpha, width, kOntoTarget, width, knobs, seed),
    });
  }
  std::printf("%s\n", table.ToString().c_str());
}

void RunPartial(const GraphPair& census,
                const depmatch::DependencyGraph& lab1, const Knobs& knobs) {
  std::printf("Figure 8(c): normal metric values, partial mapping "
              "(12x12 schemas, %zu iterations)\n\n",
              knobs.iterations);
  TextTable table;
  table.SetHeader({"#matches", "NY-CA a=1", "NY-CA a=4", "NY-CA a=7",
                   "Lab1-CA a=1", "Lab1-CA a=4", "Lab1-CA a=7"});
  for (size_t overlap = 2; overlap <= 10; ++overlap) {
    uint64_t seed = 5000 + overlap;
    std::vector<std::string> row = {std::to_string(overlap)};
    for (double alpha : {1.0, 4.0, 7.0}) {
      row.push_back(MetricValueCell(
          census.g1, census.g2, true, Cardinality::kPartial,
          MetricKind::kMutualInfoNormal, alpha, 12, 12, overlap, knobs,
          seed));
    }
    for (double alpha : {1.0, 4.0, 7.0}) {
      // Unrelated pair: "overlap" is nominal (there are no true matches).
      row.push_back(MetricValueCell(
          lab1, census.g2, false, Cardinality::kPartial,
          MetricKind::kMutualInfoNormal, alpha, 12, 12, overlap, knobs,
          seed));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/30);
  GraphPair census = depmatch::benchutil::BuildCensusPair(10000, /*seed=*/7);
  GraphPair lab = depmatch::benchutil::BuildLabPair(10000, /*seed=*/7);

  RunOneToOneAndOnto(
      census, lab.g1, MetricKind::kMutualInfoEuclidean, 3.0,
      "Figure 8(a): Euclidean distance metric values, one-to-one and onto",
      knobs);
  RunOneToOneAndOnto(
      census, lab.g1, MetricKind::kMutualInfoNormal, 3.0,
      "Figure 8(b): Normal(3.0) distance metric values, one-to-one and "
      "onto",
      knobs);
  RunPartial(census, lab.g1, knobs);
  return 0;
}
