// Reproduces Figure 4: attribute entropies of the two data sets.
//
//   4(a) entropies of 30 attributes, lab exam halves, 10K samples
//   4(b) entropies of 30 attributes, census NY/CA,   10K samples
//   4(c) first 10 columns x 10 rows of a lab fragment
//   4(d) first 10 columns x 10 rows of a census fragment
//
// Expected shape: the lab profile spans ~0-10.5 bits with a near-zero
// tail (mostly-null columns); the census profile is denser and higher
// (up to ~13-14 bits) with exactly one low-information attribute; the
// two series of each pair track each other closely.

#include <cstdio>

#include "bench_util.h"
#include "depmatch/common/string_util.h"
#include "depmatch/eval/report.h"
#include "depmatch/graph/graph_builder.h"

namespace {

using depmatch::StrFormat;
using depmatch::TextTable;
using depmatch::benchutil::GraphPair;
using depmatch::benchutil::TablePair;

void PrintEntropies(const char* title, const char* series1,
                    const char* series2, const GraphPair& pair) {
  std::printf("%s\n\n", title);
  TextTable table;
  table.SetHeader({"attr", series1, series2, "|diff|"});
  for (size_t i = 0; i < pair.g1.size(); ++i) {
    double h1 = pair.g1.entropy(i);
    double h2 = pair.g2.entropy(i);
    table.AddRow({std::to_string(i + 1), StrFormat("%.3f", h1),
                  StrFormat("%.3f", h2),
                  StrFormat("%.3f", h1 > h2 ? h1 - h2 : h2 - h1)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  TablePair lab = depmatch::benchutil::BuildLabTables(10000, /*seed=*/7);
  GraphPair lab_graphs = {
      depmatch::BuildDependencyGraph(lab.t1).value(),
      depmatch::BuildDependencyGraph(lab.t2).value(),
  };
  PrintEntropies(
      "Figure 4(a): thrombosis lab exam attribute entropies (10K samples)",
      "Lab Exam 1", "Lab Exam 2", lab_graphs);

  TablePair census =
      depmatch::benchutil::BuildCensusTables(10000, /*seed=*/7);
  GraphPair census_graphs = {
      depmatch::BuildDependencyGraph(census.t1).value(),
      depmatch::BuildDependencyGraph(census.t2).value(),
  };
  PrintEntropies(
      "Figure 4(b): census attribute entropies (10K samples)", "Census NY",
      "Census CA", census_graphs);

  std::printf("Figure 4(c): first ten columns of Lab Exam 1 fragment\n%s\n",
              lab.t1.FormatFragment(10, 10).c_str());
  std::printf("Figure 4(d): first ten columns of Census CA fragment\n%s\n",
              census.t2.FormatFragment(10, 10).c_str());
  return 0;
}
