// Reproduces Figure 5: one-to-one mapping precision vs schema size.
//
// For each dataset (lab exam, census) and each schema width 2..20, draws
// random attribute subsets from the two table halves, matches them with
// the four methods (MI/ET x Euclidean/Normal(3.0)), and reports mean
// precision over the iterations (paper: 50 iterations, 10K samples).
//
// Paper reference points (10K samples, width 20):
//   lab exam:  MI Euclidean ~86%, ET Euclidean ~74%
//   census:    MI Euclidean ~93%, ET Euclidean ~85%
// Expected shape: precision decreases with width; MI > ET; Euclidean >
// Normal.

#include <cstdio>

#include "bench_util.h"
#include "depmatch/eval/experiment.h"
#include "depmatch/eval/report.h"

namespace {

using depmatch::Cardinality;
using depmatch::DependencyGraph;
using depmatch::ExperimentStats;
using depmatch::FormatPercent;
using depmatch::Result;
using depmatch::SubsetExperimentConfig;
using depmatch::TextTable;
using depmatch::benchutil::GraphPair;
using depmatch::benchutil::Knobs;
using depmatch::benchutil::MethodSpec;
using depmatch::benchutil::StandardMethods;

void RunDataset(const char* title, const GraphPair& pair,
                const Knobs& knobs) {
  std::printf("Figure 5: one-to-one mapping precision — %s (10K samples, "
              "%zu iterations)\n\n",
              title, knobs.iterations);
  TextTable table;
  table.SetHeader({"width", "MI Euclidean", "MI Normal(3.0)",
                   "ET Euclidean", "ET Normal(3.0)"});
  for (size_t width = 2; width <= 20; width += 2) {
    std::vector<std::string> row = {std::to_string(width)};
    for (const MethodSpec& method : StandardMethods()) {
      SubsetExperimentConfig config;
      config.match.cardinality = Cardinality::kOneToOne;
      config.match.metric = method.metric;
      config.match.alpha = method.alpha;
      config.match.candidates_per_attribute = 3;
      config.source_size = width;
      config.target_size = width;
      config.iterations = knobs.iterations;
      config.num_threads = knobs.num_threads;
      config.seed = 1000 + width;
      Result<ExperimentStats> stats =
          RunSubsetExperiment(pair.g1, pair.g2, config);
      if (!stats.ok()) {
        row.push_back("err");
        continue;
      }
      row.push_back(FormatPercent(stats->mean_precision));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/50);
  GraphPair lab = depmatch::benchutil::BuildLabPair(10000, /*seed=*/7);
  RunDataset("thrombosis lab exam", lab, knobs);
  GraphPair census = depmatch::benchutil::BuildCensusPair(10000, /*seed=*/7);
  RunDataset("census data", census, knobs);
  return 0;
}
