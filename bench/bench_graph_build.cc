// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// bench_graph_build: times Table2DepGraph (BuildDependencyGraph) across
// row counts, arities, and thread counts, and writes the results as JSON
// (default: BENCH_graph_build.json, overridable as argv[1]) so the perf
// trajectory of the pairwise-statistics hot path is tracked PR over PR.
//
// Modes per configuration:
//   * dense     — the default kernel selection (dense strategy dispatch
//                 wherever the cell budget allows)
//   * scalar    — JointKernelDispatch::kScalar: the legacy single-lane
//                 loops, so the vectorized-vs-scalar gain is visible
//   * sparse    — dense_cell_budget = 0, forcing the sparse fallback
//   * sketch    — dense_cell_budget = 0 + SketchMode::kCountMin, pushing
//                 every pair through the count-min tier (the throughput
//                 ceiling of the approximate path); high-cardinality
//                 configs only
//   * seed_ref  — a faithful replica of the original per-pair path (one
//                 JointHistogram hash map per pair, marginals recomputed
//                 per pair), kept here as the fixed baseline the speedups
//                 are measured against
//
// The bench also asserts that dense, scalar, and sparse builds produce
// identical dependency graphs (exact double equality) before reporting,
// and measures the sketch tier's accuracy (MI deltas and thresholded-edge
// precision/recall vs exact) on the Figure-9 sample-size sweep fixtures.
//
//   DEPMATCH_BENCH_REPS  repetitions per data point (default 5)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "depmatch/common/logging.h"
#include "depmatch/common/string_util.h"
#include "depmatch/common/thread_pool.h"
#include "depmatch/datagen/bayes_net.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/stats/entropy.h"
#include "depmatch/stats/histogram.h"
#include "depmatch/stats/joint_sketch.h"

namespace depmatch {
namespace {

struct Config {
  size_t rows;
  size_t attrs;
  size_t alphabet;
  size_t threads;
};

struct Sample {
  Config config;
  std::string mode;
  size_t reps;
  double min_ms;
  double mean_ms;
};

// Dependency chain with uniform low/high-cardinality alphabets; the
// 10K x 30 @ alphabet 32 point is the acceptance headline.
Table MakeTable(size_t rows, size_t attrs, size_t alphabet) {
  datagen::BayesNetSpec spec;
  for (size_t i = 0; i < attrs; ++i) {
    datagen::AttributeGenSpec attr;
    attr.name = "a" + std::to_string(i);
    attr.alphabet_size = alphabet;
    if (i > 0) {
      attr.parents = {i - 1};
      attr.noise = 0.3;
    }
    spec.attributes.push_back(attr);
  }
  return datagen::GenerateBayesNet(spec, rows, 2).value();
}

// H = log2(N) - (1/N) sum c*log2(c) over an unordered count map — the
// fold the seed implementation used.
template <typename Map>
double SeedEntropyFromMap(const Map& counts, uint64_t total) {
  if (total == 0) return 0.0;
  double weighted = 0.0;
  for (const auto& [key, count] : counts) {
    double c = static_cast<double>(count);
    weighted += c * std::log2(c);
  }
  double n = static_cast<double>(total);
  double h = std::log2(n) - weighted / n;
  return h < 0.0 ? 0.0 : h;
}

// Replica of the seed BuildDependencyGraph hot path: one hash-map joint
// histogram per pair, both marginal entropies recomputed per pair.
DependencyGraph SeedReferenceBuild(const Table& table) {
  size_t n = table.num_attributes();
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) {
    names.push_back(table.schema().attribute(i).name);
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    matrix[i][i] = EntropyOf(table.column(i));
    for (size_t j = i + 1; j < n; ++j) {
      JointHistogram joint = JointHistogram::FromColumns(
          table.column(i), table.column(j), NullPolicy::kNullAsSymbol);
      uint64_t total = joint.total();
      double mi = 0.0;
      if (total > 0) {
        double hx = SeedEntropyFromMap(joint.x_counts(), total);
        double hy = SeedEntropyFromMap(joint.y_counts(), total);
        double hxy = SeedEntropyFromMap(joint.cells(), total);
        mi = hx + hy - hxy;
        if (mi < 0.0) mi = 0.0;
      }
      matrix[i][j] = mi;
      matrix[j][i] = mi;
    }
  }
  return DependencyGraph::Create(std::move(names), std::move(matrix))
      .value();
}

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

Sample Measure(const Table& table, const Config& config,
               const std::string& mode, size_t reps) {
  DependencyGraphOptions options;
  options.num_threads = config.threads;
  if (mode == "sparse") options.stats.dense_cell_budget = 0;
  if (mode == "scalar") {
    options.stats.dispatch = JointKernelDispatch::kScalar;
  }
  if (mode == "sketch") {
    options.stats.dense_cell_budget = 0;
    options.stats.sketch_mode = SketchMode::kCountMin;
  }

  Sample sample{config, mode, reps, 1e300, 0.0};
  for (size_t rep = 0; rep < reps; ++rep) {
    double ms = TimeMs([&] {
      if (mode == "seed_ref") {
        DependencyGraph graph = SeedReferenceBuild(table);
        (void)graph;
      } else {
        Result<DependencyGraph> graph = BuildDependencyGraph(table, options);
        DEPMATCH_CHECK(graph.ok());
      }
    });
    sample.min_ms = std::min(sample.min_ms, ms);
    sample.mean_ms += ms;
  }
  sample.mean_ms /= static_cast<double>(reps);
  return sample;
}

// Exact graph comparison: every exact kernel/strategy must agree
// bit-for-bit.
bool GraphsIdentical(const DependencyGraph& a, const DependencyGraph& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a.size(); ++j) {
      if (a.mi(i, j) != b.mi(i, j)) return false;
    }
  }
  return true;
}

// The committed alphabet-4096 dense minimum before the kernel rework;
// the acceptance bar for the rework is >= 2x below this.
constexpr double kAlphabet4096BaselineMinMs = 428.335;

// Sketch-vs-exact accuracy on one Figure-9 sweep fixture: MI deltas over
// all pairs, plus precision/recall of the "strong edge" set (edges with
// MI >= 20% of the strongest exact edge) when every pair is pushed
// through the sketch tier.
struct SketchAccuracy {
  const char* dataset;
  size_t rows;
  double max_abs_mi_delta = 0.0;
  double mean_abs_mi_delta = 0.0;
  double precision = 1.0;
  double recall = 1.0;
};

SketchAccuracy MeasureSketchAccuracy(const char* dataset, const Table& table,
                                     size_t rows) {
  DependencyGraphOptions exact_options;
  exact_options.num_threads = 1;
  DependencyGraphOptions sketch_options = exact_options;
  sketch_options.stats.dense_cell_budget = 0;
  sketch_options.stats.sketch_mode = SketchMode::kCountMin;

  DependencyGraph exact = BuildDependencyGraph(table, exact_options).value();
  DependencyGraph approx =
      BuildDependencyGraph(table, sketch_options).value();
  DEPMATCH_CHECK_EQ(exact.size(), approx.size());

  SketchAccuracy acc{dataset, rows, 0.0, 0.0, 1.0, 1.0};
  size_t n = exact.size();
  size_t pairs = 0;
  double sum_delta = 0.0;
  double max_exact = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double delta = std::fabs(exact.mi(i, j) - approx.mi(i, j));
      acc.max_abs_mi_delta = std::max(acc.max_abs_mi_delta, delta);
      sum_delta += delta;
      max_exact = std::max(max_exact, exact.mi(i, j));
      ++pairs;
    }
  }
  if (pairs > 0) acc.mean_abs_mi_delta = sum_delta / static_cast<double>(pairs);

  double tau = 0.2 * max_exact;
  size_t true_positive = 0, exact_positive = 0, approx_positive = 0;
  if (tau > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        bool in_exact = exact.mi(i, j) >= tau;
        bool in_approx = approx.mi(i, j) >= tau;
        exact_positive += in_exact ? 1 : 0;
        approx_positive += in_approx ? 1 : 0;
        true_positive += (in_exact && in_approx) ? 1 : 0;
      }
    }
  }
  if (approx_positive > 0) {
    acc.precision = static_cast<double>(true_positive) /
                    static_cast<double>(approx_positive);
  }
  if (exact_positive > 0) {
    acc.recall = static_cast<double>(true_positive) /
                 static_cast<double>(exact_positive);
  }
  return acc;
}

int Run(const std::string& output_path) {
  size_t reps = 5;
  if (const char* raw = std::getenv("DEPMATCH_BENCH_REPS")) {
    auto parsed = ParseInt64(raw);
    if (parsed.has_value() && *parsed > 0) {
      reps = static_cast<size_t>(*parsed);
    }
  }

  // Row-count sweep, arity sweep, thread sweeps on the two headline
  // shapes (alphabet 32 and the high-cardinality alphabet 4096, whose
  // matrices exceed the static cell budget and exercise the auto-raised
  // dense strategies).
  const std::vector<Config> configs = {
      {1000, 30, 32, 1},    {10000, 10, 32, 1},   {10000, 30, 32, 1},
      {50000, 30, 32, 1},   {10000, 30, 32, 2},   {10000, 30, 32, 4},
      {10000, 30, 32, 8},   {10000, 30, 4096, 1}, {10000, 30, 4096, 2},
      {10000, 30, 4096, 4}, {10000, 30, 4096, 8},
  };

  std::vector<Sample> samples;
  bool all_identical = true;
  double headline_seed_ms = 0.0;
  double headline_dense_ms = 0.0;
  double headline4096_dense_ms = 0.0;

  for (const Config& config : configs) {
    Table table = MakeTable(config.rows, config.attrs, config.alphabet);

    // Correctness gate first: dense (auto dispatch), scalar, and sparse
    // builds must all be bit-identical.
    DependencyGraphOptions dense_options;
    dense_options.num_threads = config.threads;
    DependencyGraphOptions scalar_options = dense_options;
    scalar_options.stats.dispatch = JointKernelDispatch::kScalar;
    DependencyGraphOptions sparse_options = dense_options;
    sparse_options.stats.dense_cell_budget = 0;
    Result<DependencyGraph> dense_graph =
        BuildDependencyGraph(table, dense_options);
    Result<DependencyGraph> scalar_graph =
        BuildDependencyGraph(table, scalar_options);
    Result<DependencyGraph> sparse_graph =
        BuildDependencyGraph(table, sparse_options);
    DEPMATCH_CHECK(dense_graph.ok());
    DEPMATCH_CHECK(scalar_graph.ok());
    DEPMATCH_CHECK(sparse_graph.ok());
    if (!GraphsIdentical(dense_graph.value(), scalar_graph.value()) ||
        !GraphsIdentical(dense_graph.value(), sparse_graph.value())) {
      all_identical = false;
    }

    for (const char* mode :
         {"dense", "scalar", "sparse", "sketch", "seed_ref"}) {
      // The seed replica is serial; measuring it under a thread sweep
      // would time a different implementation than the seed shipped. The
      // sketch tier targets high-cardinality pairs, so it is only timed
      // where they occur.
      if (std::string(mode) == "seed_ref" && config.threads != 1) continue;
      if (std::string(mode) == "sketch" && config.alphabet < 4096) continue;
      Sample sample = Measure(table, config, mode, reps);
      std::printf("rows=%-6zu attrs=%-3zu alphabet=%-5zu threads=%zu "
                  "%-8s min %8.2f ms   mean %8.2f ms\n",
                  config.rows, config.attrs, config.alphabet, config.threads,
                  mode, sample.min_ms, sample.mean_ms);
      if (config.rows == 10000 && config.attrs == 30 &&
          config.threads == 1) {
        if (config.alphabet == 32) {
          if (sample.mode == "seed_ref") headline_seed_ms = sample.min_ms;
          if (sample.mode == "dense") headline_dense_ms = sample.min_ms;
        } else if (config.alphabet == 4096 && sample.mode == "dense") {
          headline4096_dense_ms = sample.min_ms;
        }
      }
      samples.push_back(std::move(sample));
    }
  }

  double headline_speedup =
      (headline_dense_ms > 0.0) ? headline_seed_ms / headline_dense_ms : 0.0;
  double headline4096_speedup =
      (headline4096_dense_ms > 0.0)
          ? kAlphabet4096BaselineMinMs / headline4096_dense_ms
          : 0.0;
  std::printf("\nheadline (10K rows x 30 attrs, alphabet 32, 1 thread): "
              "seed %.2f ms -> dense %.2f ms = %.2fx speedup\n",
              headline_seed_ms, headline_dense_ms, headline_speedup);
  std::printf("headline (10K rows x 30 attrs, alphabet 4096, 1 thread): "
              "committed baseline %.2f ms -> dense %.2f ms = %.2fx\n",
              kAlphabet4096BaselineMinMs, headline4096_dense_ms,
              headline4096_speedup);
  std::printf("dense/scalar/sparse graphs identical: %s\n",
              all_identical ? "true" : "false");

  // Sketch-tier accuracy on the Figure-9 sample-size sweep (lab exam and
  // census fixtures at 1K/5K/10K tuples), with every pair forced through
  // the sketch so the deltas measure the tier itself, not its gating.
  const SketchParams sketch_params = SketchParams::FromBounds(
      StatsOptions{}.sketch_epsilon, StatsOptions{}.sketch_delta);
  std::vector<SketchAccuracy> accuracy;
  for (size_t rows : {size_t{1000}, size_t{5000}, size_t{10000}}) {
    accuracy.push_back(MeasureSketchAccuracy(
        "lab_exam", benchutil::BuildLabTables(rows, 7).t1, rows));
    accuracy.push_back(MeasureSketchAccuracy(
        "census", benchutil::BuildCensusTables(rows, 7).t1, rows));
  }
  std::printf("\nsketch accuracy (eps=%.4f del=%.3f -> width=%u depth=%u)\n",
              StatsOptions{}.sketch_epsilon, StatsOptions{}.sketch_delta,
              sketch_params.width, sketch_params.depth);
  for (const SketchAccuracy& acc : accuracy) {
    std::printf("  %-9s rows=%-6zu max|dMI| %.5f  mean|dMI| %.6f  "
                "precision %.3f  recall %.3f\n",
                acc.dataset, acc.rows, acc.max_abs_mi_delta,
                acc.mean_abs_mi_delta, acc.precision, acc.recall);
  }

  std::FILE* out = std::fopen(output_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"graph_build\",\n");
  std::fprintf(out, "  \"timestamp_utc\": \"%s\",\n",
               benchutil::IsoTimestampUtc().c_str());
  benchutil::WriteMachineJson(
      out, benchutil::MakeMachineReport({1, 2, 4, 8}), "  ",
      /*trailing_comma=*/true);
  std::fprintf(out, "  \"dense_sparse_graphs_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"headline\": {\n");
  std::fprintf(out, "    \"config\": \"10000 rows x 30 attrs, alphabet 32, "
                    "1 thread\",\n");
  std::fprintf(out, "    \"seed_ref_min_ms\": %.3f,\n", headline_seed_ms);
  std::fprintf(out, "    \"dense_min_ms\": %.3f,\n", headline_dense_ms);
  std::fprintf(out, "    \"speedup\": %.3f\n", headline_speedup);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"headline_alphabet4096\": {\n");
  std::fprintf(out, "    \"config\": \"10000 rows x 30 attrs, alphabet "
                    "4096, 1 thread\",\n");
  std::fprintf(out, "    \"baseline_min_ms\": %.3f,\n",
               kAlphabet4096BaselineMinMs);
  std::fprintf(out, "    \"dense_min_ms\": %.3f,\n", headline4096_dense_ms);
  std::fprintf(out, "    \"speedup_vs_baseline\": %.3f\n",
               headline4096_speedup);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sketch_accuracy\": {\n");
  std::fprintf(out, "    \"epsilon\": %.6f,\n", StatsOptions{}.sketch_epsilon);
  std::fprintf(out, "    \"delta\": %.6f,\n", StatsOptions{}.sketch_delta);
  std::fprintf(out, "    \"width\": %u,\n", sketch_params.width);
  std::fprintf(out, "    \"depth\": %u,\n", sketch_params.depth);
  std::fprintf(out, "    \"note\": \"Figure-9 sweep fixtures; every pair "
                    "forced through the count-min tier (budget 0); "
                    "precision/recall of edges with MI >= 20%% of the "
                    "strongest exact edge\",\n");
  std::fprintf(out, "    \"sweeps\": [\n");
  for (size_t i = 0; i < accuracy.size(); ++i) {
    const SketchAccuracy& acc = accuracy[i];
    std::fprintf(out,
                 "      {\"dataset\": \"%s\", \"rows\": %zu, "
                 "\"max_abs_mi_delta\": %.6f, \"mean_abs_mi_delta\": %.6f, "
                 "\"precision\": %.4f, \"recall\": %.4f}%s\n",
                 acc.dataset, acc.rows, acc.max_abs_mi_delta,
                 acc.mean_abs_mi_delta, acc.precision, acc.recall,
                 (i + 1 < accuracy.size()) ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"rows\": %zu, \"attrs\": %zu, \"alphabet\": %zu, "
                 "\"threads\": %zu, \"mode\": \"%s\", \"reps\": %zu, "
                 "\"min_ms\": %.3f, \"mean_ms\": %.3f}%s\n",
                 s.config.rows, s.config.attrs, s.config.alphabet,
                 s.config.threads, s.mode.c_str(), s.reps, s.min_ms,
                 s.mean_ms, (i + 1 < samples.size()) ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", output_path.c_str());
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace depmatch

int main(int argc, char** argv) {
  std::string output_path =
      (argc > 1) ? argv[1] : "BENCH_graph_build.json";
  return depmatch::Run(output_path);
}
