// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// bench_graph_build: times Table2DepGraph (BuildDependencyGraph) across
// row counts, arities, and thread counts, and writes the results as JSON
// (default: BENCH_graph_build.json, overridable as argv[1]) so the perf
// trajectory of the pairwise-statistics hot path is tracked PR over PR.
//
// Three modes per configuration:
//   * dense     — the default kernel selection (dense flat-matrix counting
//                 wherever the cell budget allows)
//   * sparse    — dense_cell_budget = 0, forcing the hash-map fallback
//   * seed_ref  — a faithful replica of the original per-pair path (one
//                 JointHistogram hash map per pair, marginals recomputed
//                 per pair), kept here as the fixed baseline the speedups
//                 are measured against
//
// The bench also asserts that dense and sparse builds produce identical
// dependency graphs (exact double equality) before reporting.
//
//   DEPMATCH_BENCH_REPS  repetitions per data point (default 5)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "depmatch/common/logging.h"
#include "depmatch/common/string_util.h"
#include "depmatch/common/thread_pool.h"
#include "depmatch/datagen/bayes_net.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/stats/entropy.h"
#include "depmatch/stats/histogram.h"

namespace depmatch {
namespace {

struct Config {
  size_t rows;
  size_t attrs;
  size_t alphabet;
  size_t threads;
};

struct Sample {
  Config config;
  std::string mode;
  size_t reps;
  double min_ms;
  double mean_ms;
};

// Dependency chain with uniform low/high-cardinality alphabets; the
// 10K x 30 @ alphabet 32 point is the acceptance headline.
Table MakeTable(size_t rows, size_t attrs, size_t alphabet) {
  datagen::BayesNetSpec spec;
  for (size_t i = 0; i < attrs; ++i) {
    datagen::AttributeGenSpec attr;
    attr.name = "a" + std::to_string(i);
    attr.alphabet_size = alphabet;
    if (i > 0) {
      attr.parents = {i - 1};
      attr.noise = 0.3;
    }
    spec.attributes.push_back(attr);
  }
  return datagen::GenerateBayesNet(spec, rows, 2).value();
}

// H = log2(N) - (1/N) sum c*log2(c) over an unordered count map — the
// fold the seed implementation used.
template <typename Map>
double SeedEntropyFromMap(const Map& counts, uint64_t total) {
  if (total == 0) return 0.0;
  double weighted = 0.0;
  for (const auto& [key, count] : counts) {
    double c = static_cast<double>(count);
    weighted += c * std::log2(c);
  }
  double n = static_cast<double>(total);
  double h = std::log2(n) - weighted / n;
  return h < 0.0 ? 0.0 : h;
}

// Replica of the seed BuildDependencyGraph hot path: one hash-map joint
// histogram per pair, both marginal entropies recomputed per pair.
DependencyGraph SeedReferenceBuild(const Table& table) {
  size_t n = table.num_attributes();
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) {
    names.push_back(table.schema().attribute(i).name);
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    matrix[i][i] = EntropyOf(table.column(i));
    for (size_t j = i + 1; j < n; ++j) {
      JointHistogram joint = JointHistogram::FromColumns(
          table.column(i), table.column(j), NullPolicy::kNullAsSymbol);
      uint64_t total = joint.total();
      double mi = 0.0;
      if (total > 0) {
        double hx = SeedEntropyFromMap(joint.x_counts(), total);
        double hy = SeedEntropyFromMap(joint.y_counts(), total);
        double hxy = SeedEntropyFromMap(joint.cells(), total);
        mi = hx + hy - hxy;
        if (mi < 0.0) mi = 0.0;
      }
      matrix[i][j] = mi;
      matrix[j][i] = mi;
    }
  }
  return DependencyGraph::Create(std::move(names), std::move(matrix))
      .value();
}

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

Sample Measure(const Table& table, const Config& config,
               const std::string& mode, size_t reps) {
  DependencyGraphOptions options;
  options.num_threads = config.threads;
  if (mode == "sparse") options.stats.dense_cell_budget = 0;

  Sample sample{config, mode, reps, 1e300, 0.0};
  for (size_t rep = 0; rep < reps; ++rep) {
    double ms = TimeMs([&] {
      if (mode == "seed_ref") {
        DependencyGraph graph = SeedReferenceBuild(table);
        (void)graph;
      } else {
        Result<DependencyGraph> graph = BuildDependencyGraph(table, options);
        DEPMATCH_CHECK(graph.ok());
      }
    });
    sample.min_ms = std::min(sample.min_ms, ms);
    sample.mean_ms += ms;
  }
  sample.mean_ms /= static_cast<double>(reps);
  return sample;
}

// Exact graph comparison: the dense and sparse kernels must agree
// bit-for-bit.
bool GraphsIdentical(const DependencyGraph& a, const DependencyGraph& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a.size(); ++j) {
      if (a.mi(i, j) != b.mi(i, j)) return false;
    }
  }
  return true;
}

std::string IsoTimestampUtc() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::tm utc;
  gmtime_r(&now, &utc);
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

std::string HostName() {
  char buffer[256] = {0};
  if (gethostname(buffer, sizeof(buffer) - 1) != 0) return "unknown";
  return buffer;
}

int Run(const std::string& output_path) {
  size_t reps = 5;
  if (const char* raw = std::getenv("DEPMATCH_BENCH_REPS")) {
    auto parsed = ParseInt64(raw);
    if (parsed.has_value() && *parsed > 0) {
      reps = static_cast<size_t>(*parsed);
    }
  }

  // Row-count sweep, arity sweep, thread sweep (on the headline shape),
  // and one high-cardinality shape that exceeds the default cell budget
  // so the sparse fallback is what "dense" mode actually exercises there.
  const std::vector<Config> configs = {
      {1000, 30, 32, 1},    {10000, 10, 32, 1},  {10000, 30, 32, 1},
      {50000, 30, 32, 1},   {10000, 30, 32, 2},  {10000, 30, 32, 4},
      {10000, 30, 32, 8},   {10000, 30, 4096, 1},
  };

  std::vector<Sample> samples;
  bool all_identical = true;
  double headline_seed_ms = 0.0;
  double headline_dense_ms = 0.0;

  for (const Config& config : configs) {
    Table table = MakeTable(config.rows, config.attrs, config.alphabet);

    // Correctness gate first: dense and sparse builds must be identical.
    DependencyGraphOptions dense_options;
    dense_options.num_threads = config.threads;
    DependencyGraphOptions sparse_options = dense_options;
    sparse_options.stats.dense_cell_budget = 0;
    Result<DependencyGraph> dense_graph =
        BuildDependencyGraph(table, dense_options);
    Result<DependencyGraph> sparse_graph =
        BuildDependencyGraph(table, sparse_options);
    DEPMATCH_CHECK(dense_graph.ok());
    DEPMATCH_CHECK(sparse_graph.ok());
    if (!GraphsIdentical(dense_graph.value(), sparse_graph.value())) {
      all_identical = false;
    }

    for (const char* mode : {"dense", "sparse", "seed_ref"}) {
      // The seed replica is serial; measuring it under a thread sweep
      // would time a different implementation than the seed shipped.
      if (std::string(mode) == "seed_ref" && config.threads != 1) continue;
      Sample sample = Measure(table, config, mode, reps);
      std::printf("rows=%-6zu attrs=%-3zu alphabet=%-5zu threads=%zu "
                  "%-8s min %8.2f ms   mean %8.2f ms\n",
                  config.rows, config.attrs, config.alphabet, config.threads,
                  mode, sample.min_ms, sample.mean_ms);
      if (config.rows == 10000 && config.attrs == 30 &&
          config.alphabet == 32 && config.threads == 1) {
        if (sample.mode == "seed_ref") headline_seed_ms = sample.min_ms;
        if (sample.mode == "dense") headline_dense_ms = sample.min_ms;
      }
      samples.push_back(std::move(sample));
    }
  }

  double headline_speedup =
      (headline_dense_ms > 0.0) ? headline_seed_ms / headline_dense_ms : 0.0;
  std::printf("\nheadline (10K rows x 30 attrs, alphabet 32, 1 thread): "
              "seed %.2f ms -> dense %.2f ms = %.2fx speedup\n",
              headline_seed_ms, headline_dense_ms, headline_speedup);
  std::printf("dense/sparse graphs identical: %s\n",
              all_identical ? "true" : "false");

  std::FILE* out = std::fopen(output_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"graph_build\",\n");
  std::fprintf(out, "  \"timestamp_utc\": \"%s\",\n",
               IsoTimestampUtc().c_str());
  std::fprintf(out, "  \"machine\": {\n");
  std::fprintf(out, "    \"hostname\": \"%s\",\n", HostName().c_str());
  std::fprintf(out, "    \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "    \"compiler\": \"%s\",\n", __VERSION__);
#ifdef NDEBUG
  std::fprintf(out, "    \"build_type\": \"Release\"\n");
#else
  std::fprintf(out, "    \"build_type\": \"Debug\"\n");
#endif
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"dense_sparse_graphs_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"headline\": {\n");
  std::fprintf(out, "    \"config\": \"10000 rows x 30 attrs, alphabet 32, "
                    "1 thread\",\n");
  std::fprintf(out, "    \"seed_ref_min_ms\": %.3f,\n", headline_seed_ms);
  std::fprintf(out, "    \"dense_min_ms\": %.3f,\n", headline_dense_ms);
  std::fprintf(out, "    \"speedup\": %.3f\n", headline_speedup);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"rows\": %zu, \"attrs\": %zu, \"alphabet\": %zu, "
                 "\"threads\": %zu, \"mode\": \"%s\", \"reps\": %zu, "
                 "\"min_ms\": %.3f, \"mean_ms\": %.3f}%s\n",
                 s.config.rows, s.config.attrs, s.config.alphabet,
                 s.config.threads, s.mode.c_str(), s.reps, s.min_ms,
                 s.mean_ms, (i + 1 < samples.size()) ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", output_path.c_str());
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace depmatch

int main(int argc, char** argv) {
  std::string output_path =
      (argc > 1) ? argv[1] : "BENCH_graph_build.json";
  return depmatch::Run(output_path);
}
