// Ablation: dependency-graph sparsification (Chow-Liu trees / top-k
// edges) before matching.
//
// Sparsification models the joint distribution with fewer parameters
// (filtering MI-estimation noise in weak edges) and is the gateway to
// Bayesian-network-style dependency models the paper cites. This bench
// measures what it costs or buys in matching precision on the lab pair.

#include <cstdio>

#include "bench_util.h"
#include "depmatch/eval/experiment.h"
#include "depmatch/eval/report.h"
#include "depmatch/graph/sparsify.h"

namespace {

using depmatch::Cardinality;
using depmatch::ChowLiuTree;
using depmatch::CountEdges;
using depmatch::DependencyGraph;
using depmatch::FormatPercent;
using depmatch::KeepTopEdges;
using depmatch::MetricKind;
using depmatch::SubsetExperimentConfig;
using depmatch::TextTable;
using depmatch::benchutil::GraphPair;
using depmatch::benchutil::Knobs;

std::string RunPoint(const DependencyGraph& g1, const DependencyGraph& g2,
                     size_t width, const Knobs& knobs) {
  SubsetExperimentConfig config;
  config.match.cardinality = Cardinality::kOneToOne;
  config.match.metric = MetricKind::kMutualInfoEuclidean;
  config.match.candidates_per_attribute = 3;
  config.source_size = width;
  config.target_size = width;
  config.iterations = knobs.iterations;
  config.num_threads = knobs.num_threads;
  config.seed = 8800 + width;
  auto stats = RunSubsetExperiment(g1, g2, config);
  return stats.ok() ? FormatPercent(stats->mean_precision)
                    : std::string("err");
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/30);
  GraphPair lab = depmatch::benchutil::BuildLabPair(10000, /*seed=*/7);

  DependencyGraph tree1 = ChowLiuTree(lab.g1).value();
  DependencyGraph tree2 = ChowLiuTree(lab.g2).value();
  DependencyGraph top60_1 = KeepTopEdges(lab.g1, 60).value();
  DependencyGraph top60_2 = KeepTopEdges(lab.g2, 60).value();
  DependencyGraph top120_1 = KeepTopEdges(lab.g1, 120).value();
  DependencyGraph top120_2 = KeepTopEdges(lab.g2, 120).value();

  std::printf("Sparsification ablation — lab exam pair, one-to-one MI "
              "Euclidean (%zu iterations)\n",
              knobs.iterations);
  std::printf("edge counts: full=%zu  top-120=%zu  top-60=%zu  "
              "Chow-Liu=%zu\n\n",
              CountEdges(lab.g1), CountEdges(top120_1),
              CountEdges(top60_1), CountEdges(tree1));

  TextTable table;
  table.SetHeader({"width", "full graph", "top-120 edges", "top-60 edges",
                   "Chow-Liu tree"});
  for (size_t width : {6, 10, 14, 18}) {
    table.AddRow({std::to_string(width),
                  RunPoint(lab.g1, lab.g2, width, knobs),
                  RunPoint(top120_1, top120_2, width, knobs),
                  RunPoint(top60_1, top60_2, width, knobs),
                  RunPoint(tree1, tree2, width, knobs)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
