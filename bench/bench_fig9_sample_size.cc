// Reproduces Figure 9: effect of sample (tuple) size on one-to-one
// matching precision, MI Euclidean, 1K / 5K / 10K samples, both datasets.
//
// Expected shape: larger samples give better precision, with a stronger
// effect on the census data (dense; every tuple contributes) than on the
// lab data (many nulls dilute per-tuple information).

#include <cstdio>

#include "bench_util.h"
#include "depmatch/eval/experiment.h"
#include "depmatch/eval/report.h"

namespace {

using depmatch::Cardinality;
using depmatch::FormatPercent;
using depmatch::MetricKind;
using depmatch::SubsetExperimentConfig;
using depmatch::TextTable;
using depmatch::benchutil::GraphPair;
using depmatch::benchutil::Knobs;

constexpr size_t kSampleSizes[] = {1000, 5000, 10000};

void RunDataset(const char* title, bool census, const Knobs& knobs) {
  // One graph pair per sample size.
  std::vector<GraphPair> pairs;
  for (size_t rows : kSampleSizes) {
    pairs.push_back(census
                        ? depmatch::benchutil::BuildCensusPair(rows, 7)
                        : depmatch::benchutil::BuildLabPair(rows, 7));
  }

  std::printf("Figure 9: sample-size effect, one-to-one MI Euclidean — %s "
              "(%zu iterations)\n\n",
              title, knobs.iterations);
  TextTable table;
  table.SetHeader({"width", "MI Euc 1K", "MI Euc 5K", "MI Euc 10K"});
  for (size_t width = 2; width <= 20; width += 2) {
    std::vector<std::string> row = {std::to_string(width)};
    for (const GraphPair& pair : pairs) {
      SubsetExperimentConfig config;
      config.match.cardinality = Cardinality::kOneToOne;
      config.match.metric = MetricKind::kMutualInfoEuclidean;
      config.match.candidates_per_attribute = 3;
      config.source_size = width;
      config.target_size = width;
      config.iterations = knobs.iterations;
      config.num_threads = knobs.num_threads;
      config.seed = 6000 + width;
      auto stats = RunSubsetExperiment(pair.g1, pair.g2, config);
      row.push_back(stats.ok() ? FormatPercent(stats->mean_precision)
                               : "err");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/50);
  RunDataset("thrombosis lab exam", /*census=*/false, knobs);
  RunDataset("census data", /*census=*/true, knobs);
  return 0;
}
