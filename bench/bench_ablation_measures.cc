// Ablation: alternative un-interpreted dependency measures (the paper's
// "evaluate other dependency models" future-work direction).
//
// Builds the dependency graphs of the lab and census pairs with edge
// labels from (a) mutual information (the paper), (b) normalized mutual
// information, (c) Cramér's V, and compares one-to-one matching
// precision with the MI-Euclidean metric over the same subsets.

#include <cstdio>

#include "bench_util.h"
#include "depmatch/eval/experiment.h"
#include "depmatch/eval/report.h"
#include "depmatch/graph/graph_builder.h"

namespace {

using depmatch::BuildDependencyGraph;
using depmatch::Cardinality;
using depmatch::DependencyGraph;
using depmatch::DependencyMeasure;
using depmatch::FormatPercent;
using depmatch::MetricKind;
using depmatch::SubsetExperimentConfig;
using depmatch::TextTable;
using depmatch::benchutil::Knobs;
using depmatch::benchutil::TablePair;

struct MeasuredPair {
  DependencyGraph g1;
  DependencyGraph g2;
};

MeasuredPair Build(const TablePair& tables, DependencyMeasure measure) {
  depmatch::DependencyGraphOptions options;
  options.measure = measure;
  return {BuildDependencyGraph(tables.t1, options).value(),
          BuildDependencyGraph(tables.t2, options).value()};
}

void RunDataset(const char* title, const TablePair& tables,
                const Knobs& knobs) {
  std::printf("Measure ablation — %s (one-to-one, MI-Euclidean metric "
              "shape over each measure's edges, %zu iterations)\n\n",
              title, knobs.iterations);
  const struct {
    const char* label;
    DependencyMeasure measure;
  } kMeasures[] = {
      {"mutual information", DependencyMeasure::kMutualInformation},
      {"normalized MI", DependencyMeasure::kNormalizedMutualInformation},
      {"Cramer's V", DependencyMeasure::kCramersV},
  };

  MeasuredPair pairs[3] = {Build(tables, kMeasures[0].measure),
                           Build(tables, kMeasures[1].measure),
                           Build(tables, kMeasures[2].measure)};

  TextTable table;
  table.SetHeader({"width", kMeasures[0].label, kMeasures[1].label,
                   kMeasures[2].label});
  for (size_t width : {6, 10, 14, 18}) {
    std::vector<std::string> row = {std::to_string(width)};
    for (int m = 0; m < 3; ++m) {
      SubsetExperimentConfig config;
      config.match.cardinality = Cardinality::kOneToOne;
      config.match.metric = MetricKind::kMutualInfoEuclidean;
      config.match.candidates_per_attribute = 3;
      config.source_size = width;
      config.target_size = width;
      config.iterations = knobs.iterations;
      config.num_threads = knobs.num_threads;
      config.seed = 8000 + width;
      auto stats =
          RunSubsetExperiment(pairs[m].g1, pairs[m].g2, config);
      row.push_back(stats.ok() ? FormatPercent(stats->mean_precision)
                               : "err");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/30);
  TablePair lab = depmatch::benchutil::BuildLabTables(10000, /*seed=*/7);
  RunDataset("thrombosis lab exam", lab, knobs);
  TablePair census =
      depmatch::benchutil::BuildCensusTables(10000, /*seed=*/7);
  RunDataset("census data", census, knobs);
  return 0;
}
