// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// bench_pipeline: end-to-end experiment-pipeline benchmark over the
// lab-exam halves (the paper's Figure-9 style sweep over sample sizes).
// Each configuration runs a batch of trials; every trial draws a random
// attribute subset of the 30-attribute universe and builds both halves'
// dependency graphs over a shared row sample. Two modes per point:
//
//   * cold    — the pre-encoded-store pipeline: every trial materializes
//               a fresh Table copy (ProjectColumns + SelectRows re-intern
//               of width x rows values) before BuildDependencyGraph
//   * cached  — zero-copy EncodedTableView slices over one base encoding
//               plus a shared StatCache (fresh per repetition, so the
//               number includes the cache's own cold misses)
//
// Before timing, every configuration asserts that the cold and cached
// trial graphs are bit-identical (exact double equality) — the encoded
// path is required to be unobservable in the results.
//
//   DEPMATCH_BENCH_REPS  repetitions per data point (default 3)
//   --smoke              tiny sizes, 1 rep, no JSON unless a path is given

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "depmatch/common/logging.h"
#include "depmatch/common/rng.h"
#include "depmatch/common/string_util.h"
#include "depmatch/datagen/datasets.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/stats/stat_cache.h"
#include "depmatch/table/encoded_column.h"
#include "depmatch/table/table_ops.h"

namespace depmatch {
namespace {

struct Config {
  size_t sample_rows;
  size_t attrs_per_trial;
  size_t trials;
};

struct Sample {
  Config config;
  std::string mode;
  size_t reps;
  double min_ms;
  double mean_ms;
};

// The two lab-exam halves restricted to the 30-attribute universe, kept
// both as Tables (the cold path re-materializes from these) and as
// encoded views over a one-time snapshot (the cached path slices these).
struct PipelineBase {
  Table source;
  Table target;
  EncodedTableView source_view;
  EncodedTableView target_view;
};

PipelineBase MakeBase(bool smoke, uint64_t seed) {
  datagen::LabExamConfig config;
  config.num_rows = smoke ? 2000 : 50000;
  Result<Table> lab = datagen::MakeLabExamTable(config, seed);
  DEPMATCH_CHECK(lab.ok());
  // Range-partition by exam date (column 0), as the paper does.
  Result<RangePartitionResult> parts =
      RangePartitionAtMedian(lab.value(), 0);
  DEPMATCH_CHECK(parts.ok());

  // The matchable universe: up to 30 of the 44 test attributes, drawn
  // once with a fixed seed (no date column).
  std::vector<size_t> pool;
  for (size_t c = 1; c < lab->num_attributes(); ++c) pool.push_back(c);
  size_t universe_size = std::min<size_t>(smoke ? 12 : 30, pool.size());
  Rng rng(seed ^ 0x11);
  std::vector<size_t> positions =
      rng.SampleWithoutReplacement(pool.size(), universe_size);
  std::vector<size_t> attrs;
  attrs.reserve(positions.size());
  for (size_t position : positions) attrs.push_back(pool[position]);

  Result<Table> source = ProjectColumns(parts->low, attrs);
  Result<Table> target = ProjectColumns(parts->high, attrs);
  DEPMATCH_CHECK(source.ok());
  DEPMATCH_CHECK(target.ok());

  PipelineBase base;
  base.source = std::move(source).value();
  base.target = std::move(target).value();
  base.source_view = EncodedTableView::FromTable(base.source);
  base.target_view = EncodedTableView::FromTable(base.target);
  return base;
}

// One configuration's pre-drawn randomness, shared verbatim by both
// modes so they time the exact same trials.
struct TrialPlan {
  std::vector<size_t> source_rows;
  std::vector<size_t> target_rows;
  std::vector<std::vector<size_t>> attrs;  // one subset per trial
};

TrialPlan MakePlan(const PipelineBase& base, const Config& config,
                   uint64_t seed) {
  TrialPlan plan;
  Rng rng(seed ^ (config.sample_rows * 0x9e3779b9u));
  plan.source_rows = rng.SampleWithoutReplacement(
      base.source.num_rows(),
      std::min(config.sample_rows, base.source.num_rows()));
  plan.target_rows = rng.SampleWithoutReplacement(
      base.target.num_rows(),
      std::min(config.sample_rows, base.target.num_rows()));
  size_t universe = base.source.num_attributes();
  for (size_t trial = 0; trial < config.trials; ++trial) {
    plan.attrs.push_back(rng.SampleWithoutReplacement(
        universe, std::min(config.attrs_per_trial, universe)));
  }
  return plan;
}

std::vector<uint32_t> ToUint32(const std::vector<size_t>& rows) {
  std::vector<uint32_t> out;
  out.reserve(rows.size());
  for (size_t row : rows) out.push_back(static_cast<uint32_t>(row));
  return out;
}

// The seed pipeline's per-trial path: materialize a fresh Table (full
// value re-intern of the slice), then build its graph.
DependencyGraph ColdTrial(const Table& table,
                          const std::vector<size_t>& attrs,
                          const std::vector<size_t>& rows) {
  Result<Table> projected = ProjectColumns(table, attrs);
  DEPMATCH_CHECK(projected.ok());
  Result<Table> materialized = SelectRows(projected.value(), rows);
  DEPMATCH_CHECK(materialized.ok());
  Result<DependencyGraph> graph = BuildDependencyGraph(materialized.value());
  DEPMATCH_CHECK(graph.ok());
  return std::move(graph).value();
}

// The encoded path: zero-copy slice of the pre-sampled view, statistics
// served from (and inserted into) the shared cache.
DependencyGraph CachedTrial(const EncodedTableView& sampled,
                            const std::vector<size_t>& attrs,
                            StatCache* cache) {
  Result<EncodedTableView> slice = sampled.Project(attrs);
  DEPMATCH_CHECK(slice.ok());
  Result<DependencyGraph> graph =
      BuildDependencyGraph(slice.value(), {}, cache);
  DEPMATCH_CHECK(graph.ok());
  return std::move(graph).value();
}

void RunColdTrials(const PipelineBase& base, const TrialPlan& plan) {
  for (const std::vector<size_t>& attrs : plan.attrs) {
    ColdTrial(base.source, attrs, plan.source_rows);
    ColdTrial(base.target, attrs, plan.target_rows);
  }
}

void RunCachedTrials(const PipelineBase& base, const TrialPlan& plan) {
  StatCache cache;
  Result<EncodedTableView> source =
      base.source_view.SelectRows(ToUint32(plan.source_rows));
  Result<EncodedTableView> target =
      base.target_view.SelectRows(ToUint32(plan.target_rows));
  DEPMATCH_CHECK(source.ok());
  DEPMATCH_CHECK(target.ok());
  for (const std::vector<size_t>& attrs : plan.attrs) {
    CachedTrial(source.value(), attrs, &cache);
    CachedTrial(target.value(), attrs, &cache);
  }
}

// Exact graph comparison: cold and cached trials must agree bit-for-bit.
bool GraphsIdentical(const DependencyGraph& a, const DependencyGraph& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.name(i) != b.name(i)) return false;
    for (size_t j = 0; j < a.size(); ++j) {
      if (a.mi(i, j) != b.mi(i, j)) return false;
    }
  }
  return true;
}

bool VerifyIdentity(const PipelineBase& base, const TrialPlan& plan) {
  StatCache cache;
  Result<EncodedTableView> source =
      base.source_view.SelectRows(ToUint32(plan.source_rows));
  Result<EncodedTableView> target =
      base.target_view.SelectRows(ToUint32(plan.target_rows));
  DEPMATCH_CHECK(source.ok());
  DEPMATCH_CHECK(target.ok());
  for (const std::vector<size_t>& attrs : plan.attrs) {
    DependencyGraph cold_s = ColdTrial(base.source, attrs, plan.source_rows);
    DependencyGraph cold_t = ColdTrial(base.target, attrs, plan.target_rows);
    if (!GraphsIdentical(cold_s, CachedTrial(source.value(), attrs, &cache)))
      return false;
    if (!GraphsIdentical(cold_t, CachedTrial(target.value(), attrs, &cache)))
      return false;
  }
  return true;
}

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

Sample Measure(const PipelineBase& base, const TrialPlan& plan,
               const Config& config, const std::string& mode, size_t reps) {
  Sample sample{config, mode, reps, 1e300, 0.0};
  for (size_t rep = 0; rep < reps; ++rep) {
    double ms = TimeMs([&] {
      if (mode == "cold") {
        RunColdTrials(base, plan);
      } else {
        RunCachedTrials(base, plan);
      }
    });
    sample.min_ms = std::min(sample.min_ms, ms);
    sample.mean_ms += ms;
  }
  sample.mean_ms /= static_cast<double>(reps);
  return sample;
}

std::string IsoTimestampUtc() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::tm utc;
  gmtime_r(&now, &utc);
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

std::string HostName() {
  char buffer[256] = {0};
  if (gethostname(buffer, sizeof(buffer) - 1) != 0) return "unknown";
  return buffer;
}

int Run(bool smoke, const std::string& output_path) {
  size_t reps = smoke ? 1 : 3;
  if (const char* raw = std::getenv("DEPMATCH_BENCH_REPS")) {
    auto parsed = ParseInt64(raw);
    if (parsed.has_value() && *parsed > 0) {
      reps = static_cast<size_t>(*parsed);
    }
  }

  const uint64_t seed = 7;
  PipelineBase base = MakeBase(smoke, seed);

  // Figure-9 style sweep over sample sizes; the headline point is the
  // middle one.
  const std::vector<Config> configs =
      smoke ? std::vector<Config>{{200, 6, 3}}
            : std::vector<Config>{
                  {1000, 10, 50}, {5000, 10, 50}, {20000, 10, 50}};
  const Config headline_config = configs[configs.size() / 2];

  std::vector<Sample> samples;
  bool all_identical = true;
  double headline_cold_ms = 0.0;
  double headline_cached_ms = 0.0;

  for (const Config& config : configs) {
    TrialPlan plan = MakePlan(base, config, seed);

    // Correctness gate first: every trial's cached graph must equal the
    // materialized cold graph exactly.
    if (!VerifyIdentity(base, plan)) {
      all_identical = false;
    }

    for (const char* mode : {"cold", "cached"}) {
      Sample sample = Measure(base, plan, config, mode, reps);
      std::printf("sample_rows=%-6zu attrs=%-3zu trials=%-3zu %-7s "
                  "min %9.2f ms   mean %9.2f ms\n",
                  config.sample_rows, config.attrs_per_trial, config.trials,
                  mode, sample.min_ms, sample.mean_ms);
      if (config.sample_rows == headline_config.sample_rows) {
        if (sample.mode == "cold") headline_cold_ms = sample.min_ms;
        if (sample.mode == "cached") headline_cached_ms = sample.min_ms;
      }
      samples.push_back(std::move(sample));
    }
  }

  double headline_speedup = (headline_cached_ms > 0.0)
                                ? headline_cold_ms / headline_cached_ms
                                : 0.0;
  std::printf("\nheadline (%zu sample rows, %zu attrs/trial, %zu trials): "
              "cold %.2f ms -> cached %.2f ms = %.2fx speedup\n",
              headline_config.sample_rows, headline_config.attrs_per_trial,
              headline_config.trials, headline_cold_ms, headline_cached_ms,
              headline_speedup);
  std::printf("cached graphs identical: %s\n",
              all_identical ? "true" : "false");

  if (!output_path.empty()) {
    std::FILE* out = std::fopen(output_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"pipeline\",\n");
    std::fprintf(out, "  \"timestamp_utc\": \"%s\",\n",
                 IsoTimestampUtc().c_str());
    std::fprintf(out, "  \"machine\": {\n");
    std::fprintf(out, "    \"hostname\": \"%s\",\n", HostName().c_str());
    std::fprintf(out, "    \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "    \"compiler\": \"%s\",\n", __VERSION__);
#ifdef NDEBUG
    std::fprintf(out, "    \"build_type\": \"Release\"\n");
#else
    std::fprintf(out, "    \"build_type\": \"Debug\"\n");
#endif
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"cached_graphs_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(out, "  \"headline\": {\n");
    std::fprintf(out,
                 "    \"config\": \"%zu sample rows, %zu attrs/trial, "
                 "%zu trials\",\n",
                 headline_config.sample_rows, headline_config.attrs_per_trial,
                 headline_config.trials);
    std::fprintf(out, "    \"cold_min_ms\": %.3f,\n", headline_cold_ms);
    std::fprintf(out, "    \"cached_min_ms\": %.3f,\n", headline_cached_ms);
    std::fprintf(out, "    \"speedup\": %.3f\n", headline_speedup);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"results\": [\n");
    for (size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(out,
                   "    {\"sample_rows\": %zu, \"attrs_per_trial\": %zu, "
                   "\"trials\": %zu, \"mode\": \"%s\", \"reps\": %zu, "
                   "\"min_ms\": %.3f, \"mean_ms\": %.3f}%s\n",
                   s.config.sample_rows, s.config.attrs_per_trial,
                   s.config.trials, s.mode.c_str(), s.reps, s.min_ms,
                   s.mean_ms, (i + 1 < samples.size()) ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", output_path.c_str());
  }
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace depmatch

int main(int argc, char** argv) {
  bool smoke = false;
  bool path_given = false;
  std::string output_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      output_path = arg;
      path_given = true;
    }
  }
  if (!smoke && !path_given) output_path = "BENCH_pipeline.json";
  return depmatch::Run(smoke, output_path);
}
