// Reproduces Figure 6: onto mapping precision.
//
// Target schema fixed at 22 attributes; source schema grows from 2 to 20.
// Four methods (MI/ET x Euclidean/Normal(3.0)), both datasets.
//
// Paper reference points: precision *improves* with source size (the
// subset-selection step dominates and gets easier); at source size 20,
// census ~91% / lab ~80% for MI, with entropy-only trailing (61% lab,
// 81% census at comparable points).

#include <cstdio>

#include "bench_util.h"
#include "depmatch/eval/experiment.h"
#include "depmatch/eval/report.h"

namespace {

using depmatch::Cardinality;
using depmatch::FormatPercent;
using depmatch::SubsetExperimentConfig;
using depmatch::TextTable;
using depmatch::benchutil::GraphPair;
using depmatch::benchutil::Knobs;
using depmatch::benchutil::MethodSpec;
using depmatch::benchutil::StandardMethods;

constexpr size_t kTargetSize = 22;

void RunDataset(const char* title, const GraphPair& pair,
                const Knobs& knobs) {
  std::printf("Figure 6: onto mapping precision — %s (target fixed at %zu "
              "attributes, 10K samples, %zu iterations)\n\n",
              title, kTargetSize, knobs.iterations);
  TextTable table;
  table.SetHeader({"src width", "MI Euclidean", "MI Normal(3.0)",
                   "ET Euclidean", "ET Normal(3.0)"});
  for (size_t width = 2; width <= 20; width += 2) {
    std::vector<std::string> row = {std::to_string(width)};
    for (const MethodSpec& method : StandardMethods()) {
      SubsetExperimentConfig config;
      config.match.cardinality = Cardinality::kOnto;
      config.match.metric = method.metric;
      config.match.alpha = method.alpha;
      config.match.candidates_per_attribute = 3;
      config.source_size = width;
      config.target_size = kTargetSize;
      config.iterations = knobs.iterations;
      config.num_threads = knobs.num_threads;
      config.seed = 2000 + width;
      auto stats = RunSubsetExperiment(pair.g1, pair.g2, config);
      row.push_back(stats.ok() ? FormatPercent(stats->mean_precision)
                               : "err");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/50);
  GraphPair lab = depmatch::benchutil::BuildLabPair(10000, /*seed=*/7);
  RunDataset("thrombosis lab exam", lab, knobs);
  GraphPair census = depmatch::benchutil::BuildCensusPair(10000, /*seed=*/7);
  RunDataset("census data", census, knobs);
  return 0;
}
