#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <thread>

#include <unistd.h>

#include "depmatch/common/logging.h"
#include "depmatch/common/rng.h"
#include "depmatch/common/string_util.h"
#include "depmatch/datagen/datasets.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/table/table_ops.h"

namespace depmatch {
namespace benchutil {
namespace {

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  auto parsed = ParseInt64(raw);
  if (!parsed.has_value() || *parsed <= 0) return fallback;
  return static_cast<size_t>(*parsed);
}

// Projects `table` onto `kUniverseSize` attributes drawn (seeded) from
// `pool`, then samples `sample_rows` tuples.
Table UniverseSample(const Table& table, const std::vector<size_t>& pool,
                     size_t sample_rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> chosen_positions =
      rng.SampleWithoutReplacement(pool.size(),
                                   std::min(kUniverseSize, pool.size()));
  std::vector<size_t> attrs;
  attrs.reserve(chosen_positions.size());
  for (size_t position : chosen_positions) attrs.push_back(pool[position]);
  Result<Table> projected = ProjectColumns(table, attrs);
  DEPMATCH_CHECK(projected.ok());
  return SampleRows(projected.value(), sample_rows, rng);
}

DependencyGraph BuildGraph(const Table& table) {
  Result<DependencyGraph> graph = BuildDependencyGraph(table);
  DEPMATCH_CHECK(graph.ok());
  return std::move(graph).value();
}

}  // namespace

Knobs KnobsFromEnv(size_t default_iterations) {
  Knobs knobs;
  knobs.iterations = EnvSizeOr("DEPMATCH_ITERS", default_iterations);
  knobs.num_threads = EnvSizeOr("DEPMATCH_THREADS", 1);
  return knobs;
}

TablePair BuildLabTables(size_t sample_rows, uint64_t seed) {
  datagen::LabExamConfig config;
  config.num_rows = 50000;
  Result<Table> lab = datagen::MakeLabExamTable(config, seed);
  DEPMATCH_CHECK(lab.ok());
  // Range-partition by exam date (column 0), as the paper does.
  Result<RangePartitionResult> parts =
      RangePartitionAtMedian(lab.value(), 0);
  DEPMATCH_CHECK(parts.ok());

  // The matchable universe is the 44 test attributes (no date).
  std::vector<size_t> tests;
  for (size_t c = 1; c < lab->num_attributes(); ++c) tests.push_back(c);

  TablePair pair;
  // Both halves use the SAME attribute subset (same seed for the draw)
  // but independent row samples.
  pair.t1 = UniverseSample(parts->low, tests, sample_rows, seed ^ 0x11);
  pair.t2 = UniverseSample(parts->high, tests, sample_rows, seed ^ 0x11);
  return pair;
}

GraphPair BuildLabPair(size_t sample_rows, uint64_t seed) {
  TablePair tables = BuildLabTables(sample_rows, seed);
  return {BuildGraph(tables.t1), BuildGraph(tables.t2)};
}

TablePair BuildCensusTables(size_t sample_rows, uint64_t seed) {
  datagen::CensusConfig config;
  config.num_rows = 12000;
  config.epoch = 0;
  Result<Table> ny = datagen::MakeCensusTable(config, seed * 2 + 1);
  config.epoch = 1;
  Result<Table> ca = datagen::MakeCensusTable(config, seed * 2 + 2);
  DEPMATCH_CHECK(ny.ok());
  DEPMATCH_CHECK(ca.ok());

  std::vector<size_t> pool;
  for (size_t c = 0; c < ny->num_attributes(); ++c) pool.push_back(c);

  TablePair pair;
  pair.t1 = UniverseSample(ny.value(), pool, sample_rows, seed ^ 0x22);
  pair.t2 = UniverseSample(ca.value(), pool, sample_rows, seed ^ 0x22);
  return pair;
}

GraphPair BuildCensusPair(size_t sample_rows, uint64_t seed) {
  TablePair tables = BuildCensusTables(sample_rows, seed);
  return {BuildGraph(tables.t1), BuildGraph(tables.t2)};
}

MachineReport MakeMachineReport(std::vector<size_t> exercised_threads) {
  MachineReport report;
  char buffer[256] = {0};
  report.hostname =
      gethostname(buffer, sizeof(buffer) - 1) == 0 ? buffer : "unknown";
  report.detected_hardware_threads = std::thread::hardware_concurrency();
  std::sort(exercised_threads.begin(), exercised_threads.end());
  exercised_threads.erase(
      std::unique(exercised_threads.begin(), exercised_threads.end()),
      exercised_threads.end());
  report.exercised_threads = std::move(exercised_threads);
  return report;
}

void WriteMachineJson(std::FILE* out, const MachineReport& report,
                      const char* indent, bool trailing_comma) {
  std::fprintf(out, "%s\"machine\": {\n", indent);
  std::fprintf(out, "%s  \"hostname\": \"%s\",\n", indent,
               report.hostname.c_str());
  std::fprintf(out, "%s  \"detected_hardware_threads\": %u,\n", indent,
               report.detected_hardware_threads);
  std::fprintf(out, "%s  \"exercised_threads\": [", indent);
  for (size_t i = 0; i < report.exercised_threads.size(); ++i) {
    std::fprintf(out, "%s%zu", i > 0 ? ", " : "",
                 report.exercised_threads[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "%s  \"compiler\": \"%s\",\n", indent, __VERSION__);
#ifdef NDEBUG
  std::fprintf(out, "%s  \"build_type\": \"Release\"\n", indent);
#else
  std::fprintf(out, "%s  \"build_type\": \"Debug\"\n", indent);
#endif
  std::fprintf(out, "%s}%s\n", indent, trailing_comma ? "," : "");
}

std::string IsoTimestampUtc() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::tm utc;
  gmtime_r(&now, &utc);
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

double PercentileMs(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (pct <= 0.0) return samples.front();
  if (pct >= 100.0) return samples.back();
  // Nearest-rank: the value at rank ceil(pct/100 * n), 1-based.
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  return samples[rank - 1];
}

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary summary;
  if (samples.empty()) return summary;
  summary.count = samples.size();
  std::sort(samples.begin(), samples.end());
  summary.min_ms = samples.front();
  summary.max_ms = samples.back();
  double total = 0.0;
  for (double sample : samples) total += sample;
  summary.mean_ms = total / static_cast<double>(samples.size());
  summary.p50_ms = PercentileMs(samples, 50.0);
  summary.p99_ms = PercentileMs(samples, 99.0);
  return summary;
}

const std::vector<MethodSpec>& StandardMethods() {
  static const std::vector<MethodSpec>& methods =
      *new std::vector<MethodSpec>{
          {"MI Euclidean", MetricKind::kMutualInfoEuclidean, 3.0},
          {"MI Normal(3.0)", MetricKind::kMutualInfoNormal, 3.0},
          {"ET Euclidean", MetricKind::kEntropyEuclidean, 3.0},
          {"ET Normal(3.0)", MetricKind::kEntropyNormal, 3.0},
      };
  return methods;
}

}  // namespace benchutil
}  // namespace depmatch
