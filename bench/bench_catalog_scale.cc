// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// bench_catalog_scale: web-scale catalog search over synthetic corpora
// of 1K / 10K / 100K dependency graphs (datagen/graph_corpus.h). For
// each corpus size it measures the full catalog lifecycle —
//
//   build        generate + insert every entry (signatures computed)
//   index        CatalogTieredIndex construction
//   save         sharded store write and monolithic DMC1 save
//   load         monolithic DMC1 load (O(corpus): deserializes every
//                graph) versus ShardedCatalogStore::Open (O(1): maps
//                the manifest and verifies the fixed-size header) and
//                the first query on a fresh store (which pays the lazy
//                metadata + signature materialization)
//   search       warm tiered+sharded top-k latency (p50/p99/min over
//                repetitions) with prune rate and bound-evaluation
//                counts, against the flat prefilter's O(corpus) bound
//                pass on the same entries
//
// Before timing, every mode — in-memory flat, in-memory tiered, and
// sharded tiered, at 1/2/8 threads — must return the identical top-k,
// entry for entry and bit-for-bit in every ranking key; at small sizes
// the no-prefilter brute force joins the comparison. The index and the
// store are required to be unobservable in the results.
//
// The scaling claims to look for in BENCH_catalog_scale.json:
//   * per-query bound evaluations grow sublinearly in corpus size
//     (tiered) while the flat pass grows linearly, and
//   * sharded open time stays flat across corpus sizes while the
//     monolithic load grows linearly.
//
//   DEPMATCH_BENCH_REPS  search repetitions per size (default 9)
//   --smoke              tiny corpora, no JSON unless a path is given

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "depmatch/common/logging.h"
#include "depmatch/common/string_util.h"
#include "depmatch/core/graph_catalog.h"
#include "depmatch/core/sharded_store.h"
#include "depmatch/datagen/graph_corpus.h"

namespace depmatch {
namespace {

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double Percentile(std::vector<double> samples, double percent) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = percent / 100.0 * static_cast<double>(samples.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

// Band fractions scale inversely with the corpus so the *absolute*
// number of query-like entries stays fixed: what grows with N is the
// unrelated bulk the index exists to prune, exactly the
// dataset-discovery shape (a handful of relevant tables in a sea).
GraphCorpusOptions CorpusConfig(size_t entries) {
  GraphCorpusOptions options;
  options.seed = 29;
  options.query_width = 8;
  options.min_width = 4;
  options.max_width = 16;
  double n = static_cast<double>(entries);
  options.related_fraction = std::min(0.25, 20.0 / n);
  options.mild_fraction = std::min(0.25, 100.0 / n);
  options.narrow_fraction = 0.10;
  return options;
}

CatalogSearchOptions SearchConfig(bool use_prefilter, bool use_index,
                                  size_t num_threads) {
  CatalogSearchOptions options;
  options.k = 10;
  options.match.cardinality = Cardinality::kOnto;
  options.match.metric = MetricKind::kMutualInfoNormal;
  options.match.alpha = 3.0;
  options.match.algorithm = MatchAlgorithm::kSimulatedAnnealing;
  options.use_prefilter = use_prefilter;
  options.use_index = use_index;
  options.num_threads = num_threads;
  return options;
}

bool SameRanking(const CatalogSearchResult& a, const CatalogSearchResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].entry != b.ranked[i].entry) return false;
    if (std::bit_cast<uint64_t>(a.ranked[i].ranking_key) !=
        std::bit_cast<uint64_t>(b.ranked[i].ranking_key)) {
      return false;
    }
    if (a.ranked[i].match.pairs != b.ranked[i].match.pairs) return false;
  }
  return true;
}

void RemoveStore(const std::string& dir, size_t num_segments) {
  for (size_t s = 0; s < num_segments; ++s) {
    std::remove(StrFormat("%s/segment-%05zu.seg", dir.c_str(), s).c_str());
  }
  std::remove((dir + "/MANIFEST.dms").c_str());
  ::rmdir(dir.c_str());
}

struct SizeReport {
  size_t entries = 0;
  double build_ms = 0.0;
  double index_ms = 0.0;
  double sharded_write_ms = 0.0;
  double monolith_save_ms = 0.0;
  double monolith_load_ms = 0.0;
  double sharded_open_ms = 0.0;
  double first_query_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double min_ms = 0.0;
  size_t threads = 0;
  CatalogSearchStats tiered_stats;
  size_t flat_bound_evaluations = 0;
  bool identical = true;
  bool brute_checked = false;
};

SizeReport RunSize(size_t entries, size_t reps, bool smoke) {
  SizeReport report;
  report.entries = entries;
  const GraphCorpusOptions corpus = CorpusConfig(entries);
  const DependencyGraph query = CorpusQuery(corpus);
  const size_t fanout_threads =
      std::max<size_t>(2, std::thread::hardware_concurrency());
  report.threads = fanout_threads;

  GraphCatalog catalog;
  report.build_ms = TimeMs([&] {
    for (size_t i = 0; i < entries; ++i) {
      DEPMATCH_CHECK(
          catalog.Insert(CorpusEntryName(i), CorpusEntry(corpus, i)).ok());
    }
  });
  report.index_ms = TimeMs([&] { catalog.BuildIndex(); });

  // Persistence: sharded write vs the monolithic DMC1 round trip.
  const std::string store_dir =
      StrFormat("bench_catalog_scale_store_%d_%zu", getpid(), entries);
  report.sharded_write_ms = TimeMs([&] {
    DEPMATCH_CHECK(WriteShardedCatalog(catalog, store_dir).ok());
  });
  const std::string monolith_path = store_dir + ".dmc";
  report.monolith_save_ms =
      TimeMs([&] { DEPMATCH_CHECK(catalog.Save(monolith_path).ok()); });
  report.monolith_load_ms = TimeMs([&] {
    Result<GraphCatalog> loaded = GraphCatalog::Load(monolith_path);
    DEPMATCH_CHECK(loaded.ok());
    DEPMATCH_CHECK(loaded->size() == entries);
  });
  std::remove(monolith_path.c_str());

  // Open cost: manifest map + header verification only, so this should
  // not move across corpus sizes.
  report.sharded_open_ms = 1e300;
  for (size_t rep = 0; rep < reps; ++rep) {
    report.sharded_open_ms = std::min(report.sharded_open_ms, TimeMs([&] {
      Result<ShardedCatalogStore> opened = ShardedCatalogStore::Open(store_dir);
      DEPMATCH_CHECK(opened.ok());
    }));
  }

  Result<ShardedCatalogStore> opened = ShardedCatalogStore::Open(store_dir);
  DEPMATCH_CHECK(opened.ok());
  const ShardedCatalogStore& store = opened.value();
  DEPMATCH_CHECK(store.size() == entries);

  // First query on the fresh store pays the lazy metadata verification
  // and signature materialization.
  CatalogSearchResult tiered;
  report.first_query_ms = TimeMs([&] {
    Result<CatalogSearchResult> search = SearchShardedCatalog(
        query, store, SearchConfig(true, true, fanout_threads));
    DEPMATCH_CHECK(search.ok());
    tiered = std::move(search).value();
  });
  report.tiered_stats = tiered.stats;

  // Identity gate: flat in-memory is the reference; the index, the
  // store, and the thread count must all be unobservable.
  Result<CatalogSearchResult> reference =
      SearchCatalog(query, catalog, SearchConfig(true, false, 1));
  DEPMATCH_CHECK(reference.ok());
  report.flat_bound_evaluations = reference->stats.bound_evaluations;
  report.identical = SameRanking(*reference, tiered);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    Result<CatalogSearchResult> mem_tiered =
        SearchCatalog(query, catalog, SearchConfig(true, true, threads));
    DEPMATCH_CHECK(mem_tiered.ok());
    if (!SameRanking(*reference, *mem_tiered)) report.identical = false;
    Result<CatalogSearchResult> sharded = SearchShardedCatalog(
        query, store, SearchConfig(true, true, threads));
    DEPMATCH_CHECK(sharded.ok());
    if (!SameRanking(*reference, *sharded)) report.identical = false;
  }
  // The all-pairs brute force is only affordable at small sizes (it
  // runs a full match per compatible entry).
  if (entries <= (smoke ? entries : size_t{1000})) {
    Result<CatalogSearchResult> brute =
        SearchCatalog(query, catalog, SearchConfig(false, false, 1));
    DEPMATCH_CHECK(brute.ok());
    if (!SameRanking(*reference, *brute)) report.identical = false;
    report.brute_checked = true;
  }

  // Warm latency distribution over the already-materialized store.
  std::vector<double> latencies;
  latencies.reserve(reps);
  for (size_t rep = 0; rep < reps; ++rep) {
    latencies.push_back(TimeMs([&] {
      Result<CatalogSearchResult> search = SearchShardedCatalog(
          query, store, SearchConfig(true, true, fanout_threads));
      DEPMATCH_CHECK(search.ok());
    }));
  }
  report.p50_ms = Percentile(latencies, 50.0);
  report.p99_ms = Percentile(latencies, 99.0);
  report.min_ms = *std::min_element(latencies.begin(), latencies.end());

  RemoveStore(store_dir, store.num_segments());
  return report;
}

int Run(bool smoke, const std::string& output_path) {
  size_t reps = smoke ? 3 : 9;
  if (const char* raw = std::getenv("DEPMATCH_BENCH_REPS")) {
    auto parsed = ParseInt64(raw);
    if (parsed.has_value() && *parsed > 0) {
      reps = static_cast<size_t>(*parsed);
    }
  }
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{40, 120}
            : std::vector<size_t>{1000, 10000, 100000};

  std::vector<SizeReport> reports;
  bool identical = true;
  for (size_t entries : sizes) {
    SizeReport report = RunSize(entries, reps, smoke);
    identical = identical && report.identical;
    size_t compatible =
        report.tiered_stats.entries_total -
        report.tiered_stats.entries_incompatible;
    double prune_rate =
        compatible > 0 ? static_cast<double>(report.tiered_stats.entries_pruned) /
                             static_cast<double>(compatible)
                       : 0.0;
    std::printf(
        "N=%-7zu build %8.1f ms  index %7.1f ms  shard write %8.1f ms\n"
        "          monolith save %8.1f ms / load %8.1f ms  sharded open "
        "%.3f ms  first query %8.2f ms\n"
        "          search p50 %8.2f ms  p99 %8.2f ms  (threads %zu, "
        "searched %zu, prune rate %.1f%%)\n"
        "          bound evals: tiered %zu entry + %zu cluster vs flat %zu"
        "  identical %s%s\n",
        report.entries, report.build_ms, report.index_ms,
        report.sharded_write_ms, report.monolith_save_ms,
        report.monolith_load_ms, report.sharded_open_ms,
        report.first_query_ms, report.p50_ms, report.p99_ms, report.threads,
        report.tiered_stats.entries_searched, prune_rate * 100.0,
        report.tiered_stats.bound_evaluations,
        report.tiered_stats.cluster_bound_evaluations,
        report.flat_bound_evaluations, report.identical ? "true" : "false",
        report.brute_checked ? " (incl. brute force)" : "");
    reports.push_back(report);
  }
  std::printf("identical top-k across modes/threads/stores: %s\n",
              identical ? "true" : "false");

  if (!output_path.empty()) {
    std::FILE* out = std::fopen(output_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"catalog_scale\",\n");
    std::fprintf(out, "  \"timestamp_utc\": \"%s\",\n",
                 benchutil::IsoTimestampUtc().c_str());
    std::vector<size_t> exercised = {1, 2, 8};
    for (const SizeReport& report : reports) {
      exercised.push_back(report.threads);
    }
    benchutil::WriteMachineJson(out, benchutil::MakeMachineReport(exercised),
                                "  ", /*trailing_comma=*/true);
    std::fprintf(out, "  \"config\": {\n");
    std::fprintf(out, "    \"k\": 10,\n");
    std::fprintf(out, "    \"query_width\": 8,\n");
    std::fprintf(out, "    \"reps\": %zu\n", reps);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(out, "  \"sizes\": [\n");
    for (size_t i = 0; i < reports.size(); ++i) {
      const SizeReport& r = reports[i];
      size_t compatible =
          r.tiered_stats.entries_total - r.tiered_stats.entries_incompatible;
      double prune_rate =
          compatible > 0 ? static_cast<double>(r.tiered_stats.entries_pruned) /
                               static_cast<double>(compatible)
                         : 0.0;
      std::fprintf(out, "    {\n");
      std::fprintf(out, "      \"entries\": %zu,\n", r.entries);
      std::fprintf(out, "      \"build_ms\": %.3f,\n", r.build_ms);
      std::fprintf(out, "      \"index_build_ms\": %.3f,\n", r.index_ms);
      std::fprintf(out, "      \"sharded_write_ms\": %.3f,\n",
                   r.sharded_write_ms);
      std::fprintf(out, "      \"monolith_save_ms\": %.3f,\n",
                   r.monolith_save_ms);
      std::fprintf(out, "      \"monolith_load_ms\": %.3f,\n",
                   r.monolith_load_ms);
      std::fprintf(out, "      \"sharded_open_ms\": %.3f,\n",
                   r.sharded_open_ms);
      std::fprintf(out, "      \"first_query_ms\": %.3f,\n", r.first_query_ms);
      std::fprintf(out, "      \"search_threads\": %zu,\n", r.threads);
      std::fprintf(out, "      \"search_p50_ms\": %.3f,\n", r.p50_ms);
      std::fprintf(out, "      \"search_p99_ms\": %.3f,\n", r.p99_ms);
      std::fprintf(out, "      \"search_min_ms\": %.3f,\n", r.min_ms);
      std::fprintf(out, "      \"entries_total\": %zu,\n",
                   r.tiered_stats.entries_total);
      std::fprintf(out, "      \"entries_incompatible\": %zu,\n",
                   r.tiered_stats.entries_incompatible);
      std::fprintf(out, "      \"entries_pruned\": %zu,\n",
                   r.tiered_stats.entries_pruned);
      std::fprintf(out, "      \"entries_searched\": %zu,\n",
                   r.tiered_stats.entries_searched);
      std::fprintf(out, "      \"prune_rate\": %.4f,\n", prune_rate);
      std::fprintf(out, "      \"bound_evaluations\": %zu,\n",
                   r.tiered_stats.bound_evaluations);
      std::fprintf(out, "      \"cluster_bound_evaluations\": %zu,\n",
                   r.tiered_stats.cluster_bound_evaluations);
      std::fprintf(out, "      \"flat_bound_evaluations\": %zu,\n",
                   r.flat_bound_evaluations);
      std::fprintf(out, "      \"brute_force_checked\": %s,\n",
                   r.brute_checked ? "true" : "false");
      std::fprintf(out, "      \"identical\": %s\n",
                   r.identical ? "true" : "false");
      std::fprintf(out, "    }%s\n", (i + 1 < reports.size()) ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", output_path.c_str());
  }
  return identical ? 0 : 2;
}

}  // namespace
}  // namespace depmatch

int main(int argc, char** argv) {
  bool smoke = false;
  bool path_given = false;
  std::string output_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      output_path = arg;
      path_given = true;
    }
  }
  if (!smoke && !path_given) output_path = "BENCH_catalog_scale.json";
  return depmatch::Run(smoke, output_path);
}
