// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// bench_incremental: times the incremental Table2DepGraph path
// (graph/incremental_builder.h) against a cold full rebuild when a
// batch of new rows arrives. The fixture is the paper's lab-exam
// workload at 50K+ rows, date-partitioned by exam_date into a base
// slice plus an append delta (datagen::MakeStreamingSlices with
// order_by = 0 — rows arrive in date order, exactly the streaming shape
// the lab data has), at 1% / 5% / 25% delta sizes.
//
// Per configuration the bench measures:
//   * cold_rebuild — BuildDependencyGraph over ALL rows (base + delta),
//     what a non-incremental pipeline pays on every ingestion;
//   * incremental  — Append(delta) + Refresh() on the retained builder:
//     the service's steady-state ingestion path (MatchService mutates
//     its per-entry builder in place). The state is reset between reps
//     by forking the retained base builder OUTSIDE the timed region —
//     the fork is bench scaffolding, not part of the measured path.
// and asserts, before reporting, that the two graphs are bit-identical
// (exact double equality) — the speedup is only meaningful because the
// answer is exactly the same.
//
// The headline `append_speedup_x` (50K rows, 1% delta) is gated by
// tools/bench_gate.sh as a higher-is-better metric.
//
// `--smoke` runs a pure correctness gate at tiny sizes: Append and
// Merge ingestion, dense and packed-sparse count state, 1/2/8 refold
// threads — every variant must reproduce the cold concatenated-table
// build bit-for-bit.
//
//   DEPMATCH_BENCH_REPS  repetitions per data point (default 3)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "depmatch/common/logging.h"
#include "depmatch/common/string_util.h"
#include "depmatch/datagen/datasets.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/graph/incremental_builder.h"

namespace depmatch {
namespace {

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool GraphsIdentical(const DependencyGraph& a, const DependencyGraph& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a.size(); ++j) {
      if (a.mi(i, j) != b.mi(i, j)) return false;
    }
  }
  return true;
}

struct Sample {
  double delta_fraction = 0.0;
  size_t total_rows = 0;
  size_t delta_rows = 0;
  size_t reps = 0;
  double cold_min_ms = 0.0;
  double cold_mean_ms = 0.0;
  double incremental_min_ms = 0.0;
  double incremental_mean_ms = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

Sample MeasureFraction(const Table& table, double fraction, size_t reps) {
  Result<datagen::StreamingSlices> slices = datagen::MakeStreamingSlices(
      table, 1.0 - fraction, /*num_appends=*/1, /*order_by=*/0);
  DEPMATCH_CHECK(slices.ok());
  Result<Table> full =
      datagen::ConcatenateSlices(slices->base, slices->appends);
  DEPMATCH_CHECK(full.ok());

  // The retained builder over the base slice — built once, outside the
  // timed region, exactly like a live catalog entry's count state.
  Result<IncrementalGraphBuilder> retained =
      IncrementalGraphBuilder::Create(slices->base);
  DEPMATCH_CHECK(retained.ok());

  Sample sample;
  sample.delta_fraction = fraction;
  sample.total_rows = full->num_rows();
  sample.delta_rows = slices->appends[0].num_rows();
  sample.reps = reps;
  sample.cold_min_ms = 1e300;
  sample.incremental_min_ms = 1e300;

  DependencyGraph cold_graph;
  for (size_t rep = 0; rep < reps; ++rep) {
    double ms = TimeMs([&] {
      Result<DependencyGraph> graph = BuildDependencyGraph(*full);
      DEPMATCH_CHECK(graph.ok());
      cold_graph = *std::move(graph);
    });
    sample.cold_min_ms = std::min(sample.cold_min_ms, ms);
    sample.cold_mean_ms += ms;
  }
  sample.cold_mean_ms /= static_cast<double>(reps);

  DependencyGraph incremental_graph;
  for (size_t rep = 0; rep < reps; ++rep) {
    // Untimed state reset: the service appends into a long-lived builder
    // in place, so the measured region is exactly Append + Refresh.
    IncrementalGraphBuilder fork = *retained;
    double ms = TimeMs([&] {
      DEPMATCH_CHECK(fork.Append(slices->appends[0]).ok());
      Result<DependencyGraph> graph = fork.Refresh();
      DEPMATCH_CHECK(graph.ok());
      incremental_graph = *std::move(graph);
    });
    sample.incremental_min_ms = std::min(sample.incremental_min_ms, ms);
    sample.incremental_mean_ms += ms;
  }
  sample.incremental_mean_ms /= static_cast<double>(reps);

  sample.identical = GraphsIdentical(cold_graph, incremental_graph);
  sample.speedup = (sample.incremental_min_ms > 0.0)
                       ? sample.cold_min_ms / sample.incremental_min_ms
                       : 0.0;
  return sample;
}

int Run(const std::string& output_path) {
  size_t reps = 3;
  if (const char* raw = std::getenv("DEPMATCH_BENCH_REPS")) {
    auto parsed = ParseInt64(raw);
    if (parsed.has_value() && *parsed > 0) {
      reps = static_cast<size_t>(*parsed);
    }
  }

  datagen::LabExamConfig config;
  config.num_rows = 51200;  // 50K+ rows, date-partitioned by column 0
  Result<Table> table = datagen::MakeLabExamTable(config, 7);
  DEPMATCH_CHECK(table.ok());

  const std::vector<double> fractions = {0.01, 0.05, 0.25};
  std::vector<Sample> samples;
  bool all_identical = true;
  for (double fraction : fractions) {
    Sample sample = MeasureFraction(*table, fraction, reps);
    std::printf("rows=%-6zu delta=%5.1f%% (%5zu rows)  cold min %8.2f ms   "
                "incremental min %8.2f ms   speedup %7.2fx   identical %s\n",
                sample.total_rows, fraction * 100.0, sample.delta_rows,
                sample.cold_min_ms, sample.incremental_min_ms, sample.speedup,
                sample.identical ? "true" : "false");
    all_identical = all_identical && sample.identical;
    samples.push_back(sample);
  }

  const Sample& headline = samples.front();  // 1% delta
  std::printf("\nheadline (%zu rows, 1%% append): cold %.2f ms -> "
              "incremental %.2f ms = %.2fx\n",
              headline.total_rows, headline.cold_min_ms,
              headline.incremental_min_ms, headline.speedup);
  std::printf("incremental/cold graphs identical: %s\n",
              all_identical ? "true" : "false");

  std::FILE* out = std::fopen(output_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"incremental\",\n");
  std::fprintf(out, "  \"timestamp_utc\": \"%s\",\n",
               benchutil::IsoTimestampUtc().c_str());
  benchutil::WriteMachineJson(out, benchutil::MakeMachineReport({1}), "  ",
                              /*trailing_comma=*/true);
  std::fprintf(out, "  \"incremental_cold_graphs_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"headline\": {\n");
  std::fprintf(out,
               "    \"config\": \"lab exam, %zu rows, 1%% date-partitioned "
               "append, 1 thread\",\n",
               headline.total_rows);
  std::fprintf(out, "    \"cold_rebuild_min_ms\": %.3f,\n",
               headline.cold_min_ms);
  std::fprintf(out, "    \"incremental_min_ms\": %.3f,\n",
               headline.incremental_min_ms);
  std::fprintf(out, "    \"append_speedup_x\": %.3f\n", headline.speedup);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"delta_fraction\": %.2f, \"total_rows\": %zu, "
                 "\"delta_rows\": %zu, \"reps\": %zu, "
                 "\"cold_min_ms\": %.3f, \"cold_mean_ms\": %.3f, "
                 "\"incremental_min_ms\": %.3f, "
                 "\"incremental_mean_ms\": %.3f, \"speedup\": %.3f, "
                 "\"identical\": %s}%s\n",
                 s.delta_fraction, s.total_rows, s.delta_rows, s.reps,
                 s.cold_min_ms, s.cold_mean_ms, s.incremental_min_ms,
                 s.incremental_mean_ms, s.speedup,
                 s.identical ? "true" : "false",
                 (i + 1 < samples.size()) ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", output_path.c_str());
  return all_identical ? 0 : 2;
}

// Tiny-size correctness gate: every ingestion shape must reproduce the
// cold concatenated-table build bit-for-bit.
int Smoke() {
  datagen::LabExamConfig config;
  config.num_rows = 900;
  config.num_test_attributes = 10;
  config.num_null_heavy_attributes = 2;
  Result<Table> table = datagen::MakeLabExamTable(config, 11);
  DEPMATCH_CHECK(table.ok());
  Result<datagen::StreamingSlices> slices = datagen::MakeStreamingSlices(
      *table, 0.5, /*num_appends=*/3, /*order_by=*/0);
  DEPMATCH_CHECK(slices.ok());
  Result<Table> full =
      datagen::ConcatenateSlices(slices->base, slices->appends);
  DEPMATCH_CHECK(full.ok());

  bool ok = true;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (bool sparse : {false, true}) {
      IncrementalBuildOptions options;
      options.graph.num_threads = threads;
      if (sparse) options.dense_state_cell_budget = 0;

      Result<DependencyGraph> cold =
          BuildDependencyGraph(*full, options.graph);
      DEPMATCH_CHECK(cold.ok());

      // Append ingestion: one delta at a time, refresh after each.
      Result<IncrementalGraphBuilder> appended =
          IncrementalGraphBuilder::Create(slices->base, options);
      DEPMATCH_CHECK(appended.ok());
      for (const Table& delta : slices->appends) {
        DEPMATCH_CHECK(appended->Append(delta).ok());
        DEPMATCH_CHECK(appended->Refresh().ok());
      }
      bool append_identical = GraphsIdentical(appended->graph(), *cold);

      // Merge ingestion: an independent builder per slice, merged in
      // arrival order, one refresh at the end.
      Result<IncrementalGraphBuilder> merged =
          IncrementalGraphBuilder::Create(slices->base, options);
      DEPMATCH_CHECK(merged.ok());
      for (const Table& delta : slices->appends) {
        Result<IncrementalGraphBuilder> part =
            IncrementalGraphBuilder::Create(delta, options);
        DEPMATCH_CHECK(part.ok());
        DEPMATCH_CHECK(merged->Merge(*part).ok());
      }
      DEPMATCH_CHECK(merged->Refresh().ok());
      bool merge_identical = GraphsIdentical(merged->graph(), *cold);

      std::printf("smoke threads=%zu state=%-6s append %s merge %s\n",
                  threads, sparse ? "sparse" : "dense",
                  append_identical ? "identical" : "MISMATCH",
                  merge_identical ? "identical" : "MISMATCH");
      ok = ok && append_identical && merge_identical;
    }
  }
  std::printf("bench_incremental smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}

}  // namespace
}  // namespace depmatch

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    return depmatch::Smoke();
  }
  std::string output_path = (argc > 1) ? argv[1] : "BENCH_incremental.json";
  return depmatch::Run(output_path);
}
