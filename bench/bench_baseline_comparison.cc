// Baseline comparison: un-interpreted structure matching vs the classical
// interpreted matchers, on the same table pairs in two regimes:
//
//   plain:  the target keeps its original column names and value
//           encodings (the friendly case for interpreted matchers)
//   opaque: the target's names are replaced and every column re-encoded
//           with an arbitrary one-to-one function (Definition 1.1's f_i)
//
// Expected: name- and value-based matching are competitive on plain data
// and collapse to chance on opaque data; the MI structure matcher is
// unaffected by encoding — the paper's core motivation, quantified.

#include <cstdio>

#include "bench_util.h"
#include "depmatch/common/rng.h"
#include "depmatch/core/schema_matcher.h"
#include "depmatch/datagen/datasets.h"
#include "depmatch/eval/accuracy.h"
#include "depmatch/eval/report.h"
#include "depmatch/match/interpreted_matcher.h"
#include "depmatch/table/table_ops.h"

namespace {

using depmatch::Accuracy;
using depmatch::ComputeAccuracy;
using depmatch::FormatPercent;
using depmatch::MatchPair;
using depmatch::Rng;
using depmatch::Table;
using depmatch::TextTable;
using depmatch::benchutil::Knobs;

// One trial: draw `width` attributes of the lab pair, optionally opaque-
// encode the target, run all four matchers, score against identity.
struct TrialResult {
  Accuracy name;
  Accuracy value_overlap;
  Accuracy structure;
  Accuracy hybrid;
};

TrialResult RunTrial(const Table& t1, const Table& t2, size_t width,
                     bool opaque, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> attrs =
      rng.SampleWithoutReplacement(t1.num_attributes(), width);
  Table source = ProjectColumns(t1, attrs).value();
  // Shuffle the target's column order so positional identity leaks
  // nothing: an uninformed matcher scores ~1/width, not 100%.
  std::vector<size_t> order(width);
  for (size_t i = 0; i < width; ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<size_t> target_attrs(width);
  std::vector<MatchPair> truth;
  for (size_t position = 0; position < width; ++position) {
    target_attrs[position] = attrs[order[position]];
    truth.push_back({order[position], position});
  }
  std::sort(truth.begin(), truth.end());
  Table target = ProjectColumns(t2, target_attrs).value();
  if (opaque) {
    target = OpaqueEncode(target, {}, rng);
  }

  TrialResult out;
  depmatch::InterpretedMatchOptions interpreted;
  auto name = NameBasedMatch(source, target, interpreted);
  if (name.ok()) out.name = ComputeAccuracy(name->pairs, truth);
  auto overlap = ValueOverlapMatch(source, target, interpreted);
  if (overlap.ok()) {
    out.value_overlap = ComputeAccuracy(overlap->pairs, truth);
  }
  depmatch::SchemaMatchOptions structural;
  auto structure = MatchTables(source, target, structural);
  if (structure.ok()) {
    out.structure = ComputeAccuracy(structure->match.pairs, truth);
  }
  depmatch::HybridMatchOptions hybrid;
  auto combined = HybridMatch(source, target, hybrid);
  if (combined.ok()) out.hybrid = ComputeAccuracy(combined->pairs, truth);
  return out;
}

void RunRegime(const char* title, const Table& t1, const Table& t2,
               bool opaque, const Knobs& knobs) {
  std::printf("%s (%zu iterations)\n\n", title, knobs.iterations);
  TextTable table;
  table.SetHeader({"width", "name-based", "value-overlap",
                   "MI structure (DepMatch)", "hybrid"});
  for (size_t width : {4, 8, 12}) {
    double name = 0.0, overlap = 0.0, structure = 0.0, hybrid = 0.0;
    for (size_t i = 0; i < knobs.iterations; ++i) {
      TrialResult trial =
          RunTrial(t1, t2, width, opaque, 9000 + width * 131 + i);
      name += trial.name.precision;
      overlap += trial.value_overlap.precision;
      structure += trial.structure.precision;
      hybrid += trial.hybrid.precision;
    }
    double n = static_cast<double>(knobs.iterations);
    table.AddRow({std::to_string(width), FormatPercent(name / n),
                  FormatPercent(overlap / n), FormatPercent(structure / n),
                  FormatPercent(hybrid / n)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/15);
  depmatch::benchutil::TablePair lab =
      depmatch::benchutil::BuildLabTables(8000, /*seed=*/7);
  RunRegime("Baselines, PLAIN target (names & encodings intact)", lab.t1,
            lab.t2, /*opaque=*/false, knobs);
  RunRegime("Baselines, OPAQUE target (renamed, re-encoded)", lab.t1,
            lab.t2, /*opaque=*/true, knobs);
  return 0;
}
