// Performance microbenchmarks (google-benchmark): the building blocks of
// the two-step algorithm.
//
//   BM_MutualInformation/<rows>/<alphabet>   one pairwise MI estimate
//   BM_BuildDependencyGraph/<attrs>          Table2DepGraph, 10K rows
//   BM_ExhaustiveMatch/<width>               one-to-one B&B, p=3 filter
//   BM_GreedyMatch/<width>
//   BM_GraduatedAssignment/<width>
//
// These quantify the costs the paper works around (its exhaustive runs
// took ~5 hours across workstations; the candidate filter plus
// branch-and-bound keeps one match call far below that).

#include <benchmark/benchmark.h>

#include "depmatch/common/rng.h"
#include "depmatch/datagen/bayes_net.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/match/exhaustive_matcher.h"
#include "depmatch/match/graduated_assignment.h"
#include "depmatch/match/annealing_matcher.h"
#include "depmatch/match/greedy_matcher.h"
#include "depmatch/match/hungarian_matcher.h"
#include "depmatch/stats/entropy.h"

namespace depmatch {
namespace {

// Correlated column pair with the given alphabet.
std::pair<Column, Column> MakeColumns(size_t rows, size_t alphabet) {
  Rng rng(1);
  Column x(DataType::kInt64);
  Column y(DataType::kInt64);
  for (size_t r = 0; r < rows; ++r) {
    int64_t xv = static_cast<int64_t>(rng.NextBounded(alphabet));
    int64_t yv = rng.NextBernoulli(0.7)
                     ? (xv * 31 + 7) % static_cast<int64_t>(alphabet)
                     : static_cast<int64_t>(rng.NextBounded(alphabet));
    x.Append(Value(xv));
    y.Append(Value(yv));
  }
  return {std::move(x), std::move(y)};
}

void BM_MutualInformation(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  size_t alphabet = static_cast<size_t>(state.range(1));
  auto [x, y] = MakeColumns(rows, alphabet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualInformation(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_MutualInformation)
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({10000, 256})
    ->Args({10000, 4096})
    ->Args({100000, 256});

Table MakeChainTable(size_t attrs, size_t rows) {
  datagen::BayesNetSpec spec;
  for (size_t i = 0; i < attrs; ++i) {
    datagen::AttributeGenSpec attr;
    attr.name = "a" + std::to_string(i);
    attr.alphabet_size = 64 + (i % 7) * 50;
    if (i > 0) {
      attr.parents = {i - 1};
      attr.noise = 0.3;
    }
    spec.attributes.push_back(attr);
  }
  return datagen::GenerateBayesNet(spec, rows, 2).value();
}

void BM_BuildDependencyGraph(benchmark::State& state) {
  size_t attrs = static_cast<size_t>(state.range(0));
  Table table = MakeChainTable(attrs, 10000);
  for (auto _ : state) {
    auto graph = BuildDependencyGraph(table);
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(attrs * attrs));
}
BENCHMARK(BM_BuildDependencyGraph)->Arg(5)->Arg(10)->Arg(20)->Arg(30);

// Two related dependency graphs for matcher benchmarks.
struct MatchFixture {
  DependencyGraph g1;
  DependencyGraph g2;
};

MatchFixture MakeMatchFixture(size_t width) {
  Rng rng(3);
  std::vector<std::string> names;
  std::vector<std::vector<double>> m1(width, std::vector<double>(width));
  std::vector<std::vector<double>> m2(width, std::vector<double>(width));
  for (size_t i = 0; i < width; ++i) {
    names.push_back("n" + std::to_string(i));
    double h = 1.0 + rng.NextDouble() * 9.0;
    m1[i][i] = h;
    m2[i][i] = h * (1.0 + 0.05 * (rng.NextDouble() - 0.5));
  }
  for (size_t i = 0; i < width; ++i) {
    for (size_t j = i + 1; j < width; ++j) {
      double v = rng.NextDouble() * std::min(m1[i][i], m1[j][j]) * 0.4;
      m1[i][j] = m1[j][i] = v;
      double w = v * (1.0 + 0.05 * (rng.NextDouble() - 0.5));
      m2[i][j] = m2[j][i] = w;
    }
  }
  return {DependencyGraph::Create(names, m1).value(),
          DependencyGraph::Create(names, m2).value()};
}

MatchOptions BenchOptions() {
  MatchOptions options;
  options.cardinality = Cardinality::kOneToOne;
  options.metric = MetricKind::kMutualInfoEuclidean;
  options.candidates_per_attribute = 3;
  return options;
}

void BM_ExhaustiveMatch(benchmark::State& state) {
  MatchFixture fixture = MakeMatchFixture(
      static_cast<size_t>(state.range(0)));
  MatchOptions options = BenchOptions();
  uint64_t nodes = 0;
  for (auto _ : state) {
    auto result = ExhaustiveMatch(fixture.g1, fixture.g2, options);
    benchmark::DoNotOptimize(result);
    if (result.ok()) nodes = result->nodes_explored;
  }
  state.counters["search_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_ExhaustiveMatch)->Arg(5)->Arg(10)->Arg(15)->Arg(20)->Arg(25);

void BM_GreedyMatch(benchmark::State& state) {
  MatchFixture fixture = MakeMatchFixture(
      static_cast<size_t>(state.range(0)));
  MatchOptions options = BenchOptions();
  options.algorithm = MatchAlgorithm::kGreedy;
  for (auto _ : state) {
    auto result = GreedyMatch(fixture.g1, fixture.g2, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GreedyMatch)->Arg(5)->Arg(10)->Arg(20)->Arg(25);

void BM_GraduatedAssignment(benchmark::State& state) {
  MatchFixture fixture = MakeMatchFixture(
      static_cast<size_t>(state.range(0)));
  MatchOptions options = BenchOptions();
  options.algorithm = MatchAlgorithm::kGraduatedAssignment;
  for (auto _ : state) {
    auto result =
        GraduatedAssignmentMatch(fixture.g1, fixture.g2, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GraduatedAssignment)->Arg(5)->Arg(10)->Arg(20)->Arg(25);

void BM_HungarianMatch(benchmark::State& state) {
  MatchFixture fixture = MakeMatchFixture(
      static_cast<size_t>(state.range(0)));
  MatchOptions options = BenchOptions();
  options.algorithm = MatchAlgorithm::kHungarian;
  options.metric = MetricKind::kEntropyEuclidean;
  for (auto _ : state) {
    auto result = HungarianMatch(fixture.g1, fixture.g2, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HungarianMatch)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Arg(100);

void BM_AnnealingMatch(benchmark::State& state) {
  MatchFixture fixture = MakeMatchFixture(
      static_cast<size_t>(state.range(0)));
  MatchOptions options = BenchOptions();
  options.algorithm = MatchAlgorithm::kSimulatedAnnealing;
  for (auto _ : state) {
    auto result = AnnealingMatch(fixture.g1, fixture.g2, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AnnealingMatch)->Arg(5)->Arg(10)->Arg(20);

void BM_EntropyOf(benchmark::State& state) {
  auto [x, y] = MakeColumns(static_cast<size_t>(state.range(0)), 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EntropyOf(x));
  }
}
BENCHMARK(BM_EntropyOf)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace depmatch

BENCHMARK_MAIN();
