// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared setup for the figure-reproduction benches: builds the paper's
// two dataset pairs —
//   * "Lab Exam 1" / "Lab Exam 2": the synthetic thrombosis table range-
//     partitioned by exam date into two halves, and
//   * census "NY" / "CA": two independent samples of the synthetic census
//     distribution —
// samples the requested number of tuples, restricts to 30 randomly chosen
// attributes (the paper's experimental universe), and returns dependency
// graphs. Also provides the method table (MI/ET x Euclidean/Normal) and
// environment-variable knobs so the benches can be scaled down:
//
//   DEPMATCH_ITERS   iterations per data point (default: per-bench)
//   DEPMATCH_THREADS worker threads for iterations (default 1)

#ifndef DEPMATCH_BENCH_BENCH_UTIL_H_
#define DEPMATCH_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "depmatch/graph/dependency_graph.h"
#include "depmatch/match/matching.h"
#include "depmatch/table/table.h"

namespace depmatch {
namespace benchutil {

struct Knobs {
  size_t iterations = 50;
  size_t num_threads = 1;
};

// Reads DEPMATCH_ITERS / DEPMATCH_THREADS, falling back to the defaults.
Knobs KnobsFromEnv(size_t default_iterations);

// A pair of dependency graphs over the same 30-attribute universe.
struct GraphPair {
  DependencyGraph g1;  // Lab Exam 1 / census NY
  DependencyGraph g2;  // Lab Exam 2 / census CA
};

// The two tables underlying a graph pair (for fragment printing).
struct TablePair {
  Table t1;
  Table t2;
};

// Builds the lab-exam pair at `sample_rows` tuples per half.
// Deterministic in (sample_rows, seed).
GraphPair BuildLabPair(size_t sample_rows, uint64_t seed);
TablePair BuildLabTables(size_t sample_rows, uint64_t seed);

// Builds the census NY/CA pair at `sample_rows` tuples per state.
GraphPair BuildCensusPair(size_t sample_rows, uint64_t seed);
TablePair BuildCensusTables(size_t sample_rows, uint64_t seed);

// The four matching methods compared throughout the paper's Figures 5-6.
struct MethodSpec {
  const char* label;
  MetricKind metric;
  double alpha;
};
// {"MI Euclidean", "MI Normal(3.0)", "ET Euclidean", "ET Normal(3.0)"}.
const std::vector<MethodSpec>& StandardMethods();

// Default number of attributes in the experimental universe (the paper
// uses 30 randomly chosen attributes of each dataset).
inline constexpr size_t kUniverseSize = 30;

// Machine identification for bench JSON output. `detected_hardware_threads`
// is what std::thread::hardware_concurrency() reports (0 when unknown;
// containers may report fewer threads than a run actually uses), and
// `exercised_threads` lists the thread counts the bench really ran —
// the two must be recorded separately, not conflated (a historical
// BENCH_catalog.json recorded hardware_threads=1 for a 2-thread run).
struct MachineReport {
  std::string hostname;
  unsigned detected_hardware_threads = 0;
  std::vector<size_t> exercised_threads;
};

// Fills hostname + detected threads, sorting and deduplicating the
// exercised list.
MachineReport MakeMachineReport(std::vector<size_t> exercised_threads);

// Writes the report as a JSON "machine" object (including compiler and
// build type), indented by `indent`, with a trailing comma iff
// `trailing_comma`.
void WriteMachineJson(std::FILE* out, const MachineReport& report,
                      const char* indent, bool trailing_comma);

// UTC timestamp "YYYY-MM-DDTHH:MM:SSZ" for bench provenance headers.
std::string IsoTimestampUtc();

// Nearest-rank percentile of `samples` (pct in (0, 100]): the value at
// rank ceil(pct/100 * n), so p50 of [1,2,3,4] is 2 and p100 is the max.
// Sorts a copy; returns 0.0 on an empty vector.
double PercentileMs(std::vector<double> samples, double pct);

// Wall-clock latency digest shared by the serving/load benches so each
// does not re-implement timing stats (count, min/mean/max, p50/p99).
struct LatencySummary {
  size_t count = 0;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

// Digest of `samples` (milliseconds). All fields 0 when empty.
LatencySummary SummarizeLatencies(std::vector<double> samples);

}  // namespace benchutil
}  // namespace depmatch

#endif  // DEPMATCH_BENCH_BENCH_UTIL_H_
