// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// bench_match_search: times the four matching search backends (greedy,
// simulated annealing, graduated assignment, exhaustive) against faithful
// replicas of the pre-kernel implementations, and writes the results as
// JSON (default: BENCH_match_search.json, overridable as a path argument)
// so the perf trajectory of the search hot paths is tracked PR over PR.
//
// Two modes per backend and configuration:
//   * new       — the ScoreKernel-based implementation shipped in
//                 src/depmatch/match/ (flat MI rows, precomputed pair-term
//                 table, metric kind hoisted out of the inner loop)
//   * seed_ref  — a faithful replica of the original path (per-move
//                 std::vector<MatchPair> rebuilds through
//                 Metric::IncrementalGain, nested vector<vector<double>>
//                 soft matrices, per-term Compatibility calls), kept here
//                 as the fixed baseline the speedups are measured against
//
// Before any timing, the bench gates on correctness: every backend must
// produce *identical* matchings (same pairs, bit-equal metric value) in
// both modes, and the parallel paths (multi-restart annealing, GA row
// updates, exhaustive root branches) must be bit-identical across thread
// counts. The process exits nonzero if any gate fails.
//
//   --smoke              tiny sizes, 1 rep, no JSON unless a path is given
//   DEPMATCH_BENCH_REPS  repetitions per data point (default 3)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "depmatch/common/logging.h"
#include "depmatch/common/rng.h"
#include "depmatch/common/string_util.h"
#include "depmatch/match/annealing_matcher.h"
#include "depmatch/match/candidate_filter.h"
#include "depmatch/match/exhaustive_matcher.h"
#include "depmatch/match/graduated_assignment.h"
#include "depmatch/match/greedy_matcher.h"
#include "depmatch/match/metric.h"

namespace depmatch {
namespace {

constexpr size_t kUnassigned = static_cast<size_t>(-1);

// ---------------------------------------------------------------------------
// Workload: random MI graphs and a permuted copy, the same shape the unit
// tests use, scaled up. Matching a graph against a permutation of itself
// is the paper's core scenario (same schema, opaque names).

DependencyGraph RandomGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    names.push_back("n" + std::to_string(i));
    m[i][i] = 1.0 + rng.NextDouble() * 9.0;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double v = rng.NextDouble() * std::min(m[i][i], m[j][j]) * 0.5;
      m[i][j] = v;
      m[j][i] = v;
    }
  }
  return DependencyGraph::Create(std::move(names), std::move(m)).value();
}

DependencyGraph Permuted(const DependencyGraph& g, uint64_t seed) {
  std::vector<size_t> order(g.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(order);
  return g.SubGraph(order).value();
}

// ---------------------------------------------------------------------------
// seed_ref: replica of the pre-kernel annealing matcher. Mutable state
// with O(n) gain evaluation that rebuilds an "others" pair vector on every
// call, plus the O(n) linear scan for the owner of a contested target.

class SeedState {
 public:
  SeedState(const DependencyGraph& a, const DependencyGraph& b,
            const Metric& metric, size_t n, size_t m)
      : a_(a), b_(b), metric_(metric), target_of_(n, kUnassigned),
        source_of_(m, kUnassigned) {}

  size_t target_of(size_t s) const { return target_of_[s]; }
  bool target_used(size_t t) const { return source_of_[t] != kUnassigned; }
  double sum() const { return sum_; }

  std::vector<MatchPair> Pairs() const {
    std::vector<MatchPair> pairs;
    for (size_t s = 0; s < target_of_.size(); ++s) {
      if (target_of_[s] != kUnassigned) pairs.push_back({s, target_of_[s]});
    }
    return pairs;
  }

  double GainOf(size_t s, size_t t) const {
    std::vector<MatchPair> others;
    for (size_t s2 = 0; s2 < target_of_.size(); ++s2) {
      if (s2 == s || target_of_[s2] == kUnassigned) continue;
      others.push_back({s2, target_of_[s2]});
    }
    return metric_.IncrementalGain(a_, b_, others, s, t);
  }

  void Assign(size_t s, size_t t) {
    sum_ += GainOf(s, t);
    target_of_[s] = t;
    source_of_[t] = s;
  }

  void Unassign(size_t s) {
    size_t t = target_of_[s];
    target_of_[s] = kUnassigned;
    source_of_[t] = kUnassigned;
    sum_ -= GainOf(s, t);
  }

 private:
  const DependencyGraph& a_;
  const DependencyGraph& b_;
  const Metric& metric_;
  std::vector<size_t> target_of_;
  std::vector<size_t> source_of_;
  double sum_ = 0.0;
};

// Replica of the pre-kernel greedy matcher hot loop (used standalone and
// as the seed annealing start, exactly as the seed did).
Result<MatchResult> SeedGreedyMatch(const DependencyGraph& source,
                                    const DependencyGraph& target,
                                    const MatchOptions& options) {
  size_t n = source.size();
  size_t m = target.size();
  Metric metric(options.metric, options.alpha);
  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);

  MatchResult result;
  result.metric = options.metric;
  std::vector<char> source_done(n, 0);
  std::vector<char> target_used(m, 0);
  std::vector<MatchPair> assigned;
  double sum = 0.0;
  uint64_t nodes = 0;

  bool must_assign_all = options.cardinality != Cardinality::kPartial;
  size_t remaining = n;
  while (remaining > 0) {
    bool found = false;
    double best_gain = 0.0;
    MatchPair best_pair;
    for (size_t s = 0; s < n; ++s) {
      if (source_done[s]) continue;
      for (size_t t : candidates[s]) {
        if (target_used[t]) continue;
        ++nodes;
        double gain = metric.IncrementalGain(source, target, assigned, s, t);
        bool better = !found || (metric.maximize() ? gain > best_gain
                                                   : gain < best_gain);
        if (better) {
          found = true;
          best_gain = gain;
          best_pair = {s, t};
        }
      }
    }
    if (!found) {
      if (must_assign_all) {
        return NotFoundError("seed greedy ran out of candidates");
      }
      break;
    }
    if (!must_assign_all) {
      bool improves = metric.maximize() ? best_gain > 0.0 : best_gain < 0.0;
      if (!improves) break;
    }
    source_done[best_pair.source] = 1;
    target_used[best_pair.target] = 1;
    assigned.push_back(best_pair);
    sum += best_gain;
    --remaining;
  }

  result.pairs = std::move(assigned);
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = metric.Finalize(sum);
  result.nodes_explored = nodes;
  return result;
}

Result<MatchResult> SeedAnnealingMatch(const DependencyGraph& source,
                                       const DependencyGraph& target,
                                       const MatchOptions& options,
                                       const AnnealingParams& params) {
  Metric metric(options.metric, options.alpha);
  size_t n = source.size();
  size_t m = target.size();
  MatchResult result;
  result.metric = options.metric;

  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);

  std::vector<MatchPair> start;
  Result<MatchResult> greedy = SeedGreedyMatch(source, target, options);
  if (greedy.ok()) {
    start = greedy->pairs;
  } else if (greedy.status().code() == StatusCode::kNotFound) {
    std::optional<std::vector<size_t>> feasible =
        FindFeasibleAssignment(candidates, m);
    if (!feasible.has_value()) return greedy.status();
    for (size_t s = 0; s < n; ++s) start.push_back({s, (*feasible)[s]});
  } else {
    return greedy.status();
  }
  std::vector<std::vector<char>> allowed(n, std::vector<char>(m, 0));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t : candidates[s]) allowed[s][t] = 1;
  }

  SeedState state(source, target, metric, n, m);
  for (const MatchPair& pair : start) {
    state.Assign(pair.source, pair.target);
  }

  bool partial = options.cardinality == Cardinality::kPartial;
  bool maximize = metric.maximize();
  auto better = [&](double candidate, double incumbent) {
    return maximize ? candidate > incumbent : candidate < incumbent;
  };

  double best_sum = state.sum();
  std::vector<MatchPair> best_pairs = state.Pairs();
  uint64_t moves_tried = 0;

  Rng rng(params.seed);
  for (double temperature = params.initial_temperature;
       temperature > params.final_temperature;
       temperature *= params.cooling_rate) {
    for (size_t step = 0; step < params.moves_per_node * n; ++step) {
      ++moves_tried;
      size_t s1 = rng.NextBounded(n);
      const std::vector<size_t>& cand = candidates[s1];
      if (cand.empty()) continue;
      size_t t_new = cand[rng.NextBounded(cand.size())];
      size_t t_old = state.target_of(s1);

      double before = state.sum();
      std::vector<std::pair<size_t, size_t>> undo_assign;
      std::vector<size_t> undo_unassign;

      if (t_old == t_new) {
        if (!partial) continue;
        state.Unassign(s1);
        undo_assign.push_back({s1, t_old});
      } else if (!state.target_used(t_new)) {
        if (t_old != kUnassigned) {
          state.Unassign(s1);
          undo_assign.push_back({s1, t_old});
        }
        state.Assign(s1, t_new);
        undo_unassign.push_back(s1);
      } else {
        // The seed's latent O(n) owner scan, preserved for the baseline.
        size_t s2 = kUnassigned;
        for (size_t s = 0; s < n; ++s) {
          if (state.target_of(s) == t_new) {
            s2 = s;
            break;
          }
        }
        if (s2 == kUnassigned || s2 == s1) continue;
        if (t_old == kUnassigned) {
          if (!partial) continue;
          state.Unassign(s2);
          undo_assign.push_back({s2, t_new});
          state.Assign(s1, t_new);
          undo_unassign.push_back(s1);
        } else {
          if (!allowed[s2][t_old]) continue;
          state.Unassign(s1);
          undo_assign.push_back({s1, t_old});
          state.Unassign(s2);
          undo_assign.push_back({s2, t_new});
          state.Assign(s1, t_new);
          undo_unassign.push_back(s1);
          state.Assign(s2, t_old);
          undo_unassign.push_back(s2);
        }
      }

      double delta = state.sum() - before;
      double improvement = maximize ? delta : -delta;
      bool accept = improvement > 0.0 ||
                    rng.NextDouble() < std::exp(improvement / temperature);
      if (!accept) {
        for (auto it = undo_unassign.rbegin(); it != undo_unassign.rend();
             ++it) {
          state.Unassign(*it);
        }
        for (auto it = undo_assign.rbegin(); it != undo_assign.rend();
             ++it) {
          state.Assign(it->first, it->second);
        }
        continue;
      }
      if (better(state.sum(), best_sum)) {
        best_sum = state.sum();
        best_pairs = state.Pairs();
      }
    }
  }

  result.pairs = std::move(best_pairs);
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = metric.Evaluate(source, target, result.pairs);
  result.nodes_explored = moves_tried;
  return result;
}

// ---------------------------------------------------------------------------
// seed_ref: replica of the pre-kernel graduated assignment (nested
// vector<vector<double>> matrices, per-term Compatibility through
// Metric::Term).

double SeedCompatibility(const Metric& metric, double a, double b) {
  double term = metric.Term(a, b);
  return metric.maximize() ? term : -term;
}

std::vector<MatchPair> SeedRound(const std::vector<std::vector<double>>& soft,
                                 size_t n, size_t m, bool allow_unmatched) {
  std::vector<char> src_done(n, 0);
  std::vector<char> tgt_used(m, 0);
  std::vector<MatchPair> pairs;
  size_t remaining = n;
  while (remaining > 0) {
    double best = -std::numeric_limits<double>::infinity();
    size_t bs = 0, bt = 0;
    bool found = false;
    for (size_t s = 0; s < n; ++s) {
      if (src_done[s]) continue;
      for (size_t t = 0; t < m; ++t) {
        if (tgt_used[t]) continue;
        if (soft[s][t] > best) {
          best = soft[s][t];
          bs = s;
          bt = t;
          found = true;
        }
      }
    }
    if (!found) break;
    if (allow_unmatched && soft[bs][m] >= best) {
      src_done[bs] = 1;
      --remaining;
      continue;
    }
    src_done[bs] = 1;
    tgt_used[bt] = 1;
    pairs.push_back({bs, bt});
    --remaining;
  }
  return pairs;
}

Result<MatchResult> SeedGraduatedAssignmentMatch(
    const DependencyGraph& source, const DependencyGraph& target,
    const MatchOptions& options, const GraduatedAssignmentParams& params) {
  size_t n = source.size();
  size_t m = target.size();
  Metric metric(options.metric, options.alpha);
  MatchResult result;
  result.metric = options.metric;

  std::vector<std::vector<size_t>> candidate_lists = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);
  std::vector<std::vector<char>> allowed(n, std::vector<char>(m, 0));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t : candidate_lists[s]) allowed[s][t] = 1;
  }

  std::vector<std::vector<double>> soft(n + 1,
                                        std::vector<double>(m + 1, 0.0));
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < m; ++t) {
      if (!allowed[s][t]) continue;
      soft[s][t] = 1.0 + 1e-3 * static_cast<double>((s * 31 + t * 17) % 7);
    }
    soft[s][m] = 1.0;
  }
  for (size_t t = 0; t <= m; ++t) soft[n][t] = 1.0;

  std::vector<std::vector<double>> gradient(n, std::vector<double>(m, 0.0));

  for (double beta = params.beta_initial; beta <= params.beta_final;
       beta *= params.beta_rate) {
    for (int it = 0; it < params.iterations_per_beta; ++it) {
      for (size_t s = 0; s < n; ++s) {
        for (size_t t = 0; t < m; ++t) {
          if (!allowed[s][t]) continue;
          double q =
              SeedCompatibility(metric, source.mi(s, s), target.mi(t, t));
          if (metric.structural()) {
            for (size_t s2 = 0; s2 < n; ++s2) {
              if (s2 == s) continue;
              for (size_t t2 = 0; t2 < m; ++t2) {
                if (t2 == t || !allowed[s2][t2]) continue;
                if (soft[s2][t2] <= 0.0) continue;
                q += 2.0 * soft[s2][t2] *
                     SeedCompatibility(metric, source.mi(s, s2),
                                       target.mi(t, t2));
              }
            }
          }
          gradient[s][t] = q;
        }
      }
      for (size_t s = 0; s < n; ++s) {
        for (size_t t = 0; t < m; ++t) {
          if (!allowed[s][t]) continue;
          double e = std::min(beta * gradient[s][t], 500.0);
          soft[s][t] = std::exp(e);
        }
        soft[s][m] = 1.0;
      }
      for (size_t t = 0; t <= m; ++t) soft[n][t] = 1.0;
      for (int sk = 0; sk < params.sinkhorn_iterations; ++sk) {
        for (size_t s = 0; s < n; ++s) {
          double row = soft[s][m];
          for (size_t t = 0; t < m; ++t) row += soft[s][t];
          if (row <= 0.0) continue;
          for (size_t t = 0; t <= m; ++t) soft[s][t] /= row;
        }
        for (size_t t = 0; t < m; ++t) {
          double col = soft[n][t];
          for (size_t s = 0; s < n; ++s) col += soft[s][t];
          if (col <= 0.0) continue;
          for (size_t s = 0; s <= n; ++s) soft[s][t] /= col;
        }
      }
    }
  }

  bool allow_unmatched = options.cardinality == Cardinality::kPartial;
  result.pairs = SeedRound(soft, n, m, allow_unmatched);
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = metric.Evaluate(source, target, result.pairs);
  return result;
}

// ---------------------------------------------------------------------------
// seed_ref: replica of the pre-kernel exhaustive branch-and-bound.

class SeedSearch {
 public:
  SeedSearch(const DependencyGraph& a, const DependencyGraph& b,
             const Metric& metric, Cardinality cardinality,
             std::vector<std::vector<size_t>> candidates,
             std::vector<size_t> order, uint64_t node_budget)
      : a_(a), b_(b), metric_(metric), cardinality_(cardinality),
        candidates_(std::move(candidates)), order_(std::move(order)),
        node_budget_(node_budget), used_(b.size(), 0) {
    size_t depth = order_.size();
    min_diag_suffix_.assign(depth + 1, 0.0);
    max_diag_suffix_.assign(depth + 1, 0.0);
    if (cardinality_ != Cardinality::kPartial) {
      for (size_t k = depth; k > 0; --k) {
        size_t s = order_[k - 1];
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (size_t t : candidates_[s]) {
          double term = metric_.Term(a_.mi(s, s), b_.mi(t, t));
          lo = std::min(lo, term);
          hi = std::max(hi, term);
        }
        if (candidates_[s].empty()) {
          lo = 0.0;
          hi = 0.0;
        }
        min_diag_suffix_[k - 1] = min_diag_suffix_[k] + lo;
        max_diag_suffix_[k - 1] = max_diag_suffix_[k] + hi;
      }
    }
  }

  void SeedIncumbent(std::vector<MatchPair> pairs, double sum) {
    has_best_ = true;
    best_sum_ = sum;
    best_pairs_ = std::move(pairs);
  }

  bool Run() {
    if (cardinality_ == Cardinality::kPartial && !has_best_) {
      has_best_ = true;
      best_sum_ = 0.0;
      best_pairs_.clear();
    }
    Dfs(0, 0.0);
    return has_best_;
  }

  const std::vector<MatchPair>& best_pairs() const { return best_pairs_; }
  double best_sum() const { return best_sum_; }

 private:
  double UpperBoundFrom(size_t k) const {
    size_t assigned = assigned_.size();
    size_t remaining = order_.size() - k;
    if (metric_.structural()) {
      double final_count = static_cast<double>(assigned + remaining);
      double now = static_cast<double>(assigned);
      double cells = final_count * final_count - now * now;
      if (cardinality_ == Cardinality::kPartial) {
        return cells * metric_.MaxTerm();
      }
      double r = static_cast<double>(remaining);
      return (cells - r) * metric_.MaxTerm() + max_diag_suffix_[k];
    }
    if (cardinality_ == Cardinality::kPartial) {
      return static_cast<double>(remaining) * metric_.MaxTerm();
    }
    return max_diag_suffix_[k];
  }

  double LowerBoundFrom(size_t k) const { return min_diag_suffix_[k]; }

  bool Improves(double sum) const {
    if (!has_best_) return true;
    return metric_.maximize() ? sum > best_sum_ : sum < best_sum_;
  }

  void RecordIfBetter(double sum) {
    if (Improves(sum)) {
      has_best_ = true;
      best_sum_ = sum;
      best_pairs_ = assigned_;
    }
  }

  void Dfs(size_t k, double sum) {
    if (budget_exhausted_) return;
    if (k == order_.size()) {
      RecordIfBetter(sum);
      return;
    }
    if (has_best_) {
      if (metric_.maximize()) {
        if (sum + UpperBoundFrom(k) <= best_sum_) return;
      } else {
        if (sum + LowerBoundFrom(k) >= best_sum_) return;
      }
    }
    size_t s = order_[k];
    for (size_t t : candidates_[s]) {
      if (used_[t]) continue;
      if (++nodes_explored_ > node_budget_) {
        budget_exhausted_ = true;
        return;
      }
      double gain = metric_.IncrementalGain(a_, b_, assigned_, s, t);
      if (!metric_.maximize() && has_best_ &&
          sum + gain + LowerBoundFrom(k + 1) >= best_sum_) {
        continue;
      }
      used_[t] = 1;
      assigned_.push_back({s, t});
      Dfs(k + 1, sum + gain);
      assigned_.pop_back();
      used_[t] = 0;
      if (budget_exhausted_) return;
    }
    if (cardinality_ == Cardinality::kPartial) {
      Dfs(k + 1, sum);
    }
  }

  const DependencyGraph& a_;
  const DependencyGraph& b_;
  const Metric& metric_;
  Cardinality cardinality_;
  std::vector<std::vector<size_t>> candidates_;
  std::vector<size_t> order_;
  uint64_t node_budget_;

  std::vector<char> used_;
  std::vector<double> min_diag_suffix_;
  std::vector<double> max_diag_suffix_;
  std::vector<MatchPair> assigned_;
  std::vector<MatchPair> best_pairs_;
  double best_sum_ = 0.0;
  bool has_best_ = false;
  uint64_t nodes_explored_ = 0;
  bool budget_exhausted_ = false;
};

Result<MatchResult> SeedExhaustiveMatch(const DependencyGraph& source,
                                        const DependencyGraph& target,
                                        const MatchOptions& options) {
  size_t n = source.size();
  size_t m = target.size();
  Metric metric(options.metric, options.alpha);
  MatchResult result;
  result.metric = options.metric;

  std::vector<std::vector<size_t>> candidates = ComputeEntropyCandidates(
      source, target, options.candidates_per_attribute);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return source.entropy(x) > source.entropy(y);
  });

  std::optional<std::vector<MatchPair>> incumbent;
  if (options.cardinality != Cardinality::kPartial) {
    std::optional<std::vector<size_t>> assignment =
        FindFeasibleAssignment(candidates, m);
    if (!assignment.has_value()) {
      return NotFoundError("seed exhaustive: filter admits no assignment");
    }
    incumbent.emplace();
    for (size_t s = 0; s < n; ++s) {
      incumbent->push_back({s, (*assignment)[s]});
    }
  }

  SeedSearch search(source, target, metric, options.cardinality,
                    std::move(candidates), std::move(order),
                    options.max_search_nodes);
  if (incumbent.has_value()) {
    search.SeedIncumbent(*incumbent,
                         metric.EvaluateSum(source, target, *incumbent));
  }
  if (!search.Run()) {
    return NotFoundError("seed exhaustive: filter admits no assignment");
  }
  result.pairs = search.best_pairs();
  std::sort(result.pairs.begin(), result.pairs.end());
  result.metric_value = metric.Finalize(search.best_sum());
  return result;
}

// ---------------------------------------------------------------------------
// Harness.

struct Sample {
  std::string backend;
  size_t attrs;
  size_t threads;
  size_t restarts;
  std::string mode;
  size_t reps;
  double min_ms;
  double mean_ms;
};

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

Sample Measure(const std::string& backend, size_t attrs, size_t threads,
               size_t restarts, const std::string& mode, size_t reps,
               const std::function<void()>& fn) {
  Sample sample{backend, attrs, threads, restarts, mode, reps, 1e300, 0.0};
  for (size_t rep = 0; rep < reps; ++rep) {
    double ms = TimeMs(fn);
    sample.min_ms = std::min(sample.min_ms, ms);
    sample.mean_ms += ms;
  }
  sample.mean_ms /= static_cast<double>(reps);
  std::printf("%-22s attrs=%-3zu threads=%zu restarts=%zu %-9s "
              "min %9.3f ms   mean %9.3f ms\n",
              backend.c_str(), attrs, threads, restarts, mode.c_str(),
              sample.min_ms, sample.mean_ms);
  return sample;
}

bool SameMatching(const MatchResult& x, const MatchResult& y) {
  return x.pairs == y.pairs && x.metric_value == y.metric_value;
}

std::string IsoTimestampUtc() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::tm utc;
  gmtime_r(&now, &utc);
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

std::string HostName() {
  char buffer[256] = {0};
  if (gethostname(buffer, sizeof(buffer) - 1) != 0) return "unknown";
  return buffer;
}

MatchOptions BaseOptions() {
  MatchOptions options;
  options.cardinality = Cardinality::kOneToOne;
  options.metric = MetricKind::kMutualInfoNormal;
  options.alpha = 3.0;
  options.candidates_per_attribute = 0;
  return options;
}

int Run(bool smoke, const std::string& output_path) {
  size_t reps = smoke ? 1 : 3;
  if (const char* raw = std::getenv("DEPMATCH_BENCH_REPS")) {
    auto parsed = ParseInt64(raw);
    if (parsed.has_value() && *parsed > 0) {
      reps = static_cast<size_t>(*parsed);
    }
  }

  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{6} : std::vector<size_t>{10, 20, 30};
  const size_t exhaustive_size = smoke ? 6 : 10;

  std::vector<Sample> samples;
  bool identical = true;
  bool thread_invariant = true;
  auto gate = [&](bool ok, const char* what, size_t attrs) {
    if (!ok) {
      identical = false;
      std::fprintf(stderr, "GATE FAILED: %s at %zu attrs\n", what, attrs);
    }
  };

  double annealing_seed_ms = 0.0;
  double annealing_new_ms = 0.0;
  double ga_seed_ms = 0.0;
  double ga_new4_ms = 0.0;
  size_t headline_attrs = sizes.back();

  for (size_t n : sizes) {
    DependencyGraph a = RandomGraph(n, 1000 + n);
    DependencyGraph b = Permuted(a, 2000 + n);
    MatchOptions options = BaseOptions();

    // --- greedy ---------------------------------------------------------
    auto greedy_seed = SeedGreedyMatch(a, b, options);
    auto greedy_new = GreedyMatch(a, b, options);
    DEPMATCH_CHECK(greedy_seed.ok() && greedy_new.ok());
    gate(SameMatching(*greedy_seed, *greedy_new), "greedy", n);
    samples.push_back(Measure("greedy", n, 1, 1, "seed_ref", reps, [&] {
      DEPMATCH_CHECK(SeedGreedyMatch(a, b, options).ok());
    }));
    samples.push_back(Measure("greedy", n, 1, 1, "new", reps, [&] {
      DEPMATCH_CHECK(GreedyMatch(a, b, options).ok());
    }));

    // --- simulated annealing -------------------------------------------
    AnnealingParams sa_params;
    auto sa_seed = SeedAnnealingMatch(a, b, options, sa_params);
    auto sa_new = AnnealingMatch(a, b, options, sa_params);
    DEPMATCH_CHECK(sa_seed.ok() && sa_new.ok());
    gate(SameMatching(*sa_seed, *sa_new), "annealing", n);
    Sample s = Measure("annealing", n, 1, 1, "seed_ref", reps, [&] {
      DEPMATCH_CHECK(SeedAnnealingMatch(a, b, options, sa_params).ok());
    });
    if (n == headline_attrs) annealing_seed_ms = s.min_ms;
    samples.push_back(std::move(s));
    s = Measure("annealing", n, 1, 1, "new", reps, [&] {
      DEPMATCH_CHECK(AnnealingMatch(a, b, options, sa_params).ok());
    });
    if (n == headline_attrs) annealing_new_ms = s.min_ms;
    samples.push_back(std::move(s));

    // Multi-restart portfolio: bit-identical at 1, 2, 8 threads, and
    // restart 0 reproduces the single-restart trajectory, so the winner
    // can never be worse than the seed path's result.
    AnnealingParams multi = sa_params;
    multi.num_restarts = 4;
    MatchOptions threaded = options;
    threaded.num_threads = 1;
    auto multi_1 = AnnealingMatch(a, b, threaded, multi);
    DEPMATCH_CHECK(multi_1.ok());
    for (size_t threads : {size_t{2}, size_t{8}}) {
      threaded.num_threads = threads;
      auto multi_t = AnnealingMatch(a, b, threaded, multi);
      DEPMATCH_CHECK(multi_t.ok());
      if (!SameMatching(*multi_1, *multi_t)) {
        thread_invariant = false;
        std::fprintf(stderr,
                     "GATE FAILED: multi-restart annealing differs at "
                     "%zu threads (%zu attrs)\n",
                     threads, n);
      }
    }
    threaded.num_threads = 4;
    samples.push_back(Measure("annealing", n, 4, 4, "new", reps, [&] {
      DEPMATCH_CHECK(AnnealingMatch(a, b, threaded, multi).ok());
    }));

    // --- graduated assignment ------------------------------------------
    GraduatedAssignmentParams ga_params;
    auto ga_seed = SeedGraduatedAssignmentMatch(a, b, options, ga_params);
    auto ga_new = GraduatedAssignmentMatch(a, b, options, ga_params);
    DEPMATCH_CHECK(ga_seed.ok() && ga_new.ok());
    gate(SameMatching(*ga_seed, *ga_new), "graduated_assignment", n);
    MatchOptions ga4 = options;
    ga4.num_threads = 4;
    auto ga_new4 = GraduatedAssignmentMatch(a, b, ga4, ga_params);
    DEPMATCH_CHECK(ga_new4.ok());
    if (!SameMatching(*ga_new, *ga_new4)) {
      thread_invariant = false;
      std::fprintf(stderr,
                   "GATE FAILED: GA differs at 4 threads (%zu attrs)\n", n);
    }
    s = Measure("graduated_assignment", n, 1, 1, "seed_ref", reps, [&] {
      DEPMATCH_CHECK(
          SeedGraduatedAssignmentMatch(a, b, options, ga_params).ok());
    });
    if (n == headline_attrs) ga_seed_ms = s.min_ms;
    samples.push_back(std::move(s));
    samples.push_back(
        Measure("graduated_assignment", n, 1, 1, "new", reps, [&] {
          DEPMATCH_CHECK(
              GraduatedAssignmentMatch(a, b, options, ga_params).ok());
        }));
    s = Measure("graduated_assignment", n, 4, 1, "new", reps, [&] {
      DEPMATCH_CHECK(GraduatedAssignmentMatch(a, b, ga4, ga_params).ok());
    });
    if (n == headline_attrs) ga_new4_ms = s.min_ms;
    samples.push_back(std::move(s));
  }

  // --- exhaustive (separate, smaller size: the search space is n!) ------
  {
    size_t n = exhaustive_size;
    DependencyGraph a = RandomGraph(n, 3000 + n);
    DependencyGraph b = Permuted(a, 4000 + n);
    MatchOptions options = BaseOptions();
    auto ex_seed = SeedExhaustiveMatch(a, b, options);
    auto ex_new = ExhaustiveMatch(a, b, options);
    DEPMATCH_CHECK(ex_seed.ok() && ex_new.ok());
    gate(SameMatching(*ex_seed, *ex_new), "exhaustive", n);
    MatchOptions ex4 = options;
    ex4.num_threads = 4;
    auto ex_new4 = ExhaustiveMatch(a, b, ex4);
    DEPMATCH_CHECK(ex_new4.ok());
    if (!SameMatching(*ex_new, *ex_new4)) {
      thread_invariant = false;
      std::fprintf(stderr,
                   "GATE FAILED: exhaustive differs at 4 threads\n");
    }
    samples.push_back(Measure("exhaustive", n, 1, 1, "seed_ref", reps, [&] {
      DEPMATCH_CHECK(SeedExhaustiveMatch(a, b, options).ok());
    }));
    samples.push_back(Measure("exhaustive", n, 1, 1, "new", reps, [&] {
      DEPMATCH_CHECK(ExhaustiveMatch(a, b, options).ok());
    }));
    samples.push_back(Measure("exhaustive", n, 4, 1, "new", reps, [&] {
      DEPMATCH_CHECK(ExhaustiveMatch(a, b, ex4).ok());
    }));
  }

  double annealing_speedup = (annealing_new_ms > 0.0)
                                 ? annealing_seed_ms / annealing_new_ms
                                 : 0.0;
  double ga_speedup = (ga_new4_ms > 0.0) ? ga_seed_ms / ga_new4_ms : 0.0;
  std::printf("\nannealing (%zu attrs, 1 thread): seed %.3f ms -> "
              "new %.3f ms = %.2fx speedup\n",
              headline_attrs, annealing_seed_ms, annealing_new_ms,
              annealing_speedup);
  std::printf("graduated assignment (%zu attrs, 4 threads): seed %.3f ms "
              "-> new %.3f ms = %.2fx speedup\n",
              headline_attrs, ga_seed_ms, ga_new4_ms, ga_speedup);
  std::printf("new matchings identical: %s\n",
              identical ? "true" : "false");
  std::printf("thread-count invariant: %s\n",
              thread_invariant ? "true" : "false");

  if (!output_path.empty()) {
    std::FILE* out = std::fopen(output_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"match_search\",\n");
    std::fprintf(out, "  \"timestamp_utc\": \"%s\",\n",
                 IsoTimestampUtc().c_str());
    std::fprintf(out, "  \"machine\": {\n");
    std::fprintf(out, "    \"hostname\": \"%s\",\n", HostName().c_str());
    std::fprintf(out, "    \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "    \"compiler\": \"%s\",\n", __VERSION__);
#ifdef NDEBUG
    std::fprintf(out, "    \"build_type\": \"Release\"\n");
#else
    std::fprintf(out, "    \"build_type\": \"Debug\"\n");
#endif
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"new_matchings_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(out, "  \"thread_count_invariant\": %s,\n",
                 thread_invariant ? "true" : "false");
    std::fprintf(out, "  \"headline\": {\n");
    std::fprintf(out,
                 "    \"annealing\": {\"config\": \"%zu attrs, one-to-one "
                 "mi_normal, 1 thread\", \"seed_ref_min_ms\": %.3f, "
                 "\"new_min_ms\": %.3f, \"speedup\": %.3f},\n",
                 headline_attrs, annealing_seed_ms, annealing_new_ms,
                 annealing_speedup);
    std::fprintf(out,
                 "    \"graduated_assignment\": {\"config\": \"%zu attrs, "
                 "one-to-one mi_normal, 4 threads\", \"seed_ref_min_ms\": "
                 "%.3f, \"new_min_ms\": %.3f, \"speedup\": %.3f}\n",
                 headline_attrs, ga_seed_ms, ga_new4_ms, ga_speedup);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"results\": [\n");
    for (size_t i = 0; i < samples.size(); ++i) {
      const Sample& smp = samples[i];
      std::fprintf(out,
                   "    {\"backend\": \"%s\", \"attrs\": %zu, "
                   "\"threads\": %zu, \"restarts\": %zu, \"mode\": \"%s\", "
                   "\"reps\": %zu, \"min_ms\": %.3f, \"mean_ms\": %.3f}%s\n",
                   smp.backend.c_str(), smp.attrs, smp.threads,
                   smp.restarts, smp.mode.c_str(), smp.reps, smp.min_ms,
                   smp.mean_ms, (i + 1 < samples.size()) ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", output_path.c_str());
  }
  return (identical && thread_invariant) ? 0 : 2;
}

}  // namespace
}  // namespace depmatch

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output_path;
  bool path_given = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      output_path = arg;
      path_given = true;
    }
  }
  // Smoke mode is a correctness gate for ctest; it only writes JSON when
  // a path is explicitly requested.
  if (!smoke && !path_given) output_path = "BENCH_match_search.json";
  return depmatch::Run(smoke, output_path);
}
