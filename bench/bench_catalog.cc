// Copyright 2026 The DepMatch Authors.
// Licensed under the Apache License, Version 2.0.
//
// bench_catalog: catalog-scale top-k schema search over a synthetic
// corpus of dependency graphs. One query table is searched against an
// N-entry catalog three ways over the exact same entries:
//
//   * brute_seq           — no prefilter, serial: a full GraphMatch per
//                           compatible entry (the all-pairs baseline)
//   * prefilter_seq       — signature prefilter on, serial
//   * prefilter_parallel  — signature prefilter on, catalog fan-out
//                           across the thread pool
//
// Before timing, the three modes' rankings are asserted identical entry
// for entry and bit-for-bit in every ranking key — the prefilter and the
// parallel fan-out are required to be unobservable in the results. The
// run also reports the prefilter's prune rate and the cold
// (Table2DepGraph per table) versus warm (GraphCatalog::Load of the
// serialized store) catalog construction time.
//
// The corpus mirrors the catalog-search use case: a few entries drawn
// from the query's own generating distribution (different seeds, same
// joint — the paper's two-halves relationship), a mild-overlap band, a
// large unrelated majority with very different alphabet scales, and a
// band of narrower tables that are width-incompatible with an onto
// match.
//
//   DEPMATCH_BENCH_REPS  repetitions per mode (default 3)
//   --smoke              tiny corpus, 1 rep, no JSON unless a path given

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "depmatch/common/logging.h"
#include "depmatch/common/string_util.h"
#include "depmatch/core/graph_catalog.h"
#include "depmatch/datagen/bayes_net.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/graph/graph_io.h"

namespace depmatch {
namespace {

// A chain Bayes net: attribute i depends on i-1, so the MI matrix has a
// strong band structure the matchers can lock onto.
datagen::BayesNetSpec ChainSpec(size_t width, size_t alphabet_base,
                                double noise) {
  datagen::BayesNetSpec spec;
  for (size_t i = 0; i < width; ++i) {
    datagen::AttributeGenSpec attr;
    attr.name = "c" + std::to_string(i);
    attr.alphabet_size = alphabet_base + (i * 13) % (alphabet_base * 2);
    if (i > 0) {
      attr.parents = {i - 1};
      attr.noise = noise;
    }
    spec.attributes.push_back(attr);
  }
  return spec;
}

// Independent attributes with `alphabet` symbols each: (near-)zero MI
// everywhere, entropies clustered around log2(alphabet).
datagen::BayesNetSpec IndependentSpec(size_t width, size_t alphabet) {
  datagen::BayesNetSpec spec;
  for (size_t i = 0; i < width; ++i) {
    datagen::AttributeGenSpec attr;
    attr.name = "u" + std::to_string(i);
    attr.alphabet_size = alphabet;
    spec.attributes.push_back(attr);
  }
  return spec;
}

DependencyGraph BuildGraph(const datagen::BayesNetSpec& spec, size_t rows,
                           uint64_t seed) {
  Result<Table> table = datagen::GenerateBayesNet(spec, rows, seed);
  DEPMATCH_CHECK(table.ok());
  Result<DependencyGraph> graph = BuildDependencyGraph(table.value());
  DEPMATCH_CHECK(graph.ok());
  return std::move(graph).value();
}

struct Corpus {
  DependencyGraph query;
  GraphCatalog catalog;
  double cold_build_ms = 0.0;  // tables -> graphs -> inserts
};

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Corpus bands: the absolute counts scale down in smoke mode but keep
// every band represented.
Corpus MakeCorpus(bool smoke, uint64_t seed) {
  const size_t rows = smoke ? 400 : 2000;
  const size_t query_width = 6;
  const size_t related = smoke ? 2 : 4;
  const size_t mild = smoke ? 2 : 4;
  const size_t unrelated = smoke ? 4 : 28;
  const size_t incompatible = smoke ? 2 : 4;

  datagen::BayesNetSpec family = ChainSpec(query_width, 16, 0.15);

  Corpus corpus;
  corpus.query = BuildGraph(family, rows, seed);
  corpus.cold_build_ms = TimeMs([&] {
    size_t entry = 0;
    // Same joint distribution as the query, fresh samples: these should
    // surface as the top of the ranking.
    for (size_t i = 0; i < related; ++i) {
      datagen::BayesNetSpec wide = ChainSpec(query_width + i % 2, 16, 0.15);
      DEPMATCH_CHECK(corpus.catalog
                         .Insert("related" + std::to_string(entry++),
                                 BuildGraph(wide, rows, seed + 100 + i))
                         .ok());
    }
    // Chains again, but other alphabet scales and noisier links: some
    // structural resemblance without being the same schema.
    for (size_t i = 0; i < mild; ++i) {
      datagen::BayesNetSpec other =
          ChainSpec(query_width + i % 2, 48, 0.45);
      DEPMATCH_CHECK(corpus.catalog
                         .Insert("mild" + std::to_string(entry++),
                                 BuildGraph(other, rows, seed + 200 + i))
                         .ok());
    }
    // The unrelated majority: independent columns over tiny or huge
    // alphabets, so both entropies and MI profiles sit far from the
    // query's and the admissible bound collapses.
    for (size_t i = 0; i < unrelated; ++i) {
      size_t alphabet = (i % 2 == 0) ? 2 : 300;
      datagen::BayesNetSpec noise =
          IndependentSpec(query_width + i % 3, alphabet);
      DEPMATCH_CHECK(corpus.catalog
                         .Insert("unrelated" + std::to_string(entry++),
                                 BuildGraph(noise, rows, seed + 300 + i))
                         .ok());
    }
    // Narrower than the query: onto-incompatible, skipped upfront.
    for (size_t i = 0; i < incompatible; ++i) {
      datagen::BayesNetSpec narrow = ChainSpec(query_width - 2, 16, 0.15);
      DEPMATCH_CHECK(corpus.catalog
                         .Insert("narrow" + std::to_string(entry++),
                                 BuildGraph(narrow, rows, seed + 400 + i))
                         .ok());
    }
  });
  return corpus;
}

CatalogSearchOptions SearchConfig(bool use_prefilter, size_t num_threads) {
  CatalogSearchOptions options;
  options.k = 3;
  options.match.cardinality = Cardinality::kOnto;
  options.match.metric = MetricKind::kMutualInfoNormal;
  options.match.alpha = 3.0;
  // Annealing: deterministic per seed and with a per-entry cost that does
  // not depend on how hopeless the entry is, so the brute-force baseline
  // measures exactly (number of entries) x (cost per match).
  options.match.algorithm = MatchAlgorithm::kSimulatedAnnealing;
  options.use_prefilter = use_prefilter;
  options.num_threads = num_threads;
  return options;
}

bool SameRanking(const CatalogSearchResult& a, const CatalogSearchResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].entry != b.ranked[i].entry) return false;
    if (std::bit_cast<uint64_t>(a.ranked[i].ranking_key) !=
        std::bit_cast<uint64_t>(b.ranked[i].ranking_key)) {
      return false;
    }
    if (a.ranked[i].match.pairs != b.ranked[i].match.pairs) return false;
  }
  return true;
}

struct ModeSample {
  std::string mode;
  size_t threads = 1;
  size_t reps = 0;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  CatalogSearchStats stats;
};

ModeSample Measure(const Corpus& corpus, const CatalogSearchOptions& options,
                   const std::string& mode, size_t reps) {
  ModeSample sample;
  sample.mode = mode;
  sample.threads = options.num_threads;
  sample.reps = reps;
  sample.min_ms = 1e300;
  for (size_t rep = 0; rep < reps; ++rep) {
    CatalogSearchResult result;
    double ms = TimeMs([&] {
      Result<CatalogSearchResult> search =
          SearchCatalog(corpus.query, corpus.catalog, options);
      DEPMATCH_CHECK(search.ok());
      result = *std::move(search);
    });
    sample.min_ms = std::min(sample.min_ms, ms);
    sample.mean_ms += ms;
    sample.stats = result.stats;
  }
  sample.mean_ms /= static_cast<double>(reps);
  return sample;
}

int Run(bool smoke, const std::string& output_path) {
  size_t reps = smoke ? 1 : 3;
  if (const char* raw = std::getenv("DEPMATCH_BENCH_REPS")) {
    auto parsed = ParseInt64(raw);
    if (parsed.has_value() && *parsed > 0) {
      reps = static_cast<size_t>(*parsed);
    }
  }

  const uint64_t seed = 7;
  Corpus corpus = MakeCorpus(smoke, seed);
  std::printf("corpus: %zu entries (query width %zu), built cold in %.2f ms\n",
              corpus.catalog.size(), corpus.query.size(),
              corpus.cold_build_ms);

  // Persistence: save once, then time the warm load of the whole store.
  std::string store_path =
      (output_path.empty() ? std::string("bench_catalog_store")
                           : output_path) +
      ".dmc";
  Status saved = corpus.catalog.Save(store_path);
  DEPMATCH_CHECK(saved.ok());
  std::string store_bytes;
  DEPMATCH_CHECK(graphio::ReadFileToString(store_path, &store_bytes).ok());
  double warm_load_ms = 1e300;
  for (size_t rep = 0; rep < reps; ++rep) {
    warm_load_ms = std::min(warm_load_ms, TimeMs([&] {
      Result<GraphCatalog> loaded = GraphCatalog::Load(store_path);
      DEPMATCH_CHECK(loaded.ok());
      DEPMATCH_CHECK(loaded->size() == corpus.catalog.size());
    }));
  }
  std::remove(store_path.c_str());

  // Correctness gate: all three modes must return the identical top-k.
  size_t fanout_threads =
      std::max<size_t>(2, std::thread::hardware_concurrency());
  Result<CatalogSearchResult> brute =
      SearchCatalog(corpus.query, corpus.catalog, SearchConfig(false, 1));
  DEPMATCH_CHECK(brute.ok());
  bool identical = true;
  for (const CatalogSearchOptions& options :
       {SearchConfig(true, 1), SearchConfig(true, fanout_threads)}) {
    Result<CatalogSearchResult> other =
        SearchCatalog(corpus.query, corpus.catalog, options);
    DEPMATCH_CHECK(other.ok());
    if (!SameRanking(brute.value(), other.value())) identical = false;
  }

  struct ModeConfig {
    const char* name;
    bool prefilter;
    size_t threads;
  };
  const ModeConfig modes[] = {
      {"brute_seq", false, 1},
      {"prefilter_seq", true, 1},
      {"prefilter_parallel", true, fanout_threads},
  };
  std::vector<ModeSample> samples;
  for (const ModeConfig& mode : modes) {
    ModeSample sample =
        Measure(corpus, SearchConfig(mode.prefilter, mode.threads), mode.name,
                reps);
    std::printf(
        "%-19s threads=%zu  min %9.2f ms  mean %9.2f ms  "
        "(searched %zu, pruned %zu, incompatible %zu of %zu)\n",
        sample.mode.c_str(), sample.threads, sample.min_ms, sample.mean_ms,
        sample.stats.entries_searched, sample.stats.entries_pruned,
        sample.stats.entries_incompatible, sample.stats.entries_total);
    samples.push_back(std::move(sample));
  }

  const ModeSample& baseline = samples[0];
  const ModeSample& headline = samples[2];
  double speedup =
      headline.min_ms > 0.0 ? baseline.min_ms / headline.min_ms : 0.0;
  const CatalogSearchStats& prune_stats = samples[1].stats;
  size_t compatible =
      prune_stats.entries_total - prune_stats.entries_incompatible;
  double prune_rate =
      compatible > 0 ? static_cast<double>(prune_stats.entries_pruned) /
                           static_cast<double>(compatible)
                     : 0.0;

  std::printf("\nheadline: brute %.2f ms -> prefiltered parallel %.2f ms = "
              "%.2fx speedup (prune rate %.0f%%, warm load %.2f ms vs cold "
              "build %.2f ms)\n",
              baseline.min_ms, headline.min_ms, speedup, prune_rate * 100.0,
              warm_load_ms, corpus.cold_build_ms);
  std::printf("identical top-k across modes: %s\n",
              identical ? "true" : "false");

  if (!output_path.empty()) {
    std::FILE* out = std::fopen(output_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"catalog\",\n");
    std::fprintf(out, "  \"timestamp_utc\": \"%s\",\n",
                 benchutil::IsoTimestampUtc().c_str());
    benchutil::WriteMachineJson(
        out, benchutil::MakeMachineReport({1, fanout_threads}), "  ",
        /*trailing_comma=*/true);
    std::fprintf(out, "  \"corpus\": {\n");
    std::fprintf(out, "    \"entries\": %zu,\n", corpus.catalog.size());
    std::fprintf(out, "    \"query_width\": %zu,\n", corpus.query.size());
    std::fprintf(out, "    \"k\": 3\n");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"store\": {\n");
    std::fprintf(out, "    \"file_bytes\": %zu,\n", store_bytes.size());
    std::fprintf(out, "    \"cold_build_ms\": %.3f,\n", corpus.cold_build_ms);
    std::fprintf(out, "    \"warm_load_ms\": %.3f\n", warm_load_ms);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"prefilter\": {\n");
    std::fprintf(out, "    \"entries_total\": %zu,\n",
                 prune_stats.entries_total);
    std::fprintf(out, "    \"entries_incompatible\": %zu,\n",
                 prune_stats.entries_incompatible);
    std::fprintf(out, "    \"entries_pruned\": %zu,\n",
                 prune_stats.entries_pruned);
    std::fprintf(out, "    \"entries_searched\": %zu,\n",
                 prune_stats.entries_searched);
    std::fprintf(out, "    \"prune_rate\": %.3f\n", prune_rate);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"headline\": {\n");
    std::fprintf(out, "    \"brute_seq_min_ms\": %.3f,\n", baseline.min_ms);
    std::fprintf(out, "    \"prefilter_parallel_min_ms\": %.3f,\n",
                 headline.min_ms);
    std::fprintf(out, "    \"threads\": %zu,\n", headline.threads);
    std::fprintf(out, "    \"speedup\": %.3f,\n", speedup);
    std::fprintf(out, "    \"identical\": %s\n",
                 identical ? "true" : "false");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"results\": [\n");
    for (size_t i = 0; i < samples.size(); ++i) {
      const ModeSample& s = samples[i];
      std::fprintf(out,
                   "    {\"mode\": \"%s\", \"threads\": %zu, \"reps\": %zu, "
                   "\"min_ms\": %.3f, \"mean_ms\": %.3f, "
                   "\"entries_searched\": %zu, \"entries_pruned\": %zu}%s\n",
                   s.mode.c_str(), s.threads, s.reps, s.min_ms, s.mean_ms,
                   s.stats.entries_searched, s.stats.entries_pruned,
                   (i + 1 < samples.size()) ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", output_path.c_str());
  }
  return identical ? 0 : 2;
}

}  // namespace
}  // namespace depmatch

int main(int argc, char** argv) {
  bool smoke = false;
  bool path_given = false;
  std::string output_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      output_path = arg;
      path_given = true;
    }
  }
  if (!smoke && !path_given) output_path = "BENCH_catalog.json";
  return depmatch::Run(smoke, output_path);
}
