// Reproduces Figure 7: partial mapping precision and recall.
//
// Source and target schemas fixed at 12 attributes; the number of true
// matches (attributes present on both sides) varies from 2 to 10. The
// normal distance metric is used (the Euclidean metric is monotonic and
// unusable here, Definition 2.5) with control parameter alpha in
// {1, 4, 7}, for both MI and entropy-only matching, on both datasets.
//
// Expected shape: accuracy improves with the number of true matches;
// larger alpha -> higher precision / lower recall (more conservative);
// MI beats ET; small-overlap cases are much harder than onto.

#include <cstdio>

#include "bench_util.h"
#include "depmatch/eval/experiment.h"
#include "depmatch/eval/report.h"

namespace {

using depmatch::Cardinality;
using depmatch::FormatPercent;
using depmatch::MetricKind;
using depmatch::SubsetExperimentConfig;
using depmatch::TextTable;
using depmatch::benchutil::GraphPair;
using depmatch::benchutil::Knobs;

constexpr size_t kSchemaSize = 12;
constexpr double kAlphas[] = {1.0, 4.0, 7.0};

struct Series {
  const char* label;
  MetricKind metric;
  double alpha;
};

std::vector<Series> PartialSeries() {
  std::vector<Series> series;
  static const char* kMiLabels[] = {"MI Normal(1.0)", "MI Normal(4.0)",
                                    "MI Normal(7.0)"};
  static const char* kEtLabels[] = {"ET Normal(1.0)", "ET Normal(4.0)",
                                    "ET Normal(7.0)"};
  for (int i = 0; i < 3; ++i) {
    series.push_back(
        {kMiLabels[i], MetricKind::kMutualInfoNormal, kAlphas[i]});
  }
  for (int i = 0; i < 3; ++i) {
    series.push_back({kEtLabels[i], MetricKind::kEntropyNormal, kAlphas[i]});
  }
  return series;
}

void RunDataset(const char* title, const GraphPair& pair,
                const Knobs& knobs) {
  std::vector<Series> series = PartialSeries();
  TextTable precision_table;
  TextTable recall_table;
  std::vector<std::string> header = {"#matches"};
  for (const Series& s : series) header.push_back(s.label);
  precision_table.SetHeader(header);
  recall_table.SetHeader(header);

  for (size_t overlap = 2; overlap <= 10; ++overlap) {
    std::vector<std::string> precision_row = {std::to_string(overlap)};
    std::vector<std::string> recall_row = {std::to_string(overlap)};
    for (const Series& s : series) {
      SubsetExperimentConfig config;
      config.match.cardinality = Cardinality::kPartial;
      config.match.metric = s.metric;
      config.match.alpha = s.alpha;
      config.match.candidates_per_attribute = 3;
      config.source_size = kSchemaSize;
      config.target_size = kSchemaSize;
      config.overlap = overlap;
      config.iterations = knobs.iterations;
      config.num_threads = knobs.num_threads;
      config.seed = 3000 + overlap;
      auto stats = RunSubsetExperiment(pair.g1, pair.g2, config);
      if (!stats.ok()) {
        precision_row.push_back("err");
        recall_row.push_back("err");
        continue;
      }
      precision_row.push_back(FormatPercent(stats->mean_precision));
      recall_row.push_back(FormatPercent(stats->mean_recall));
    }
    precision_table.AddRow(std::move(precision_row));
    recall_table.AddRow(std::move(recall_row));
  }

  std::printf("Figure 7: partial mapping — %s (both schemas %zu "
              "attributes, 10K samples, %zu iterations)\n\n",
              title, kSchemaSize, knobs.iterations);
  std::printf("Precision:\n%s\n", precision_table.ToString().c_str());
  std::printf("Recall:\n%s\n", recall_table.ToString().c_str());
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/50);
  GraphPair lab = depmatch::benchutil::BuildLabPair(10000, /*seed=*/7);
  RunDataset("thrombosis lab exam", lab, knobs);
  GraphPair census = depmatch::benchutil::BuildCensusPair(10000, /*seed=*/7);
  RunDataset("census data", census, knobs);
  return 0;
}
