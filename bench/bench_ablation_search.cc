// Ablations of the design choices DESIGN.md calls out (not in the paper):
//
//   A. Candidate-filter width p (the paper fixes p = 3): accuracy and
//      search effort for p in {1, 2, 3, 5, unlimited}.
//   B. Search algorithm: exhaustive branch-and-bound (the paper's) vs
//      greedy vs graduated assignment, accuracy and effort.
//   C. Normal-metric alpha sweep beyond the paper's {1, 4, 7} on the
//      partial task (precision/recall trade-off curve).
//   D. Null policy: null-as-symbol (default, matches the paper's entropy
//      signatures) vs drop-nulls, on the null-heavy lab data.

#include <cstdio>

#include "bench_util.h"
#include "depmatch/common/string_util.h"
#include "depmatch/eval/experiment.h"
#include "depmatch/eval/report.h"
#include "depmatch/eval/accuracy.h"
#include "depmatch/graph/graph_builder.h"
#include "depmatch/match/mapping_ops.h"
#include "depmatch/match/matcher.h"
#include "depmatch/common/rng.h"
#include "depmatch/table/table_ops.h"

namespace {

using depmatch::Cardinality;
using depmatch::FormatPercent;
using depmatch::MatchAlgorithm;
using depmatch::MetricKind;
using depmatch::NullPolicy;
using depmatch::StrFormat;
using depmatch::SubsetExperimentConfig;
using depmatch::TextTable;
using depmatch::benchutil::GraphPair;
using depmatch::benchutil::Knobs;

SubsetExperimentConfig OneToOneConfig(size_t width, const Knobs& knobs,
                                      uint64_t seed) {
  SubsetExperimentConfig config;
  config.match.cardinality = Cardinality::kOneToOne;
  config.match.metric = MetricKind::kMutualInfoEuclidean;
  config.match.candidates_per_attribute = 3;
  config.source_size = width;
  config.target_size = width;
  config.iterations = knobs.iterations;
  config.num_threads = knobs.num_threads;
  config.seed = seed;
  return config;
}

void AblationCandidateFilter(const GraphPair& pair, const Knobs& knobs) {
  std::printf("Ablation A: candidate-filter width p (one-to-one, MI "
              "Euclidean, lab data, %zu iterations)\n\n",
              knobs.iterations);
  TextTable table;
  table.SetHeader({"width", "p=1", "p=2", "p=3 (paper)", "p=5",
                   "unlimited", "nodes p=3", "nodes unlimited"});
  for (size_t width : {8, 14, 20}) {
    std::vector<std::string> row = {std::to_string(width)};
    uint64_t nodes_p3 = 0;
    uint64_t nodes_unlimited = 0;
    for (size_t p : {size_t{1}, size_t{2}, size_t{3}, size_t{5},
                     size_t{0}}) {
      SubsetExperimentConfig config =
          OneToOneConfig(width, knobs, 7000 + width);
      config.match.candidates_per_attribute = p;
      auto stats = RunSubsetExperiment(pair.g1, pair.g2, config);
      if (!stats.ok()) {
        row.push_back("err");
        continue;
      }
      row.push_back(FormatPercent(stats->mean_precision));
      if (p == 3) nodes_p3 = stats->total_nodes_explored;
      if (p == 0) nodes_unlimited = stats->total_nodes_explored;
    }
    row.push_back(StrFormat("%llu",
                            static_cast<unsigned long long>(nodes_p3)));
    row.push_back(StrFormat(
        "%llu", static_cast<unsigned long long>(nodes_unlimited)));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblationAlgorithm(const GraphPair& pair, const Knobs& knobs) {
  std::printf("Ablation B: search algorithm (one-to-one, MI Euclidean, lab "
              "data, %zu iterations)\n\n",
              knobs.iterations);
  TextTable table;
  table.SetHeader({"width", "exhaustive B&B", "greedy",
                   "graduated assignment"});
  for (size_t width : {6, 10, 14, 18}) {
    std::vector<std::string> row = {std::to_string(width)};
    for (MatchAlgorithm algorithm :
         {MatchAlgorithm::kExhaustive, MatchAlgorithm::kGreedy,
          MatchAlgorithm::kGraduatedAssignment}) {
      SubsetExperimentConfig config =
          OneToOneConfig(width, knobs, 7100 + width);
      config.match.algorithm = algorithm;
      auto stats = RunSubsetExperiment(pair.g1, pair.g2, config);
      row.push_back(stats.ok() ? FormatPercent(stats->mean_precision)
                               : "err");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblationAlphaSweep(const GraphPair& pair, const Knobs& knobs) {
  std::printf("Ablation C: normal-metric alpha sweep (partial 12x12, 6 "
              "true matches, MI, lab data, %zu iterations)\n\n",
              knobs.iterations);
  TextTable table;
  table.SetHeader({"alpha", "precision", "recall", "produced pairs"});
  for (double alpha : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0}) {
    SubsetExperimentConfig config;
    config.match.cardinality = Cardinality::kPartial;
    config.match.metric = MetricKind::kMutualInfoNormal;
    config.match.alpha = alpha;
    config.match.candidates_per_attribute = 3;
    config.source_size = 12;
    config.target_size = 12;
    config.overlap = 6;
    config.iterations = knobs.iterations;
    config.num_threads = knobs.num_threads;
    config.seed = 7200;
    auto stats = RunSubsetExperiment(pair.g1, pair.g2, config);
    if (!stats.ok()) {
      table.AddRow({StrFormat("%.1f", alpha), "err", "err", "err"});
      continue;
    }
    table.AddRow({StrFormat("%.1f", alpha),
                  FormatPercent(stats->mean_precision),
                  FormatPercent(stats->mean_recall),
                  StrFormat("%.1f", stats->mean_produced_pairs)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblationNullPolicy(const Knobs& knobs) {
  std::printf("Ablation D: null policy on the null-heavy lab data "
              "(one-to-one, MI Euclidean, %zu iterations)\n\n",
              knobs.iterations);
  // Rebuild the lab graphs under each policy.
  depmatch::benchutil::TablePair tables =
      depmatch::benchutil::BuildLabTables(10000, 7);
  TextTable table;
  table.SetHeader({"width", "null-as-symbol (default)", "drop-nulls"});

  GraphPair pairs[2];
  for (int policy = 0; policy < 2; ++policy) {
    depmatch::DependencyGraphOptions options;
    options.stats.null_policy = policy == 0 ? NullPolicy::kNullAsSymbol
                                            : NullPolicy::kDropNulls;
    pairs[policy] = {
        depmatch::BuildDependencyGraph(tables.t1, options).value(),
        depmatch::BuildDependencyGraph(tables.t2, options).value()};
  }
  for (size_t width : {8, 14, 20}) {
    std::vector<std::string> row = {std::to_string(width)};
    for (int policy = 0; policy < 2; ++policy) {
      SubsetExperimentConfig config =
          OneToOneConfig(width, knobs, 7300 + width);
      auto stats =
          RunSubsetExperiment(pairs[policy].g1, pairs[policy].g2, config);
      row.push_back(stats.ok() ? FormatPercent(stats->mean_precision)
                               : "err");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblationConsensus(const GraphPair& pair, const Knobs& knobs) {
  std::printf("Ablation E: consensus voting across metrics (one-to-one, "
              "lab data, %zu iterations)\n\n",
              knobs.iterations);
  std::vector<depmatch::MatchOptions> configs(3);
  configs[0].metric = MetricKind::kMutualInfoEuclidean;
  configs[1].metric = MetricKind::kMutualInfoNormal;
  configs[2].metric = MetricKind::kEntropyEuclidean;
  for (auto& config : configs) config.candidates_per_attribute = 3;

  TextTable table;
  table.SetHeader({"width", "MI Euclidean alone", "consensus >=2 of 3",
                   "consensus pairs/width"});
  for (size_t width : {8, 14, 20}) {
    double single = 0.0;
    double consensus_precision = 0.0;
    double consensus_pairs = 0.0;
    size_t completed = 0;
    for (size_t i = 0; i < knobs.iterations; ++i) {
      depmatch::Rng rng(7400 + width * 977 + i);
      std::vector<size_t> attrs =
          rng.SampleWithoutReplacement(pair.g1.size(), width);
      std::vector<size_t> target_attrs = attrs;
      rng.Shuffle(target_attrs);
      auto source = pair.g1.SubGraph(attrs);
      auto target = pair.g2.SubGraph(target_attrs);
      if (!source.ok() || !target.ok()) continue;
      std::vector<depmatch::MatchPair> truth;
      for (size_t s = 0; s < width; ++s) {
        for (size_t t = 0; t < width; ++t) {
          if (target_attrs[t] == attrs[s]) truth.push_back({s, t});
        }
      }
      auto single_result =
          MatchGraphs(source.value(), target.value(), configs[0]);
      auto voted = ConsensusMatch(source.value(), target.value(), configs,
                                  /*min_votes=*/2);
      if (!single_result.ok() || !voted.ok()) continue;
      ++completed;
      single +=
          ComputeAccuracy(single_result->pairs, truth).precision;
      depmatch::Accuracy consensus_accuracy =
          ComputeAccuracy(voted->pairs, truth);
      consensus_precision += consensus_accuracy.precision;
      consensus_pairs += static_cast<double>(voted->pairs.size()) /
                         static_cast<double>(width);
    }
    if (completed == 0) continue;
    double n = static_cast<double>(completed);
    table.AddRow({std::to_string(width), FormatPercent(single / n),
                  FormatPercent(consensus_precision / n),
                  FormatPercent(consensus_pairs / n)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  Knobs knobs = depmatch::benchutil::KnobsFromEnv(/*default_iterations=*/30);
  GraphPair lab = depmatch::benchutil::BuildLabPair(10000, /*seed=*/7);
  AblationCandidateFilter(lab, knobs);
  AblationAlgorithm(lab, knobs);
  AblationAlphaSweep(lab, knobs);
  AblationNullPolicy(knobs);
  AblationConsensus(lab, knobs);
  return 0;
}
