// Corporate-merger scenario (the paper's Section 1 motivation): two
// companies' customer tables share only *some* attributes, under
// different names and encodings. Neither side knows which columns
// overlap, so this is the partial-mapping problem: find the overlapping
// subset AND its correspondence.
//
// The example builds two tables from one generative model, keeps an
// overlapping core plus company-specific extras, opaque-encodes company
// B's export, and sweeps the normal metric's control parameter alpha to
// show the precision/recall trade-off the paper describes: large alpha =
// few, confident matches; small alpha = many, less confident ones.
//
// Build & run:  ./build/examples/merger_partial_overlap

#include <cstdio>

#include "depmatch/common/rng.h"
#include "depmatch/core/schema_matcher.h"
#include "depmatch/datagen/bayes_net.h"
#include "depmatch/eval/accuracy.h"
#include "depmatch/table/table_ops.h"

namespace {

using depmatch::Cardinality;
using depmatch::MatchPair;
using depmatch::MetricKind;
using depmatch::Result;
using depmatch::Rng;
using depmatch::Table;

// A 10-attribute "customer" model; both companies observe (different
// subsets of) these quantities.
depmatch::datagen::BayesNetSpec CustomerModel() {
  depmatch::datagen::BayesNetSpec spec;
  struct Def {
    const char* name;
    size_t alphabet;
    int parent;  // -1 = root
    double noise;
  };
  // region -> city; segment -> plan -> addons; age_band; credit_band;
  // activity chains.
  const Def defs[] = {
      {"region", 8, -1, 0.0},        {"city", 400, 0, 0.15},
      {"segment", 6, -1, 0.0},       {"plan", 24, 2, 0.2},
      {"addons", 60, 3, 0.25},       {"age_band", 12, -1, 0.0},
      {"credit_band", 10, 5, 0.3},   {"visits", 200, 4, 0.35},
      {"spend_band", 40, 7, 0.25},   {"tenure", 30, 5, 0.4},
  };
  for (const Def& def : defs) {
    depmatch::datagen::AttributeGenSpec attr;
    attr.name = def.name;
    attr.alphabet_size = def.alphabet;
    if (def.parent >= 0) attr.parents = {static_cast<size_t>(def.parent)};
    attr.noise = def.noise;
    spec.attributes.push_back(attr);
  }
  return spec;
}

Table CompanyTable(uint64_t seed, const std::vector<size_t>& columns) {
  Result<Table> full = depmatch::datagen::GenerateBayesNet(
      CustomerModel(), /*num_rows=*/8000, seed);
  Result<Table> projected = depmatch::ProjectColumns(full.value(), columns);
  return projected.value();
}

}  // namespace

int main() {
  // Company A exposes columns {0..6}; company B exposes {3..9}.
  // Overlap: {3, 4, 5, 6} = plan, addons, age_band, credit_band.
  std::vector<size_t> a_columns = {0, 1, 2, 3, 4, 5, 6};
  std::vector<size_t> b_columns = {3, 4, 5, 6, 7, 8, 9};
  Table company_a = CompanyTable(/*seed=*/11, a_columns);
  Rng encoder(5);
  Table company_b =
      depmatch::OpaqueEncode(CompanyTable(/*seed=*/22, b_columns), {},
                             encoder);

  // Ground truth in positional terms: A position 3+i <-> B position i.
  std::vector<MatchPair> truth = {{3, 0}, {4, 1}, {5, 2}, {6, 3}};

  std::printf("Company A schema: %s\n",
              company_a.schema().ToString().c_str());
  std::printf("Company B schema (opaque): %s\n\n",
              company_b.schema().ToString().c_str());

  for (double alpha : {1.0, 3.0, 5.0, 8.0}) {
    depmatch::SchemaMatchOptions options;
    options.match.cardinality = Cardinality::kPartial;
    options.match.metric = MetricKind::kMutualInfoNormal;
    options.match.alpha = alpha;

    auto result = depmatch::MatchTables(company_a, company_b, options);
    if (!result.ok()) {
      std::fprintf(stderr, "matching failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    depmatch::Accuracy accuracy =
        ComputeAccuracy(result->match.pairs, truth);
    std::printf("alpha = %.1f -> %zu proposals, precision %.0f%%, recall "
                "%.0f%%\n",
                alpha, result->correspondences.size(),
                accuracy.precision * 100.0, accuracy.recall * 100.0);
    for (const depmatch::Correspondence& c : result->correspondences) {
      bool correct = false;
      for (const MatchPair& t : truth) {
        if (t.source == c.source_index && t.target == c.target_index) {
          correct = true;
        }
      }
      std::printf("    %-12s -> %-8s %s\n", c.source_name.c_str(),
                  c.target_name.c_str(), correct ? "(correct)" : "(wrong)");
    }
  }
  std::printf(
      "\nLarger alpha keeps only high-confidence pairs (higher precision,"
      "\nlower recall); smaller alpha proposes more candidates.\n");
  return 0;
}
