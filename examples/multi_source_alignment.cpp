// Multi-source alignment: the paper's closing problem, full size. Five
// departmental exports of the same underlying process — different column
// subsets, opaque names, opaque encodings — are aligned in one call:
// the widest export becomes the pivot and every attribute lands in a
// global correspondence class.
//
// Build & run:  ./build/examples/multi_source_alignment

#include <cstdio>

#include "depmatch/common/rng.h"
#include "depmatch/core/multi_match.h"
#include "depmatch/datagen/bayes_net.h"
#include "depmatch/table/table_ops.h"

namespace {

using depmatch::Rng;
using depmatch::Table;

// The shared underlying process: eight correlated quantities.
depmatch::datagen::BayesNetSpec Process() {
  depmatch::datagen::BayesNetSpec spec;
  const char* names[] = {"plant",   "line",   "shift",  "product",
                         "grade",   "defect", "batch",  "inspector"};
  const size_t alphabets[] = {6, 18, 3, 40, 8, 12, 300, 25};
  for (size_t i = 0; i < 8; ++i) {
    depmatch::datagen::AttributeGenSpec attr;
    attr.name = names[i];
    attr.alphabet_size = alphabets[i];
    if (i > 0) {
      attr.parents = {i - 1};
      attr.noise = 0.25;
    }
    spec.attributes.push_back(attr);
  }
  return spec;
}

Table Export(const std::vector<size_t>& columns, uint64_t seed) {
  Table full =
      depmatch::datagen::GenerateBayesNet(Process(), 5000, seed).value();
  Table projected = depmatch::ProjectColumns(full, columns).value();
  Rng encoder(seed * 31 + 7);
  depmatch::OpaqueEncodeOptions options;
  options.attribute_prefix = "s" + std::to_string(seed) + "_c";
  return depmatch::OpaqueEncode(projected, options, encoder);
}

}  // namespace

int main() {
  // Five exports with overlapping column subsets of the process.
  Table hq = Export({0, 1, 2, 3, 4, 5, 6, 7}, 1);      // everything
  Table quality = Export({3, 4, 5, 7}, 2);              // QC view
  Table logistics = Export({0, 1, 3, 6}, 3);            // logistics view
  Table floor = Export({1, 2, 5}, 4);                   // shop floor
  Table audit = Export({0, 2, 4, 6, 7}, 5);             // audit extract

  std::vector<const Table*> sources = {&hq, &quality, &logistics, &floor,
                                       &audit};
  const char* source_names[] = {"hq", "quality", "logistics", "floor",
                                "audit"};

  auto result = depmatch::AlignSchemas(sources, {});
  if (!result.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("pivot: %s\n\nglobal correspondence classes:\n",
              source_names[result->pivot_table]);
  const char* truth[] = {"plant",  "line",   "shift",  "product",
                         "grade",  "defect", "batch",  "inspector"};
  for (const depmatch::CorrespondenceClass& cls : result->classes) {
    std::printf("  [%s]", truth[cls.pivot_attribute]);
    for (const depmatch::AttributeRef& ref : cls.members) {
      std::printf("  %s.%s", source_names[ref.table], ref.name.c_str());
    }
    std::printf("\n");
  }

  // Verification: each export's column k corresponds to a known process
  // column; check class purity against that ground truth.
  const std::vector<size_t> projections[] = {
      {0, 1, 2, 3, 4, 5, 6, 7}, {3, 4, 5, 7}, {0, 1, 3, 6}, {1, 2, 5},
      {0, 2, 4, 6, 7}};
  size_t total = 0;
  size_t correct = 0;
  for (const depmatch::CorrespondenceClass& cls : result->classes) {
    for (const depmatch::AttributeRef& ref : cls.members) {
      ++total;
      if (projections[ref.table][ref.attribute] == cls.pivot_attribute) {
        ++correct;
      }
    }
  }
  std::printf("\nverification: %zu/%zu attribute placements correct\n",
              correct, total);
  return 0;
}
