// Quickstart: the paper's Figure 1 / Figure 3 scenario end to end.
//
// Two car-parts tables from different plants. The second table's column
// names and cell values are plant-specific codes ("opaque"), so neither
// name-based nor value-based matching applies. DepMatch matches them by
// dependency structure alone:
//   1. Table2DepGraph: pairwise mutual information -> dependency graph
//   2. GraphMatch:     metric-optimal node correspondence
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "depmatch/common/rng.h"
#include "depmatch/core/schema_matcher.h"
#include "depmatch/table/table.h"
#include "depmatch/table/table_ops.h"

namespace {

// A plant database: Model determines Tire (almost); Color is free.
depmatch::Table MakePlantTable(uint64_t seed, size_t rows) {
  depmatch::Rng rng(seed);
  auto schema = depmatch::Schema::Create({{"Model", depmatch::DataType::kString},
                                          {"Tire", depmatch::DataType::kString},
                                          {"Color", depmatch::DataType::kString}});
  depmatch::TableBuilder builder(schema.value());
  const char* models[] = {"XLE", "XR5", "XGL", "LE", "GM6", "XE"};
  const char* tires[] = {"P2R6", "GL3.5", "XG2.5"};
  const char* colors[] = {"White", "Silver", "Red", "Black"};
  for (size_t r = 0; r < rows; ++r) {
    size_t m = rng.NextBounded(6);
    size_t t = rng.NextBernoulli(0.85) ? (m % 3) : rng.NextBounded(3);
    size_t c = rng.NextBounded(4);
    depmatch::Status status = builder.AppendRow(
        {depmatch::Value(models[m]), depmatch::Value(tires[t]),
         depmatch::Value(colors[c])});
    if (!status.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
  return std::move(builder).Build().value();
}

}  // namespace

int main() {
  // Plant A keeps readable names and values.
  depmatch::Table plant_a = MakePlantTable(/*seed=*/1, /*rows=*/5000);

  // Plant B's export uses opaque codes for both columns and values
  // (an arbitrary one-to-one re-encoding, Definition 1.1's f_i).
  depmatch::Rng encoder(42);
  depmatch::Table plant_b =
      depmatch::OpaqueEncode(MakePlantTable(/*seed=*/2, /*rows=*/5000), {},
                             encoder);

  std::printf("Plant A fragment:\n%s\n",
              plant_a.FormatFragment(4, 3).c_str());
  std::printf("Plant B fragment (opaque):\n%s\n",
              plant_b.FormatFragment(4, 3).c_str());

  depmatch::SchemaMatchOptions options;
  options.match.cardinality = depmatch::Cardinality::kOneToOne;
  options.match.metric = depmatch::MetricKind::kMutualInfoEuclidean;

  depmatch::Result<depmatch::SchemaMatchResult> result =
      depmatch::MatchTables(plant_a, plant_b, options);
  if (!result.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Dependency graph of plant A:\n%s\n",
              result->source_graph.ToString().c_str());
  std::printf("Proposed correspondences (metric value %.4f):\n",
              result->match.metric_value);
  for (const depmatch::Correspondence& c : result->correspondences) {
    std::printf("  %-8s -> %s\n", c.source_name.c_str(),
                c.target_name.c_str());
  }
  return 0;
}
