// Nested-schema matching (the paper's XML future-work direction): two
// services export the same events as newline-delimited JSON with
// different, opaque field names, different value encodings, and different
// nesting. DepMatch flattens each collection (leaf paths become columns,
// arrays unnest) and matches the paths by dependency structure.
//
// Build & run:  ./build/examples/nested_json

#include <cstdio>
#include <string>

#include "depmatch/common/rng.h"
#include "depmatch/common/string_util.h"
#include "depmatch/nested/json.h"
#include "depmatch/nested/nested_matcher.h"

namespace {

using depmatch::Rng;
using depmatch::StrFormat;
using depmatch::nested::NestedValue;

// Service A: readable schema.
//   {"device": "d3", "firmware": "fw1",
//    "readings": [{"sensor": "s2", "status": "ok"}, ...]}
// Service B: opaque schema with re-encoded values and a different block
// name, same underlying process.
std::vector<NestedValue> MakeEvents(bool opaque, uint64_t seed,
                                    size_t count) {
  Rng rng(seed);
  const char* device_key = opaque ? "k0" : "device";
  const char* firmware_key = opaque ? "k1" : "firmware";
  const char* readings_key = opaque ? "arr" : "readings";
  const char* sensor_key = opaque ? "k2" : "sensor";
  const char* status_key = opaque ? "k3" : "status";
  const char* prefix = opaque ? "X" : "";

  std::vector<NestedValue> docs;
  for (size_t i = 0; i < count; ++i) {
    size_t device = rng.NextBounded(20);
    // Firmware is (mostly) determined by device; sensors by device;
    // status depends on sensor.
    size_t firmware =
        rng.NextBernoulli(0.9) ? device % 4 : rng.NextBounded(4);
    NestedValue doc = NestedValue::Object();
    doc.Set(device_key,
            NestedValue::String(StrFormat("%sd%zu", prefix, device)));
    doc.Set(firmware_key,
            NestedValue::String(StrFormat("%sfw%zu", prefix, firmware)));
    NestedValue readings = NestedValue::Array();
    size_t reading_count = 1 + rng.NextBounded(3);
    for (size_t r = 0; r < reading_count; ++r) {
      size_t sensor = rng.NextBernoulli(0.8) ? (device % 6)
                                             : rng.NextBounded(6);
      size_t status =
          rng.NextBernoulli(0.85) ? (sensor % 3) : rng.NextBounded(3);
      NestedValue reading = NestedValue::Object();
      reading.Set(sensor_key,
                  NestedValue::String(StrFormat("%ss%zu", prefix, sensor)));
      reading.Set(status_key,
                  NestedValue::String(StrFormat("%sst%zu", prefix, status)));
      readings.Append(std::move(reading));
    }
    doc.Set(readings_key, std::move(readings));
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace

int main() {
  std::vector<NestedValue> service_a = MakeEvents(false, 1, 4000);
  std::vector<NestedValue> service_b = MakeEvents(true, 2, 4000);

  std::printf("service A sample: %s\n", service_a[0].ToJson().c_str());
  std::printf("service B sample: %s\n\n", service_b[0].ToJson().c_str());

  depmatch::nested::NestedMatchOptions options;
  auto result = depmatch::nested::MatchNestedCollections(service_a,
                                                         service_b, options);
  if (!result.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("proposed path correspondences (metric value %.4f):\n",
              result->flat.match.metric_value);
  for (const depmatch::nested::PathCorrespondence& c : result->paths) {
    std::printf("  %-22s -> %s\n", c.source_path.c_str(),
                c.target_path.c_str());
  }
  return 0;
}
