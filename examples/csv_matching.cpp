// File-based matching: the paper's testbed "loads data tables from text
// files". This example writes two CSV exports to disk (the second with
// opaque headers and re-encoded values), loads them back through the CSV
// reader, matches them, and prints the proposed header mapping — the
// complete workflow a downstream user would run on real exports.
//
// Build & run:  ./build/examples/csv_matching [output_dir]

#include <cstdio>
#include <string>

#include "depmatch/common/rng.h"
#include "depmatch/core/schema_matcher.h"
#include "depmatch/table/csv.h"
#include "depmatch/table/table_ops.h"

namespace {

using depmatch::Result;
using depmatch::Rng;
using depmatch::Status;
using depmatch::Table;
using depmatch::Value;

// An "orders" table: product determines category and (mostly) warehouse;
// priority is independent.
Table MakeOrders(uint64_t seed, size_t rows) {
  Rng rng(seed);
  auto schema =
      depmatch::Schema::Create({{"product", depmatch::DataType::kString},
                                {"category", depmatch::DataType::kString},
                                {"warehouse", depmatch::DataType::kString},
                                {"priority", depmatch::DataType::kString}});
  depmatch::TableBuilder builder(schema.value());
  const char* products[] = {"P100", "P200", "P300", "P400",
                            "P500", "P600", "P700", "P800"};
  const char* categories[] = {"tools", "parts", "media"};
  const char* warehouses[] = {"east", "west", "north", "south"};
  const char* priorities[] = {"low", "mid", "high"};
  for (size_t r = 0; r < rows; ++r) {
    size_t p = rng.NextBounded(8);
    size_t c = p % 3;  // category is a function of product
    size_t w = rng.NextBernoulli(0.8) ? (p % 4) : rng.NextBounded(4);
    size_t pr = rng.NextBounded(3);
    Status status = builder.AppendRow(
        {Value(products[p]), Value(categories[c]), Value(warehouses[w]),
         Value(priorities[pr])});
    if (!status.ok()) std::abort();
  }
  return std::move(builder).Build().value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  std::string ours_path = dir + "/orders_ours.csv";
  std::string theirs_path = dir + "/orders_theirs.csv";

  // Write the two exports.
  Table ours = MakeOrders(/*seed=*/3, /*rows=*/4000);
  Rng encoder(77);
  Table theirs = depmatch::OpaqueEncode(MakeOrders(/*seed=*/4, 4000), {},
                                        encoder);
  depmatch::CsvOptions csv;
  if (!WriteCsvFile(ours, ours_path, csv).ok() ||
      !WriteCsvFile(theirs, theirs_path, csv).ok()) {
    std::fprintf(stderr, "cannot write CSV files under %s\n", dir.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n\n", ours_path.c_str(),
              theirs_path.c_str());

  // Load them back (type inference and null handling included) and match.
  Result<Table> loaded_ours = ReadCsvFile(ours_path, csv);
  Result<Table> loaded_theirs = ReadCsvFile(theirs_path, csv);
  if (!loaded_ours.ok() || !loaded_theirs.ok()) {
    std::fprintf(stderr, "CSV load failed\n");
    return 1;
  }

  depmatch::SchemaMatchOptions options;
  options.match.metric = depmatch::MetricKind::kMutualInfoEuclidean;
  auto result = depmatch::MatchTables(loaded_ours.value(),
                                      loaded_theirs.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("proposed header mapping (Euclidean distance %.4f):\n",
              result->match.metric_value);
  for (const depmatch::Correspondence& c : result->correspondences) {
    std::printf("  %-10s -> %s\n", c.source_name.c_str(),
                c.target_name.c_str());
  }
  return 0;
}
