// Web-source triage (the paper's "On the Result of Unrelated Schema
// Matching" scenario): given a reference table and a pile of candidate
// sources discovered on the web — some genuinely related, some not — use
// the optimized distance-metric value to decide which sources make sense
// to integrate, before any human looks at them.
//
// Related sources are independent samples of the reference's underlying
// distribution (with their own opaque encodings); unrelated ones come
// from different generative models. The example ranks all candidates by
// the Euclidean metric value of their best one-to-one mapping and shows
// the clear separation the paper reports in Figure 8.
//
// Build & run:  ./build/examples/source_triage

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "depmatch/common/rng.h"
#include "depmatch/core/schema_matcher.h"
#include "depmatch/core/table_clustering.h"
#include "depmatch/datagen/bayes_net.h"
#include "depmatch/table/table_ops.h"

namespace {

using depmatch::Result;
using depmatch::Rng;
using depmatch::Table;

depmatch::datagen::BayesNetSpec ChainModel(uint64_t variant) {
  depmatch::datagen::BayesNetSpec spec;
  // Six attributes; the variant scrambles alphabets and noise so that
  // different variants are genuinely different distributions.
  for (size_t i = 0; i < 6; ++i) {
    depmatch::datagen::AttributeGenSpec attr;
    attr.name = "a" + std::to_string(i);
    attr.alphabet_size = 8 + ((i * 37 + variant * 61) % 300);
    if (i > 0) {
      attr.parents = {i - 1};
      attr.noise = 0.15 + 0.07 * static_cast<double>((i + variant) % 4);
    }
    spec.attributes.push_back(attr);
  }
  return spec;
}

Table Sample(const depmatch::datagen::BayesNetSpec& spec, uint64_t seed) {
  Result<Table> table =
      depmatch::datagen::GenerateBayesNet(spec, /*num_rows=*/6000, seed);
  Rng encoder(seed ^ 0xabcd);
  return depmatch::OpaqueEncode(table.value(), {}, encoder);
}

struct Candidate {
  std::string name;
  Table table;
  bool actually_related;
};

}  // namespace

int main() {
  // The reference table (kept un-encoded; it is "ours").
  Result<Table> reference = depmatch::datagen::GenerateBayesNet(
      ChainModel(/*variant=*/0), 6000, /*seed=*/1);

  std::vector<Candidate> candidates;
  // Three related sources: same model, new samples, opaque encodings.
  for (uint64_t s = 0; s < 3; ++s) {
    candidates.push_back({"related_source_" + std::to_string(s),
                          Sample(ChainModel(0), 100 + s), true});
  }
  // Three unrelated sources from different models.
  for (uint64_t v = 1; v <= 3; ++v) {
    candidates.push_back({"unrelated_source_" + std::to_string(v),
                          Sample(ChainModel(v), 200 + v), false});
  }

  struct Scored {
    const Candidate* candidate;
    double distance;
  };
  std::vector<Scored> scored;

  depmatch::SchemaMatchOptions options;
  options.match.cardinality = depmatch::Cardinality::kOneToOne;
  options.match.metric = depmatch::MetricKind::kMutualInfoEuclidean;

  for (const Candidate& candidate : candidates) {
    auto result =
        depmatch::MatchTables(reference.value(), candidate.table, options);
    if (!result.ok()) {
      std::fprintf(stderr, "matching %s failed: %s\n",
                   candidate.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    scored.push_back({&candidate, result->match.metric_value});
  }

  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.distance < b.distance;
            });

  std::printf("Candidates ranked by best-mapping Euclidean distance "
              "(smaller = more integratable):\n\n");
  std::printf("  %-20s  %10s  %s\n", "source", "distance", "truth");
  for (const Scored& s : scored) {
    std::printf("  %-20s  %10.3f  %s\n", s.candidate->name.c_str(),
                s.distance,
                s.candidate->actually_related ? "related" : "unrelated");
  }

  // Library-level triage: cluster the reference together with all
  // candidates; whatever shares the reference's cluster is integratable.
  std::vector<const depmatch::Table*> pool = {&reference.value()};
  for (const Candidate& candidate : candidates) {
    pool.push_back(&candidate.table);
  }
  depmatch::TableClusteringOptions clustering;
  clustering.link_threshold = 0.5;
  auto clusters = depmatch::ClusterTables(pool, clustering);
  if (!clusters.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("\nClusterTables(threshold %.1f):\n",
              clustering.link_threshold);
  bool clean = true;
  for (size_t c = 0; c < clusters->clusters.size(); ++c) {
    std::printf("  cluster %zu:", c);
    bool has_reference = false;
    for (size_t index : clusters->clusters[c]) {
      if (index == 0) {
        std::printf(" [reference]");
        has_reference = true;
      } else {
        std::printf(" %s", candidates[index - 1].name.c_str());
      }
    }
    for (size_t index : clusters->clusters[c]) {
      if (index == 0) continue;
      if (candidates[index - 1].actually_related != has_reference) {
        clean = false;
      }
    }
    std::printf("\n");
  }
  std::printf("separation %s.\n", clean ? "perfect" : "imperfect");
  return 0;
}
