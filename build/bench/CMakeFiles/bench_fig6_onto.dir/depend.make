# Empty dependencies file for bench_fig6_onto.
# This may be replaced when dependencies are built.
