file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_onto.dir/bench_fig6_onto.cc.o"
  "CMakeFiles/bench_fig6_onto.dir/bench_fig6_onto.cc.o.d"
  "bench_fig6_onto"
  "bench_fig6_onto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_onto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
