# Empty compiler generated dependencies file for bench_ablation_sparsify.
# This may be replaced when dependencies are built.
