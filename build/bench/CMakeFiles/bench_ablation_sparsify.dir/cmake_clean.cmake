file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sparsify.dir/bench_ablation_sparsify.cc.o"
  "CMakeFiles/bench_ablation_sparsify.dir/bench_ablation_sparsify.cc.o.d"
  "bench_ablation_sparsify"
  "bench_ablation_sparsify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sparsify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
