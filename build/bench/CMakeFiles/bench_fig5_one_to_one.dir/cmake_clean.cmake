file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_one_to_one.dir/bench_fig5_one_to_one.cc.o"
  "CMakeFiles/bench_fig5_one_to_one.dir/bench_fig5_one_to_one.cc.o.d"
  "bench_fig5_one_to_one"
  "bench_fig5_one_to_one.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_one_to_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
