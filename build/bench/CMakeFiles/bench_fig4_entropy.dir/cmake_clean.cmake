file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_entropy.dir/bench_fig4_entropy.cc.o"
  "CMakeFiles/bench_fig4_entropy.dir/bench_fig4_entropy.cc.o.d"
  "bench_fig4_entropy"
  "bench_fig4_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
