
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_entropy.cc" "bench/CMakeFiles/bench_fig4_entropy.dir/bench_fig4_entropy.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_entropy.dir/bench_fig4_entropy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/depmatch_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/core/CMakeFiles/depmatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/eval/CMakeFiles/depmatch_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/datagen/CMakeFiles/depmatch_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/match/CMakeFiles/depmatch_match.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/graph/CMakeFiles/depmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/stats/CMakeFiles/depmatch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/table/CMakeFiles/depmatch_table.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/common/CMakeFiles/depmatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
