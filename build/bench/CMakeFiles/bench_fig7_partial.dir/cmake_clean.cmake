file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_partial.dir/bench_fig7_partial.cc.o"
  "CMakeFiles/bench_fig7_partial.dir/bench_fig7_partial.cc.o.d"
  "bench_fig7_partial"
  "bench_fig7_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
