# Empty compiler generated dependencies file for bench_fig8_unrelated.
# This may be replaced when dependencies are built.
