file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_unrelated.dir/bench_fig8_unrelated.cc.o"
  "CMakeFiles/bench_fig8_unrelated.dir/bench_fig8_unrelated.cc.o.d"
  "bench_fig8_unrelated"
  "bench_fig8_unrelated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_unrelated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
