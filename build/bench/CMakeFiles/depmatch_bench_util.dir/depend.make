# Empty dependencies file for depmatch_bench_util.
# This may be replaced when dependencies are built.
