file(REMOVE_RECURSE
  "../lib/libdepmatch_bench_util.a"
  "../lib/libdepmatch_bench_util.pdb"
  "CMakeFiles/depmatch_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/depmatch_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
