file(REMOVE_RECURSE
  "../lib/libdepmatch_bench_util.a"
)
