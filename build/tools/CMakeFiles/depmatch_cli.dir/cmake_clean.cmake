file(REMOVE_RECURSE
  "CMakeFiles/depmatch_cli.dir/depmatch_cli.cc.o"
  "CMakeFiles/depmatch_cli.dir/depmatch_cli.cc.o.d"
  "depmatch"
  "depmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
