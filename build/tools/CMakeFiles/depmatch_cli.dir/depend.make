# Empty dependencies file for depmatch_cli.
# This may be replaced when dependencies are built.
