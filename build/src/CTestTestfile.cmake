# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("depmatch/common")
subdirs("depmatch/table")
subdirs("depmatch/stats")
subdirs("depmatch/graph")
subdirs("depmatch/match")
subdirs("depmatch/eval")
subdirs("depmatch/datagen")
subdirs("depmatch/core")
subdirs("depmatch/nested")
subdirs("depmatch/translate")
