file(REMOVE_RECURSE
  "libdepmatch_translate.a"
)
