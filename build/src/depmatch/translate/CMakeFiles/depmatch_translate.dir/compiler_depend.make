# Empty compiler generated dependencies file for depmatch_translate.
# This may be replaced when dependencies are built.
