file(REMOVE_RECURSE
  "CMakeFiles/depmatch_translate.dir/translate.cc.o"
  "CMakeFiles/depmatch_translate.dir/translate.cc.o.d"
  "CMakeFiles/depmatch_translate.dir/value_translation.cc.o"
  "CMakeFiles/depmatch_translate.dir/value_translation.cc.o.d"
  "libdepmatch_translate.a"
  "libdepmatch_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
