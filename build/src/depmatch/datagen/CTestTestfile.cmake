# CMake generated Testfile for 
# Source directory: /root/repo/src/depmatch/datagen
# Build directory: /root/repo/build/src/depmatch/datagen
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
