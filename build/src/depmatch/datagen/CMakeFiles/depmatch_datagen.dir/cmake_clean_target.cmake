file(REMOVE_RECURSE
  "libdepmatch_datagen.a"
)
