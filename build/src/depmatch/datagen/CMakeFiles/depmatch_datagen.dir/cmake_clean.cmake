file(REMOVE_RECURSE
  "CMakeFiles/depmatch_datagen.dir/bayes_net.cc.o"
  "CMakeFiles/depmatch_datagen.dir/bayes_net.cc.o.d"
  "CMakeFiles/depmatch_datagen.dir/datasets.cc.o"
  "CMakeFiles/depmatch_datagen.dir/datasets.cc.o.d"
  "libdepmatch_datagen.a"
  "libdepmatch_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
