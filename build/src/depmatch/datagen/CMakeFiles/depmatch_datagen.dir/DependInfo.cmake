
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depmatch/datagen/bayes_net.cc" "src/depmatch/datagen/CMakeFiles/depmatch_datagen.dir/bayes_net.cc.o" "gcc" "src/depmatch/datagen/CMakeFiles/depmatch_datagen.dir/bayes_net.cc.o.d"
  "/root/repo/src/depmatch/datagen/datasets.cc" "src/depmatch/datagen/CMakeFiles/depmatch_datagen.dir/datasets.cc.o" "gcc" "src/depmatch/datagen/CMakeFiles/depmatch_datagen.dir/datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/depmatch/table/CMakeFiles/depmatch_table.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/common/CMakeFiles/depmatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
