# Empty compiler generated dependencies file for depmatch_datagen.
# This may be replaced when dependencies are built.
