file(REMOVE_RECURSE
  "libdepmatch_nested.a"
)
