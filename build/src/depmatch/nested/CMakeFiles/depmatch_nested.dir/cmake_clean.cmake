file(REMOVE_RECURSE
  "CMakeFiles/depmatch_nested.dir/document.cc.o"
  "CMakeFiles/depmatch_nested.dir/document.cc.o.d"
  "CMakeFiles/depmatch_nested.dir/flatten.cc.o"
  "CMakeFiles/depmatch_nested.dir/flatten.cc.o.d"
  "CMakeFiles/depmatch_nested.dir/json.cc.o"
  "CMakeFiles/depmatch_nested.dir/json.cc.o.d"
  "CMakeFiles/depmatch_nested.dir/nested_matcher.cc.o"
  "CMakeFiles/depmatch_nested.dir/nested_matcher.cc.o.d"
  "CMakeFiles/depmatch_nested.dir/xml.cc.o"
  "CMakeFiles/depmatch_nested.dir/xml.cc.o.d"
  "libdepmatch_nested.a"
  "libdepmatch_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
