# Empty compiler generated dependencies file for depmatch_nested.
# This may be replaced when dependencies are built.
