file(REMOVE_RECURSE
  "libdepmatch_graph.a"
)
