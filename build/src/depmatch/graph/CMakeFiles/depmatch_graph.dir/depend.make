# Empty dependencies file for depmatch_graph.
# This may be replaced when dependencies are built.
