file(REMOVE_RECURSE
  "CMakeFiles/depmatch_graph.dir/dependency_graph.cc.o"
  "CMakeFiles/depmatch_graph.dir/dependency_graph.cc.o.d"
  "CMakeFiles/depmatch_graph.dir/graph_builder.cc.o"
  "CMakeFiles/depmatch_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/depmatch_graph.dir/sparsify.cc.o"
  "CMakeFiles/depmatch_graph.dir/sparsify.cc.o.d"
  "libdepmatch_graph.a"
  "libdepmatch_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
