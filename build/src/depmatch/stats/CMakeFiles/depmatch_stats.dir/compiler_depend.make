# Empty compiler generated dependencies file for depmatch_stats.
# This may be replaced when dependencies are built.
