file(REMOVE_RECURSE
  "libdepmatch_stats.a"
)
