file(REMOVE_RECURSE
  "CMakeFiles/depmatch_stats.dir/association.cc.o"
  "CMakeFiles/depmatch_stats.dir/association.cc.o.d"
  "CMakeFiles/depmatch_stats.dir/bootstrap.cc.o"
  "CMakeFiles/depmatch_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/depmatch_stats.dir/entropy.cc.o"
  "CMakeFiles/depmatch_stats.dir/entropy.cc.o.d"
  "CMakeFiles/depmatch_stats.dir/histogram.cc.o"
  "CMakeFiles/depmatch_stats.dir/histogram.cc.o.d"
  "libdepmatch_stats.a"
  "libdepmatch_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
