
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depmatch/stats/association.cc" "src/depmatch/stats/CMakeFiles/depmatch_stats.dir/association.cc.o" "gcc" "src/depmatch/stats/CMakeFiles/depmatch_stats.dir/association.cc.o.d"
  "/root/repo/src/depmatch/stats/bootstrap.cc" "src/depmatch/stats/CMakeFiles/depmatch_stats.dir/bootstrap.cc.o" "gcc" "src/depmatch/stats/CMakeFiles/depmatch_stats.dir/bootstrap.cc.o.d"
  "/root/repo/src/depmatch/stats/entropy.cc" "src/depmatch/stats/CMakeFiles/depmatch_stats.dir/entropy.cc.o" "gcc" "src/depmatch/stats/CMakeFiles/depmatch_stats.dir/entropy.cc.o.d"
  "/root/repo/src/depmatch/stats/histogram.cc" "src/depmatch/stats/CMakeFiles/depmatch_stats.dir/histogram.cc.o" "gcc" "src/depmatch/stats/CMakeFiles/depmatch_stats.dir/histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/depmatch/table/CMakeFiles/depmatch_table.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/common/CMakeFiles/depmatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
