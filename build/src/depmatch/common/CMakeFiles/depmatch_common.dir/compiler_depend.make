# Empty compiler generated dependencies file for depmatch_common.
# This may be replaced when dependencies are built.
