file(REMOVE_RECURSE
  "CMakeFiles/depmatch_common.dir/flags.cc.o"
  "CMakeFiles/depmatch_common.dir/flags.cc.o.d"
  "CMakeFiles/depmatch_common.dir/logging.cc.o"
  "CMakeFiles/depmatch_common.dir/logging.cc.o.d"
  "CMakeFiles/depmatch_common.dir/rng.cc.o"
  "CMakeFiles/depmatch_common.dir/rng.cc.o.d"
  "CMakeFiles/depmatch_common.dir/status.cc.o"
  "CMakeFiles/depmatch_common.dir/status.cc.o.d"
  "CMakeFiles/depmatch_common.dir/string_util.cc.o"
  "CMakeFiles/depmatch_common.dir/string_util.cc.o.d"
  "CMakeFiles/depmatch_common.dir/thread_pool.cc.o"
  "CMakeFiles/depmatch_common.dir/thread_pool.cc.o.d"
  "libdepmatch_common.a"
  "libdepmatch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
