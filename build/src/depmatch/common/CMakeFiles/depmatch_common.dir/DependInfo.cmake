
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depmatch/common/flags.cc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/flags.cc.o" "gcc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/flags.cc.o.d"
  "/root/repo/src/depmatch/common/logging.cc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/logging.cc.o" "gcc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/logging.cc.o.d"
  "/root/repo/src/depmatch/common/rng.cc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/rng.cc.o" "gcc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/rng.cc.o.d"
  "/root/repo/src/depmatch/common/status.cc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/status.cc.o" "gcc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/status.cc.o.d"
  "/root/repo/src/depmatch/common/string_util.cc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/string_util.cc.o" "gcc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/string_util.cc.o.d"
  "/root/repo/src/depmatch/common/thread_pool.cc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/thread_pool.cc.o" "gcc" "src/depmatch/common/CMakeFiles/depmatch_common.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
