file(REMOVE_RECURSE
  "libdepmatch_common.a"
)
