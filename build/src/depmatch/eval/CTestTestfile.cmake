# CMake generated Testfile for 
# Source directory: /root/repo/src/depmatch/eval
# Build directory: /root/repo/build/src/depmatch/eval
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
