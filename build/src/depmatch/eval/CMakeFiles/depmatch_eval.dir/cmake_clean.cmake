file(REMOVE_RECURSE
  "CMakeFiles/depmatch_eval.dir/accuracy.cc.o"
  "CMakeFiles/depmatch_eval.dir/accuracy.cc.o.d"
  "CMakeFiles/depmatch_eval.dir/experiment.cc.o"
  "CMakeFiles/depmatch_eval.dir/experiment.cc.o.d"
  "CMakeFiles/depmatch_eval.dir/match_report.cc.o"
  "CMakeFiles/depmatch_eval.dir/match_report.cc.o.d"
  "CMakeFiles/depmatch_eval.dir/report.cc.o"
  "CMakeFiles/depmatch_eval.dir/report.cc.o.d"
  "libdepmatch_eval.a"
  "libdepmatch_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
