file(REMOVE_RECURSE
  "libdepmatch_eval.a"
)
