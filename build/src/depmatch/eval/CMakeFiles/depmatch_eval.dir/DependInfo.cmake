
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depmatch/eval/accuracy.cc" "src/depmatch/eval/CMakeFiles/depmatch_eval.dir/accuracy.cc.o" "gcc" "src/depmatch/eval/CMakeFiles/depmatch_eval.dir/accuracy.cc.o.d"
  "/root/repo/src/depmatch/eval/experiment.cc" "src/depmatch/eval/CMakeFiles/depmatch_eval.dir/experiment.cc.o" "gcc" "src/depmatch/eval/CMakeFiles/depmatch_eval.dir/experiment.cc.o.d"
  "/root/repo/src/depmatch/eval/match_report.cc" "src/depmatch/eval/CMakeFiles/depmatch_eval.dir/match_report.cc.o" "gcc" "src/depmatch/eval/CMakeFiles/depmatch_eval.dir/match_report.cc.o.d"
  "/root/repo/src/depmatch/eval/report.cc" "src/depmatch/eval/CMakeFiles/depmatch_eval.dir/report.cc.o" "gcc" "src/depmatch/eval/CMakeFiles/depmatch_eval.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/depmatch/match/CMakeFiles/depmatch_match.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/graph/CMakeFiles/depmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/common/CMakeFiles/depmatch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/stats/CMakeFiles/depmatch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/table/CMakeFiles/depmatch_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
