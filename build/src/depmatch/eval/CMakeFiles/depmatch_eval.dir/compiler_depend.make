# Empty compiler generated dependencies file for depmatch_eval.
# This may be replaced when dependencies are built.
