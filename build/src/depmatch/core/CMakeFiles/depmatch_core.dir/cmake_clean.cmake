file(REMOVE_RECURSE
  "CMakeFiles/depmatch_core.dir/multi_match.cc.o"
  "CMakeFiles/depmatch_core.dir/multi_match.cc.o.d"
  "CMakeFiles/depmatch_core.dir/schema_matcher.cc.o"
  "CMakeFiles/depmatch_core.dir/schema_matcher.cc.o.d"
  "CMakeFiles/depmatch_core.dir/table_clustering.cc.o"
  "CMakeFiles/depmatch_core.dir/table_clustering.cc.o.d"
  "libdepmatch_core.a"
  "libdepmatch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
