file(REMOVE_RECURSE
  "libdepmatch_core.a"
)
