# Empty compiler generated dependencies file for depmatch_core.
# This may be replaced when dependencies are built.
