# Empty dependencies file for depmatch_match.
# This may be replaced when dependencies are built.
