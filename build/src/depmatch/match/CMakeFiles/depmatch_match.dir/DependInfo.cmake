
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depmatch/match/annealing_matcher.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/annealing_matcher.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/annealing_matcher.cc.o.d"
  "/root/repo/src/depmatch/match/candidate_filter.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/candidate_filter.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/candidate_filter.cc.o.d"
  "/root/repo/src/depmatch/match/candidate_ranking.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/candidate_ranking.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/candidate_ranking.cc.o.d"
  "/root/repo/src/depmatch/match/exhaustive_matcher.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/exhaustive_matcher.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/exhaustive_matcher.cc.o.d"
  "/root/repo/src/depmatch/match/graduated_assignment.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/graduated_assignment.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/graduated_assignment.cc.o.d"
  "/root/repo/src/depmatch/match/greedy_matcher.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/greedy_matcher.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/greedy_matcher.cc.o.d"
  "/root/repo/src/depmatch/match/hungarian_matcher.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/hungarian_matcher.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/hungarian_matcher.cc.o.d"
  "/root/repo/src/depmatch/match/interpreted_matcher.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/interpreted_matcher.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/interpreted_matcher.cc.o.d"
  "/root/repo/src/depmatch/match/mapping_ops.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/mapping_ops.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/mapping_ops.cc.o.d"
  "/root/repo/src/depmatch/match/matcher.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/matcher.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/matcher.cc.o.d"
  "/root/repo/src/depmatch/match/matching.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/matching.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/matching.cc.o.d"
  "/root/repo/src/depmatch/match/metric.cc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/metric.cc.o" "gcc" "src/depmatch/match/CMakeFiles/depmatch_match.dir/metric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/depmatch/graph/CMakeFiles/depmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/common/CMakeFiles/depmatch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/stats/CMakeFiles/depmatch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/table/CMakeFiles/depmatch_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
