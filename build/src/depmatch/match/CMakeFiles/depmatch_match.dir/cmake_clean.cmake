file(REMOVE_RECURSE
  "CMakeFiles/depmatch_match.dir/annealing_matcher.cc.o"
  "CMakeFiles/depmatch_match.dir/annealing_matcher.cc.o.d"
  "CMakeFiles/depmatch_match.dir/candidate_filter.cc.o"
  "CMakeFiles/depmatch_match.dir/candidate_filter.cc.o.d"
  "CMakeFiles/depmatch_match.dir/candidate_ranking.cc.o"
  "CMakeFiles/depmatch_match.dir/candidate_ranking.cc.o.d"
  "CMakeFiles/depmatch_match.dir/exhaustive_matcher.cc.o"
  "CMakeFiles/depmatch_match.dir/exhaustive_matcher.cc.o.d"
  "CMakeFiles/depmatch_match.dir/graduated_assignment.cc.o"
  "CMakeFiles/depmatch_match.dir/graduated_assignment.cc.o.d"
  "CMakeFiles/depmatch_match.dir/greedy_matcher.cc.o"
  "CMakeFiles/depmatch_match.dir/greedy_matcher.cc.o.d"
  "CMakeFiles/depmatch_match.dir/hungarian_matcher.cc.o"
  "CMakeFiles/depmatch_match.dir/hungarian_matcher.cc.o.d"
  "CMakeFiles/depmatch_match.dir/interpreted_matcher.cc.o"
  "CMakeFiles/depmatch_match.dir/interpreted_matcher.cc.o.d"
  "CMakeFiles/depmatch_match.dir/mapping_ops.cc.o"
  "CMakeFiles/depmatch_match.dir/mapping_ops.cc.o.d"
  "CMakeFiles/depmatch_match.dir/matcher.cc.o"
  "CMakeFiles/depmatch_match.dir/matcher.cc.o.d"
  "CMakeFiles/depmatch_match.dir/matching.cc.o"
  "CMakeFiles/depmatch_match.dir/matching.cc.o.d"
  "CMakeFiles/depmatch_match.dir/metric.cc.o"
  "CMakeFiles/depmatch_match.dir/metric.cc.o.d"
  "libdepmatch_match.a"
  "libdepmatch_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
