file(REMOVE_RECURSE
  "libdepmatch_match.a"
)
