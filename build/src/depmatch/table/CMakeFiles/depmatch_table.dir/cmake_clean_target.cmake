file(REMOVE_RECURSE
  "libdepmatch_table.a"
)
