
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depmatch/table/column.cc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/column.cc.o" "gcc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/column.cc.o.d"
  "/root/repo/src/depmatch/table/csv.cc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/csv.cc.o" "gcc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/csv.cc.o.d"
  "/root/repo/src/depmatch/table/csv_stream.cc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/csv_stream.cc.o" "gcc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/csv_stream.cc.o.d"
  "/root/repo/src/depmatch/table/schema.cc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/schema.cc.o" "gcc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/schema.cc.o.d"
  "/root/repo/src/depmatch/table/table.cc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/table.cc.o" "gcc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/table.cc.o.d"
  "/root/repo/src/depmatch/table/table_ops.cc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/table_ops.cc.o" "gcc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/table_ops.cc.o.d"
  "/root/repo/src/depmatch/table/value.cc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/value.cc.o" "gcc" "src/depmatch/table/CMakeFiles/depmatch_table.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/depmatch/common/CMakeFiles/depmatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
