# Empty dependencies file for depmatch_table.
# This may be replaced when dependencies are built.
