file(REMOVE_RECURSE
  "CMakeFiles/depmatch_table.dir/column.cc.o"
  "CMakeFiles/depmatch_table.dir/column.cc.o.d"
  "CMakeFiles/depmatch_table.dir/csv.cc.o"
  "CMakeFiles/depmatch_table.dir/csv.cc.o.d"
  "CMakeFiles/depmatch_table.dir/csv_stream.cc.o"
  "CMakeFiles/depmatch_table.dir/csv_stream.cc.o.d"
  "CMakeFiles/depmatch_table.dir/schema.cc.o"
  "CMakeFiles/depmatch_table.dir/schema.cc.o.d"
  "CMakeFiles/depmatch_table.dir/table.cc.o"
  "CMakeFiles/depmatch_table.dir/table.cc.o.d"
  "CMakeFiles/depmatch_table.dir/table_ops.cc.o"
  "CMakeFiles/depmatch_table.dir/table_ops.cc.o.d"
  "CMakeFiles/depmatch_table.dir/value.cc.o"
  "CMakeFiles/depmatch_table.dir/value.cc.o.d"
  "libdepmatch_table.a"
  "libdepmatch_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depmatch_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
