# Empty compiler generated dependencies file for source_triage.
# This may be replaced when dependencies are built.
