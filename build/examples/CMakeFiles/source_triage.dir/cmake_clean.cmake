file(REMOVE_RECURSE
  "CMakeFiles/source_triage.dir/source_triage.cpp.o"
  "CMakeFiles/source_triage.dir/source_triage.cpp.o.d"
  "source_triage"
  "source_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
