# Empty dependencies file for full_integration.
# This may be replaced when dependencies are built.
