file(REMOVE_RECURSE
  "CMakeFiles/full_integration.dir/full_integration.cpp.o"
  "CMakeFiles/full_integration.dir/full_integration.cpp.o.d"
  "full_integration"
  "full_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
