# Empty dependencies file for multi_source_alignment.
# This may be replaced when dependencies are built.
