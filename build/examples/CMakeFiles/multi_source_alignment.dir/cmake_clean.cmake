file(REMOVE_RECURSE
  "CMakeFiles/multi_source_alignment.dir/multi_source_alignment.cpp.o"
  "CMakeFiles/multi_source_alignment.dir/multi_source_alignment.cpp.o.d"
  "multi_source_alignment"
  "multi_source_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_source_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
