# Empty dependencies file for nested_json.
# This may be replaced when dependencies are built.
