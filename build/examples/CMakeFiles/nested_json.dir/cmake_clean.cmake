file(REMOVE_RECURSE
  "CMakeFiles/nested_json.dir/nested_json.cpp.o"
  "CMakeFiles/nested_json.dir/nested_json.cpp.o.d"
  "nested_json"
  "nested_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
