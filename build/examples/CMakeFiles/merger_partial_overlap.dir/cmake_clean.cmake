file(REMOVE_RECURSE
  "CMakeFiles/merger_partial_overlap.dir/merger_partial_overlap.cpp.o"
  "CMakeFiles/merger_partial_overlap.dir/merger_partial_overlap.cpp.o.d"
  "merger_partial_overlap"
  "merger_partial_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merger_partial_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
