# Empty dependencies file for merger_partial_overlap.
# This may be replaced when dependencies are built.
