file(REMOVE_RECURSE
  "CMakeFiles/csv_matching.dir/csv_matching.cpp.o"
  "CMakeFiles/csv_matching.dir/csv_matching.cpp.o.d"
  "csv_matching"
  "csv_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
