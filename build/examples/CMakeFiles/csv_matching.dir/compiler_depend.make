# Empty compiler generated dependencies file for csv_matching.
# This may be replaced when dependencies are built.
