file(REMOVE_RECURSE
  "CMakeFiles/match_test.dir/match/annealing_matcher_test.cc.o"
  "CMakeFiles/match_test.dir/match/annealing_matcher_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/candidate_filter_test.cc.o"
  "CMakeFiles/match_test.dir/match/candidate_filter_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/candidate_ranking_test.cc.o"
  "CMakeFiles/match_test.dir/match/candidate_ranking_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/exhaustive_matcher_test.cc.o"
  "CMakeFiles/match_test.dir/match/exhaustive_matcher_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/graduated_assignment_test.cc.o"
  "CMakeFiles/match_test.dir/match/graduated_assignment_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/greedy_matcher_test.cc.o"
  "CMakeFiles/match_test.dir/match/greedy_matcher_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/hungarian_matcher_test.cc.o"
  "CMakeFiles/match_test.dir/match/hungarian_matcher_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/interpreted_matcher_test.cc.o"
  "CMakeFiles/match_test.dir/match/interpreted_matcher_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/mapping_ops_test.cc.o"
  "CMakeFiles/match_test.dir/match/mapping_ops_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/match_property_test.cc.o"
  "CMakeFiles/match_test.dir/match/match_property_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/matcher_test.cc.o"
  "CMakeFiles/match_test.dir/match/matcher_test.cc.o.d"
  "CMakeFiles/match_test.dir/match/metric_test.cc.o"
  "CMakeFiles/match_test.dir/match/metric_test.cc.o.d"
  "match_test"
  "match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
