file(REMOVE_RECURSE
  "CMakeFiles/table_test.dir/table/column_test.cc.o"
  "CMakeFiles/table_test.dir/table/column_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/csv_property_test.cc.o"
  "CMakeFiles/table_test.dir/table/csv_property_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/csv_stream_test.cc.o"
  "CMakeFiles/table_test.dir/table/csv_stream_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/csv_test.cc.o"
  "CMakeFiles/table_test.dir/table/csv_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/schema_test.cc.o"
  "CMakeFiles/table_test.dir/table/schema_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/table_ops_test.cc.o"
  "CMakeFiles/table_test.dir/table/table_ops_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/table_test.cc.o"
  "CMakeFiles/table_test.dir/table/table_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/value_test.cc.o"
  "CMakeFiles/table_test.dir/table/value_test.cc.o.d"
  "table_test"
  "table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
