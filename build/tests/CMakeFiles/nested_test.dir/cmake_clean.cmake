file(REMOVE_RECURSE
  "CMakeFiles/nested_test.dir/nested/document_test.cc.o"
  "CMakeFiles/nested_test.dir/nested/document_test.cc.o.d"
  "CMakeFiles/nested_test.dir/nested/flatten_test.cc.o"
  "CMakeFiles/nested_test.dir/nested/flatten_test.cc.o.d"
  "CMakeFiles/nested_test.dir/nested/json_test.cc.o"
  "CMakeFiles/nested_test.dir/nested/json_test.cc.o.d"
  "CMakeFiles/nested_test.dir/nested/nested_matcher_test.cc.o"
  "CMakeFiles/nested_test.dir/nested/nested_matcher_test.cc.o.d"
  "CMakeFiles/nested_test.dir/nested/xml_test.cc.o"
  "CMakeFiles/nested_test.dir/nested/xml_test.cc.o.d"
  "nested_test"
  "nested_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
