
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nested/document_test.cc" "tests/CMakeFiles/nested_test.dir/nested/document_test.cc.o" "gcc" "tests/CMakeFiles/nested_test.dir/nested/document_test.cc.o.d"
  "/root/repo/tests/nested/flatten_test.cc" "tests/CMakeFiles/nested_test.dir/nested/flatten_test.cc.o" "gcc" "tests/CMakeFiles/nested_test.dir/nested/flatten_test.cc.o.d"
  "/root/repo/tests/nested/json_test.cc" "tests/CMakeFiles/nested_test.dir/nested/json_test.cc.o" "gcc" "tests/CMakeFiles/nested_test.dir/nested/json_test.cc.o.d"
  "/root/repo/tests/nested/nested_matcher_test.cc" "tests/CMakeFiles/nested_test.dir/nested/nested_matcher_test.cc.o" "gcc" "tests/CMakeFiles/nested_test.dir/nested/nested_matcher_test.cc.o.d"
  "/root/repo/tests/nested/xml_test.cc" "tests/CMakeFiles/nested_test.dir/nested/xml_test.cc.o" "gcc" "tests/CMakeFiles/nested_test.dir/nested/xml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/depmatch/nested/CMakeFiles/depmatch_nested.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/translate/CMakeFiles/depmatch_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/core/CMakeFiles/depmatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/eval/CMakeFiles/depmatch_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/datagen/CMakeFiles/depmatch_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/match/CMakeFiles/depmatch_match.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/graph/CMakeFiles/depmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/stats/CMakeFiles/depmatch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/table/CMakeFiles/depmatch_table.dir/DependInfo.cmake"
  "/root/repo/build/src/depmatch/common/CMakeFiles/depmatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
