# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;24;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(table_test "/root/repo/build/tests/table_test")
set_tests_properties(table_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;33;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;44;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;52;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(match_test "/root/repo/build/tests/match_test")
set_tests_properties(match_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;58;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;73;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;80;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;85;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(translate_test "/root/repo/build/tests/translate_test")
set_tests_properties(translate_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;91;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nested_test "/root/repo/build/tests/nested_test")
set_tests_properties(nested_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;96;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_test "/root/repo/build/tests/cli_test")
set_tests_properties(cli_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;104;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;111;depmatch_add_test;/root/repo/tests/CMakeLists.txt;0;")
